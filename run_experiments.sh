#!/bin/sh
# Runs every table/figure experiment binary and logs output to
# results/logs/. Heavier bins run last. TACO_SCALE=paper enlarges all
# workloads; TACO_SEEDS=n averages the accuracy experiments over n
# seeds.
#
# Every binary must leave a fresh results/<exp>*.csv behind; a run
# that exits zero but writes no CSV is still counted as a failure
# (logged to results/logs/failures.txt) and the script exits nonzero.
set -x
mkdir -p results/logs
rm -f results/logs/failures.txt
stamp=results/logs/.csv_stamp

run_exp() {
  exp="$1"
  shift
  touch "$stamp"
  if ! "$@" ./target/release/"$exp" > "results/logs/$exp.log" 2>&1; then
    echo "FAILED: $exp (nonzero exit; see results/logs/$exp.log)" >> results/logs/failures.txt
    return
  fi
  if ! find results -maxdepth 1 -name "$exp*.csv" -newer "$stamp" | grep -q .; then
    echo "FAILED: $exp (exited zero but wrote no results/$exp*.csv)" >> results/logs/failures.txt
    return
  fi
  echo "done $exp"
}

for exp in table1 fig7 table8 table2 fig5 table3 fig6 ablation_alpha \
           ext_baselines ext_compression ext_comm_regimes fault_sweep \
           scenario_sweep fig2 fig4 table6 table5; do
  run_exp "$exp"
done
run_exp table7 env TACO_CLIENTS=40
rm -f "$stamp"

if [ -s results/logs/failures.txt ]; then
  echo "EXPERIMENTS FAILED:" >&2
  cat results/logs/failures.txt >&2
  exit 1
fi
echo ALL_DONE
