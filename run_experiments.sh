#!/bin/sh
# Runs every table/figure experiment binary and logs output to
# results/logs/. Heavier bins run last. TACO_SCALE=paper enlarges all
# workloads; TACO_SEEDS=n averages the accuracy experiments over n
# seeds.
set -x
mkdir -p results/logs
for exp in table1 fig7 table8 table2 fig5 table3 fig6 ablation_alpha \
           ext_baselines ext_compression ext_comm_regimes fault_sweep \
           fig2 fig4 table6 table5; do
  ./target/release/$exp > results/logs/$exp.log 2>&1 || echo "FAILED: $exp" >> results/logs/failures.txt
  echo "done $exp"
done
TACO_CLIENTS=40 ./target/release/table7 > results/logs/table7.log 2>&1 || echo "FAILED: table7" >> results/logs/failures.txt
echo ALL_DONE
