//! Property-based tests (proptest) on the paper's core invariants.

use proptest::prelude::*;
use taco::core::alpha;
use taco::core::{ClientUpdate, FedAvg, FederatedAlgorithm, HyperParams};
use taco::data::partition;
use taco::tensor::{ops, Prng};

fn update(client: usize, delta: Vec<f32>) -> ClientUpdate {
    ClientUpdate {
        client,
        delta,
        num_samples: 1,
        final_v: None,
        mean_loss: 0.0,
        grad_evals: 0,
        steps: 1,
        compute_seconds: 0.0,
    }
}

/// Strategy: a small set of bounded, non-degenerate delta vectors of a
/// shared dimension.
fn delta_set() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (2usize..6, 2usize..8).prop_flat_map(|(n, dim)| {
        proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, dim..=dim),
            n..=n,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 7's coefficients always live in [0, 1].
    #[test]
    fn alpha_in_unit_interval(deltas in delta_set()) {
        let views: Vec<&[f32]> = deltas.iter().map(Vec::as_slice).collect();
        let alphas = alpha::correction_coefficients(&views);
        prop_assert_eq!(alphas.len(), deltas.len());
        for a in alphas {
            prop_assert!((0.0..=1.0).contains(&a), "alpha {} out of range", a);
        }
    }

    /// Scaling every delta by the same positive factor leaves Eq. 7
    /// unchanged (the coefficient is scale-free).
    #[test]
    fn alpha_is_scale_invariant(deltas in delta_set(), scale in 0.1f32..10.0) {
        let views: Vec<&[f32]> = deltas.iter().map(Vec::as_slice).collect();
        let base = alpha::correction_coefficients(&views);
        let scaled: Vec<Vec<f32>> = deltas
            .iter()
            .map(|d| d.iter().map(|x| x * scale).collect())
            .collect();
        let views2: Vec<&[f32]> = scaled.iter().map(Vec::as_slice).collect();
        let after = alpha::correction_coefficients(&views2);
        for (b, a) in base.iter().zip(&after) {
            prop_assert!((b - a).abs() < 1e-3, "{} vs {}", b, a);
        }
    }

    /// The extrapolated output z_t (Eq. 15) is exact linear
    /// extrapolation: alpha = 1 returns w_t, alpha = 0 doubles the step.
    #[test]
    fn extrapolation_endpoints(
        (w, step) in (1usize..6).prop_flat_map(|n| (
            proptest::collection::vec(-5.0f32..5.0, n..=n),
            proptest::collection::vec(-1.0f32..1.0, n..=n),
        )),
    ) {
        let prev: Vec<f32> = w.iter().zip(&step).map(|(a, b)| a - b).collect();
        let z1 = alpha::extrapolated_output(&w, &prev, 1.0);
        for (a, b) in z1.iter().zip(&w) {
            prop_assert!((a - b).abs() < 1e-6);
        }
        let z0 = alpha::extrapolated_output(&w, &prev, 0.0);
        for ((z, wv), s) in z0.iter().zip(&w).zip(&step) {
            prop_assert!((z - (wv + s)).abs() < 1e-5);
        }
    }

    /// FedAvg aggregation is permutation-invariant in the client order.
    #[test]
    fn fedavg_is_permutation_invariant(deltas in delta_set(), perm_seed in 0u64..1000) {
        let dim = deltas[0].len();
        let global = vec![0.0f32; dim];
        let hyper = HyperParams::new(deltas.len(), 4, 0.1, 8);
        let updates: Vec<ClientUpdate> = deltas
            .iter()
            .enumerate()
            .map(|(i, d)| update(i, d.clone()))
            .collect();
        let mut alg1 = FedAvg::default();
        let next1 = alg1.aggregate(&global, &updates, &hyper);
        let mut shuffled = updates;
        let mut rng = Prng::seed_from_u64(perm_seed);
        rng.shuffle(&mut shuffled);
        let mut alg2 = FedAvg::default();
        let next2 = alg2.aggregate(&global, &shuffled, &hyper);
        for (a, b) in next1.iter().zip(&next2) {
            prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
        }
    }

    /// Partitioners conserve samples: every index appears exactly once.
    #[test]
    fn partitions_are_exact(
        n in 20usize..200,
        classes in 2usize..11,
        clients in 1usize..12,
        phi in 0.05f64..5.0,
        seed in 0u64..500,
    ) {
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let mut rng = Prng::seed_from_u64(seed);
        for shards in [
            partition::iid(&labels, clients, &mut rng),
            partition::dirichlet(&labels, clients, phi, &mut rng),
            partition::synthetic_groups(&labels, clients, &mut rng).0,
        ] {
            let mut seen = vec![false; n];
            for s in &shards {
                for &i in s {
                    prop_assert!(!seen[i], "duplicate sample {}", i);
                    seen[i] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "lost a sample");
        }
    }

    /// The weighted mean lies inside the convex hull coordinate-wise.
    #[test]
    fn weighted_mean_is_convex(
        deltas in delta_set(),
        wseed in 0u64..100,
    ) {
        let views: Vec<&[f32]> = deltas.iter().map(Vec::as_slice).collect();
        let mut rng = Prng::seed_from_u64(wseed);
        let weights: Vec<f32> = (0..deltas.len())
            .map(|_| rng.uniform_f32() + 0.01)
            .collect();
        let mean = ops::weighted_mean(&views, &weights);
        for j in 0..mean.len() {
            let lo = views.iter().map(|v| v[j]).fold(f32::INFINITY, f32::min);
            let hi = views.iter().map(|v| v[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(mean[j] >= lo - 1e-4 && mean[j] <= hi + 1e-4);
        }
    }

    /// Cosine similarity is symmetric and bounded.
    #[test]
    fn cosine_symmetric_bounded(
        (a, b) in (1usize..32).prop_flat_map(|n| (
            proptest::collection::vec(-100.0f32..100.0, n..=n),
            proptest::collection::vec(-100.0f32..100.0, n..=n),
        )),
    ) {
        let ab = ops::cosine_similarity(&a, &b);
        let ba = ops::cosine_similarity(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((-1.0..=1.0).contains(&ab));
    }
}
