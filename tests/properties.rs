//! Randomized property tests on the paper's core invariants.
//!
//! The offline crate set has no proptest, so these drive the same
//! properties with seeded [`Prng`] case generators: every case is
//! deterministic and the failing seed is printed on assert.

use taco::core::alpha;
use taco::core::{ClientUpdate, FedAvg, FederatedAlgorithm, HyperParams};
use taco::data::partition;
use taco::tensor::{ops, Prng};

const CASES: u64 = 64;

fn update(client: usize, delta: Vec<f32>) -> ClientUpdate {
    ClientUpdate {
        client,
        delta,
        num_samples: 1,
        final_v: None,
        mean_loss: 0.0,
        grad_evals: 0,
        steps: 1,
        compute_seconds: 0.0,
        encoded: None,
    }
}

/// A small set of bounded, non-degenerate delta vectors of a shared
/// dimension.
fn delta_set(rng: &mut Prng) -> Vec<Vec<f32>> {
    let n = 2 + rng.below(4);
    let dim = 2 + rng.below(6);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.uniform_f32() * 20.0 - 10.0).collect())
        .collect()
}

/// Eq. 7's coefficients always live in [0, 1].
#[test]
fn alpha_in_unit_interval() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xA1F0 ^ case);
        let deltas = delta_set(&mut rng);
        let views: Vec<&[f32]> = deltas.iter().map(Vec::as_slice).collect();
        let alphas = alpha::correction_coefficients(&views);
        assert_eq!(alphas.len(), deltas.len());
        for a in alphas {
            assert!(
                (0.0..=1.0).contains(&a),
                "case {case}: alpha {a} out of range"
            );
        }
    }
}

/// Scaling every delta by the same positive factor leaves Eq. 7
/// unchanged (the coefficient is scale-free).
#[test]
fn alpha_is_scale_invariant() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x5CA1E ^ case);
        let deltas = delta_set(&mut rng);
        let scale = 0.1 + rng.uniform_f32() * 9.9;
        let views: Vec<&[f32]> = deltas.iter().map(Vec::as_slice).collect();
        let base = alpha::correction_coefficients(&views);
        let scaled: Vec<Vec<f32>> = deltas
            .iter()
            .map(|d| d.iter().map(|x| x * scale).collect())
            .collect();
        let views2: Vec<&[f32]> = scaled.iter().map(Vec::as_slice).collect();
        let after = alpha::correction_coefficients(&views2);
        for (b, a) in base.iter().zip(&after) {
            assert!((b - a).abs() < 1e-3, "case {case}: {b} vs {a}");
        }
    }
}

/// The extrapolated output z_t (Eq. 15) is exact linear extrapolation:
/// alpha = 1 returns w_t, alpha = 0 doubles the step.
#[test]
fn extrapolation_endpoints() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xE87 ^ case);
        let n = 1 + rng.below(5);
        let w: Vec<f32> = (0..n).map(|_| rng.uniform_f32() * 10.0 - 5.0).collect();
        let step: Vec<f32> = (0..n).map(|_| rng.uniform_f32() * 2.0 - 1.0).collect();
        let prev: Vec<f32> = w.iter().zip(&step).map(|(a, b)| a - b).collect();
        let z1 = alpha::extrapolated_output(&w, &prev, 1.0);
        for (a, b) in z1.iter().zip(&w) {
            assert!((a - b).abs() < 1e-6, "case {case}");
        }
        let z0 = alpha::extrapolated_output(&w, &prev, 0.0);
        for ((z, wv), s) in z0.iter().zip(&w).zip(&step) {
            assert!((z - (wv + s)).abs() < 1e-5, "case {case}");
        }
    }
}

/// FedAvg aggregation is permutation-invariant in the client order.
#[test]
fn fedavg_is_permutation_invariant() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xFEDA ^ case);
        let deltas = delta_set(&mut rng);
        let dim = deltas[0].len();
        let global = vec![0.0f32; dim];
        let hyper = HyperParams::new(deltas.len(), 4, 0.1, 8);
        let updates: Vec<ClientUpdate> = deltas
            .iter()
            .enumerate()
            .map(|(i, d)| update(i, d.clone()))
            .collect();
        let mut alg1 = FedAvg::default();
        let next1 = alg1.aggregate(&global, &updates, &hyper);
        let mut shuffled = updates;
        rng.shuffle(&mut shuffled);
        let mut alg2 = FedAvg::default();
        let next2 = alg2.aggregate(&global, &shuffled, &hyper);
        for (a, b) in next1.iter().zip(&next2) {
            assert!((a - b).abs() < 1e-4, "case {case}: {a} vs {b}");
        }
    }
}

/// Partitioners conserve samples: every index appears exactly once.
#[test]
fn partitions_are_exact() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x9A87 ^ case);
        let n = 20 + rng.below(180);
        let classes = 2 + rng.below(9);
        let clients = 1 + rng.below(11);
        let phi = 0.05 + rng.uniform_f64() * 4.95;
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        for shards in [
            partition::iid(&labels, clients, &mut rng),
            partition::dirichlet(&labels, clients, phi, &mut rng),
            partition::synthetic_groups(&labels, clients, &mut rng).0,
        ] {
            let mut seen = vec![false; n];
            for s in &shards {
                for &i in s {
                    assert!(!seen[i], "case {case}: duplicate sample {i}");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "case {case}: lost a sample");
        }
    }
}

/// The weighted mean lies inside the convex hull coordinate-wise.
#[test]
fn weighted_mean_is_convex() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x3EA7 ^ case);
        let deltas = delta_set(&mut rng);
        let views: Vec<&[f32]> = deltas.iter().map(Vec::as_slice).collect();
        let weights: Vec<f32> = (0..deltas.len())
            .map(|_| rng.uniform_f32() + 0.01)
            .collect();
        let mean = ops::weighted_mean(&views, &weights);
        for j in 0..mean.len() {
            let lo = views.iter().map(|v| v[j]).fold(f32::INFINITY, f32::min);
            let hi = views.iter().map(|v| v[j]).fold(f32::NEG_INFINITY, f32::max);
            assert!(
                mean[j] >= lo - 1e-4 && mean[j] <= hi + 1e-4,
                "case {case}: coordinate {j} escaped the hull"
            );
        }
    }
}

/// Cosine similarity is symmetric and bounded.
#[test]
fn cosine_symmetric_bounded() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xC05 ^ case);
        let n = 1 + rng.below(31);
        let a: Vec<f32> = (0..n).map(|_| rng.uniform_f32() * 200.0 - 100.0).collect();
        let b: Vec<f32> = (0..n).map(|_| rng.uniform_f32() * 200.0 - 100.0).collect();
        let ab = ops::cosine_similarity(&a, &b);
        let ba = ops::cosine_similarity(&b, &a);
        assert!((ab - ba).abs() < 1e-6, "case {case}");
        assert!((-1.0..=1.0).contains(&ab), "case {case}: cos {ab}");
    }
}
