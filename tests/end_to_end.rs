//! End-to-end integration tests spanning every crate: data generation →
//! partitioning → model training → FL algorithms → simulation →
//! metrics.

mod common;

use common::{
    assert_values_close, check_against_golden, golden_run, history_value, mlp, tabular_fed,
};
use taco::core::taco::TacoConfig;
use taco::core::{
    AggWeighting, FedAcg, FedAvg, FedProx, FederatedAlgorithm, FoolsGold, HyperParams, Scaffold,
    Stem, Taco,
};
use taco::data::{partition, vision, FederatedDataset};
use taco::nn::PaperCnn;
use taco::sim::{SimConfig, Simulation};
use taco::tensor::Prng;

fn all_algorithms(clients: usize) -> Vec<Box<dyn FederatedAlgorithm>> {
    vec![
        Box::new(FedAvg::new(AggWeighting::Uniform)),
        Box::new(FedProx::new(0.1)),
        Box::new(FoolsGold::new()),
        Box::new(Scaffold::new(clients, 1.0)),
        // STEM's small-alpha variance reduction diverges at this
        // scale's step sizes; 0.5 constant is the harness-scale tuning
        // (see EXPERIMENTS.md).
        Box::new(Stem::new(0.5).without_decay()),
        Box::new(FedAcg::new(0.001)),
        Box::new(Taco::new(clients, TacoConfig::paper_default(12, 10))),
    ]
}

#[test]
fn every_algorithm_learns_the_tabular_task() {
    let clients = 4;
    for alg in all_algorithms(clients) {
        let name = alg.name();
        let fed = tabular_fed(clients, 3, 0.5);
        let hyper = HyperParams::new(clients, 10, 0.05, 16);
        let config = SimConfig::new(hyper, 12, 5);
        let history = Simulation::new(fed, mlp(3), alg, config).run();
        assert!(
            history.best_accuracy() > 0.62,
            "{name} only reached {:.1}%",
            history.best_accuracy() * 100.0
        );
        assert!(
            history
                .rounds
                .iter()
                .all(|r| r.test_loss.is_finite() && r.train_loss.is_finite()),
            "{name} produced non-finite losses"
        );
    }
}

#[test]
fn taco_beats_fedavg_under_heavy_skew() {
    let clients = 6;
    // Strong label skew: Dir(0.1) on a binary task means most clients
    // see almost one class only.
    let run = |alg: Box<dyn FederatedAlgorithm>| {
        let fed = tabular_fed(clients, 9, 0.1);
        let hyper = HyperParams::new(clients, 10, 0.05, 16);
        let config = SimConfig::new(hyper, 12, 9);
        Simulation::new(fed, mlp(9), alg, config).run()
    };
    let fedavg = run(Box::<FedAvg>::default());
    let taco = run(Box::new(Taco::new(
        clients,
        TacoConfig::paper_default(12, 10),
    )));
    assert!(
        taco.final_accuracy() >= fedavg.final_accuracy() - 0.02,
        "TACO {:.3} should not trail FedAvg {:.3} under skew",
        taco.final_accuracy(),
        fedavg.final_accuracy()
    );
}

#[test]
fn cnn_federation_trains_end_to_end() {
    let clients = 3;
    let mut rng = Prng::seed_from_u64(2);
    let spec = vision::VisionSpec::mnist_like().with_sizes(240, 60);
    let data = vision::generate(&spec, &mut rng);
    let (shards, groups) = partition::synthetic_groups(data.train.labels(), clients, &mut rng);
    assert_eq!(groups.len(), clients);
    let fed = FederatedDataset::from_partition(data.train, data.test, &shards);
    let mut mrng = Prng::seed_from_u64(2);
    let model = PaperCnn::for_image(1, 28, 10, &mut mrng);
    let hyper = HyperParams::new(clients, 12, 0.03, 8);
    let config = SimConfig::new(hyper, 6, 2);
    let history = Simulation::new(
        fed,
        Box::new(model),
        Box::new(Taco::new(clients, TacoConfig::paper_default(6, 12))),
        config,
    )
    .run();
    assert!(
        history.best_accuracy() > 0.25,
        "CNN federation stuck at {:.1}%",
        history.best_accuracy() * 100.0
    );
}

#[test]
fn determinism_across_identical_runs() {
    let clients = 4;
    let make = || {
        let fed = tabular_fed(clients, 4, 0.5);
        let hyper = HyperParams::new(clients, 5, 0.05, 8);
        let config = SimConfig::new(hyper, 5, 77);
        Simulation::new(
            fed,
            mlp(4),
            Box::new(Taco::new(clients, TacoConfig::paper_default(5, 5))),
            config,
        )
        .run()
    };
    let a = make();
    let b = make();
    assert_eq!(a.accuracy_series(), b.accuracy_series());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.alphas, rb.alphas);
    }
}

#[test]
fn taco_alphas_stay_in_unit_interval_all_run() {
    let clients = 5;
    let fed = tabular_fed(clients, 6, 0.2);
    let hyper = HyperParams::new(clients, 6, 0.05, 8);
    let config = SimConfig::new(hyper, 8, 6);
    let history = Simulation::new(
        fed,
        mlp(6),
        Box::new(Taco::new(clients, TacoConfig::paper_default(8, 6))),
        config,
    )
    .run();
    for rec in &history.rounds {
        for &a in rec.alphas.as_ref().expect("alphas recorded") {
            assert!((0.0..=1.0).contains(&a), "alpha {a} out of range");
        }
    }
}

// ---------------------------------------------------------------------------
// Golden-trajectory regression: fixed-seed runs serialized round by
// round and compared against checked-in fixtures (the harness lives in
// `tests/common/mod.rs`, shared with the backend-differential suite).
// Any unintended change to kernels, data generation, client
// scheduling, or aggregation shows up as a trajectory diff here.
// Regenerate after an *intended* change with
// `TACO_REGEN_GOLDEN=1 cargo test --test end_to_end golden`;
// `TACO_GOLDEN_TOL=<eps>` relaxes the comparison (useful on platforms
// whose libm rounds transcendentals differently).

use taco::tensor::pool::{self, Pool};

#[test]
fn golden_trajectory_fedavg_matches_fixture() {
    let h = golden_run(Box::new(FedAvg::new(AggWeighting::Uniform)), false, None);
    check_against_golden("golden_fedavg.json", &h);
}

#[test]
fn golden_trajectory_taco_matches_fixture() {
    let h = golden_run(
        Box::new(Taco::new(4, TacoConfig::paper_default(8, 6))),
        false,
        None,
    );
    check_against_golden("golden_taco.json", &h);
}

#[test]
fn golden_trajectory_is_thread_count_invariant() {
    // The same fixed-seed TACO run under a 1-thread and an 8-thread
    // pool, with client-parallel execution enabled, must match the
    // sequential fixture bit for bit: thread count is invisible to
    // training by the pool's deterministic partitioning contract.
    let p1 = Pool::new(1);
    let p8 = Pool::new(8);
    let make = || Box::new(Taco::new(4, TacoConfig::paper_default(8, 6)));
    let h1 = pool::with_pool(&p1, || golden_run(make(), true, None));
    let h8 = pool::with_pool(&p8, || golden_run(make(), true, None));
    assert_values_close(&history_value(&h1), &history_value(&h8), 0.0, "t1_vs_t8");
    check_against_golden("golden_taco.json", &h8);
}

#[test]
fn history_clones_and_compares() {
    let clients = 3;
    let fed = tabular_fed(clients, 8, 0.5);
    let hyper = HyperParams::new(clients, 4, 0.05, 8);
    let config = SimConfig::new(hyper, 3, 8);
    let history = Simulation::new(fed, mlp(8), Box::new(FedAvg::default()), config).run();
    let copy = history.clone();
    assert_eq!(copy, history);
    assert_eq!(copy.rounds.len(), 3);
}
