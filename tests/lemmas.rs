//! Numerical checks of the paper's Lemmas 1 and 2 against the actual
//! TACO implementation.
//!
//! - **Lemma 1**: the aggregated global gradient evolves as an
//!   exponential moving average,
//!   `Δ_{t+1} = Δ̃_t + (1 − α_t)·Δ_t`, where `Δ̃_t` is the average
//!   mini-batch gradient and `α_t` the round-average coefficient.
//! - **Lemma 2**: the extrapolated output satisfies
//!   `z_{t+1} = z_t − η_g·Δ̃_t`.
//!
//! The lemmas hold *exactly* when every client is given the same
//! correction recipe the proofs assume (Appendix: γ = 1 with
//! correction factors `1 − α_i^t`, aggregation per Eq. 9 with the
//! identity that client updates decompose into local gradients plus
//! the shared correction term). Rather than replicate the continuous
//! analysis we verify the implementable discrete identity on a
//! synthetic-update federation where client "gradients" are chosen by
//! us — so Δ̃_t is known in closed form.

use taco::core::alpha;
use taco::tensor::ops;

/// One synthetic round of TACO's server arithmetic, mirroring Eq. 9 and
/// Lemma 1's EMA identity with uniform aggregation weights.
///
/// With uniform weights, `Δ_{t+1} = mean_i(Δ_i)/(K·η_l)`. If each
/// client's upload decomposes as
/// `Δ_i = K·η_l·(g_i + (1 − α_i)·Δ_t)` (the paper's local rule with
/// γ = 1 applied to a constant per-round gradient `g_i`), then
/// `Δ_{t+1} = mean(g_i) + mean(1 − α_i)·Δ_t = Δ̃_t + (1 − α_t)·Δ_t`.
#[test]
fn lemma1_ema_identity_holds_for_uniform_aggregation() {
    let dim = 6;
    let k_eta = 0.5f32;
    let mut delta_global = vec![0.0f32; dim];
    let alphas = [0.2f32, 0.5, 0.7];
    let gradients: Vec<Vec<f32>> = vec![
        vec![1.0, 0.0, -0.5, 0.2, 0.0, 0.3],
        vec![0.0, 1.0, 0.5, -0.2, 0.1, 0.0],
        vec![0.5, 0.5, 0.0, 0.0, -0.1, 0.6],
    ];
    for _round in 0..5 {
        // Clients upload Δ_i = K·η_l (g_i + (1 − α_i) Δ_t).
        let uploads: Vec<Vec<f32>> = gradients
            .iter()
            .zip(&alphas)
            .map(|(g, &a)| {
                let mut d = g.clone();
                ops::axpy(&mut d, 1.0 - a, &delta_global);
                ops::scaled(&d, k_eta)
            })
            .collect();
        // Server: uniform mean / (K·η_l).
        let views: Vec<&[f32]> = uploads.iter().map(Vec::as_slice).collect();
        let mut next = ops::mean_of(&views);
        ops::scale(&mut next, 1.0 / k_eta);
        // Lemma 1's prediction.
        let g_views: Vec<&[f32]> = gradients.iter().map(Vec::as_slice).collect();
        let tilde = ops::mean_of(&g_views);
        let avg_alpha = alpha::average_alpha(&alphas);
        let mut predicted = tilde.clone();
        ops::axpy(&mut predicted, 1.0 - avg_alpha, &delta_global);
        for (n, p) in next.iter().zip(&predicted) {
            assert!((n - p).abs() < 1e-5, "EMA identity violated: {n} vs {p}");
        }
        delta_global = next;
    }
}

/// Lemma 2 (exact discrete form): with the EMA recursion of Lemma 1,
/// the auxiliary sequence that telescopes into plain gradient steps is
/// `z_t = w_t + ((1 − α)/α)(w_t − w_{t−1})` — the standard momentum
/// trick — which then satisfies `z_{t+1} = z_t − (η_g/α)·Δ̃_t`
/// *exactly*, for every round after the first.
///
/// The paper's Eq. 15 states the coefficient as `(1 − α_t)` and the
/// step as `η_g·Δ̃_t`; expanding the telescope shows a residual
/// `(1 − α)²·Δ_t` term remains under that choice, so Eq. 15 is the
/// first-order (small `1 − α`) approximation of the exact identity.
/// We verify the exact identity here (and EXPERIMENTS.md documents the
/// discrepancy); TACO's implementation keeps Eq. 15's form for its
/// reported output, faithful to Algorithm 2.
#[test]
fn lemma2_z_sequence_takes_plain_gradient_steps() {
    let dim = 4;
    let k_eta = 1.0f32;
    let eta_g = 1.0f32;
    let alphas = [0.3f32, 0.6];
    let gradients: Vec<Vec<f32>> = vec![vec![0.5, -0.2, 0.1, 0.0], vec![-0.1, 0.4, 0.0, 0.2]];
    let avg_alpha = alpha::average_alpha(&alphas);
    let g_views: Vec<&[f32]> = gradients.iter().map(Vec::as_slice).collect();
    let tilde = ops::mean_of(&g_views);

    let mut w = vec![1.0f32; dim];
    let mut delta_global = vec![0.0f32; dim];
    let mut z_prev: Option<Vec<f32>> = None;
    // Exact momentum-form coefficient: (1 − α)/α.
    let coeff = (1.0 - avg_alpha) / avg_alpha;
    for round in 0..6 {
        let uploads: Vec<Vec<f32>> = gradients
            .iter()
            .zip(&alphas)
            .map(|(g, &a)| {
                let mut d = g.clone();
                ops::axpy(&mut d, 1.0 - a, &delta_global);
                ops::scaled(&d, k_eta)
            })
            .collect();
        let views: Vec<&[f32]> = uploads.iter().map(Vec::as_slice).collect();
        let mut agg = ops::mean_of(&views);
        ops::scale(&mut agg, 1.0 / k_eta);
        delta_global = agg.clone();
        let w_prev = w.clone();
        ops::axpy(&mut w, -eta_g, &agg);
        // z_t = w_t + coeff (w_t − w_{t−1}).
        let z: Vec<f32> = w
            .iter()
            .zip(&w_prev)
            .map(|(&wt, &wp)| wt + coeff * (wt - wp))
            .collect();
        if let Some(zp) = &z_prev {
            // Exact identity: z_{t+1} = z_t − (η_g/α)·Δ̃_t.
            for j in 0..dim {
                let step = zp[j] - z[j];
                let expect = eta_g / avg_alpha * tilde[j];
                assert!(
                    (step - expect).abs() < 1e-4,
                    "round {round}, coord {j}: z-step {step} vs {expect}"
                );
            }
        }
        z_prev = Some(z);
    }
    // The paper's Eq. 15 variant remains the implementation's reported
    // output; sanity-check it moves in the same direction.
    let z15 = alpha::extrapolated_output(&w, &ops::add(&w, &tilde), avg_alpha);
    for (a, b) in z15.iter().zip(&w) {
        assert!(a.is_finite() && b.is_finite());
    }
}
