//! Shared harness for the integration suites: fixed-seed federated
//! workloads, deterministic history serialization, and the golden
//! fixture comparison used by `end_to_end.rs` (trajectory regression)
//! and `backend_diff.rs` (backend equivalence).
#![allow(dead_code)] // each test binary uses a subset

use taco::core::{FederatedAlgorithm, HyperParams};
use taco::data::{partition, tabular, FederatedDataset};
use taco::nn::{Mlp, Model};
use taco::sim::{BackendChoice, History, SimConfig, Simulation};
use taco::tensor::Prng;
use taco::trace::{json, Value};

/// Fixed-seed adult-like tabular federation with a Dirichlet(phi)
/// label split.
pub fn tabular_fed(clients: usize, seed: u64, phi: f64) -> FederatedDataset {
    let mut rng = Prng::seed_from_u64(seed);
    let spec = tabular::TabularSpec::adult_like().with_sizes(400, 120);
    let data = tabular::generate(&spec, &mut rng);
    let shards = partition::dirichlet(data.train.labels(), clients, phi, &mut rng);
    FederatedDataset::from_partition(data.train, data.test, &shards)
}

/// The suites' small tabular MLP, seeded deterministically.
pub fn mlp(seed: u64) -> Box<dyn Model> {
    let mut rng = Prng::seed_from_u64(seed);
    Box::new(Mlp::new(14, &[16, 8], 2, &mut rng))
}

/// The canonical golden-fixture run: 4 clients, 8 rounds, seed 11.
/// `backend` of `None` keeps `SimConfig`'s environment default
/// (`TACO_BACKEND`); the differential suite passes explicit choices so
/// its comparisons are immune to the CI backend matrix.
pub fn golden_run(
    alg: Box<dyn FederatedAlgorithm>,
    parallel: bool,
    backend: Option<BackendChoice>,
) -> History {
    golden_run_configured(alg, parallel, backend, |c| c)
}

/// [`golden_run`] with a config decorator, for suites that must prove
/// an addition (adversary plan, churn trace, drift schedule) is inert
/// against the committed fixtures.
pub fn golden_run_configured(
    alg: Box<dyn FederatedAlgorithm>,
    parallel: bool,
    backend: Option<BackendChoice>,
    decorate: impl FnOnce(SimConfig) -> SimConfig,
) -> History {
    let clients = 4;
    let fed = tabular_fed(clients, 11, 0.3);
    let hyper = HyperParams::new(clients, 6, 0.05, 16);
    let mut config = SimConfig::new(hyper, 8, 11);
    config.parallel = parallel;
    if let Some(b) = backend {
        config = config.with_backend(b);
    }
    Simulation::new(fed, mlp(11), alg, decorate(config)).run()
}

/// Serializes the deterministic parts of a history. Wall-clock fields
/// (`max_client_seconds`, `total_client_seconds`) are excluded: they
/// vary run to run by construction.
pub fn history_value(h: &History) -> Value {
    let rounds = h
        .rounds
        .iter()
        .map(|r| {
            Value::object(vec![
                ("round".to_string(), Value::from(r.round)),
                ("test_accuracy".to_string(), Value::from(r.test_accuracy)),
                ("test_loss".to_string(), Value::from(r.test_loss)),
                ("train_loss".to_string(), Value::from(r.train_loss)),
                (
                    "alphas".to_string(),
                    r.alphas
                        .as_ref()
                        .map_or(Value::Null, |a| Value::array(a.iter().copied())),
                ),
                ("expelled".to_string(), Value::from(r.expelled)),
                ("upload_bytes".to_string(), Value::from(r.upload_bytes)),
            ])
        })
        .collect();
    Value::object(vec![
        ("algorithm".to_string(), Value::from(h.algorithm.clone())),
        ("rounds".to_string(), Value::Array(rounds)),
        (
            "expelled_clients".to_string(),
            Value::array(h.expelled_clients.iter().copied()),
        ),
    ])
}

/// Structural comparison with a numeric tolerance; `tol == 0.0` demands
/// exact equality (floats round-trip through the JSON fixtures
/// losslessly, so this is a bit-level check).
pub fn assert_values_close(golden: &Value, got: &Value, tol: f64, path: &str) {
    match (golden, got) {
        (Value::Array(a), Value::Array(b)) => {
            assert_eq!(
                a.len(),
                b.len(),
                "{path}: {} vs {} entries",
                a.len(),
                b.len()
            );
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_values_close(x, y, tol, &format!("{path}[{i}]"));
            }
        }
        (Value::Object(a), Value::Object(b)) => {
            assert_eq!(a.len(), b.len(), "{path}: {} vs {} keys", a.len(), b.len());
            for ((ka, va), (kb, vb)) in a.iter().zip(b) {
                assert_eq!(ka, kb, "{path}: key mismatch");
                assert_values_close(va, vb, tol, &format!("{path}.{ka}"));
            }
        }
        _ => {
            if let (Some(x), Some(y)) = (golden.as_f64(), got.as_f64()) {
                assert!(
                    (x - y).abs() <= tol,
                    "{path}: golden {x} vs current {y} (tol {tol})"
                );
            } else {
                assert_eq!(golden, got, "{path}: mismatch");
            }
        }
    }
}

/// Compares a history against a committed fixture under
/// `tests/fixtures/`. `TACO_REGEN_GOLDEN=1` rewrites the fixture;
/// `TACO_GOLDEN_TOL=<eps>` relaxes the comparison (useful on platforms
/// whose libm rounds transcendentals differently).
pub fn check_against_golden(name: &str, h: &History) {
    let val = history_value(h);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    if taco_trace::env::regen_golden() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, val.to_json() + "\n").unwrap();
        println!("regenerated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with TACO_REGEN_GOLDEN=1",
            path.display()
        )
    });
    let golden = json::parse(text.trim()).expect("golden fixture is valid JSON");
    let tol: f64 = taco_trace::env::golden_tol().unwrap_or(0.0);
    assert_values_close(&golden, &val, tol, name);
}
