//! Backend-equivalence differential suite (see `taco_sim::backend`).
//!
//! The sharded parameter-server backend carries a hard contract: at
//! any shard count and any `TACO_THREADS`, every deterministic field
//! of the round trajectory is **bit-identical** to the sequential
//! reference. This suite enforces the contract differentially —
//! sequential vs sharded across a shard × thread matrix, against the
//! committed golden fixtures, and under fault injection where
//! quarantine reports must produce the same strike/expulsion
//! sequences — and writes a machine-readable report to
//! `results/backend_diff_report.json` (archived by CI).
//!
//! Every run here pins its backend explicitly via
//! [`SimConfig::with_backend`], so the comparisons are immune to the
//! `TACO_BACKEND` environment matrix CI runs the rest of the tests
//! under.

mod common;

use common::{
    assert_values_close, check_against_golden, golden_run, history_value, mlp, tabular_fed,
};
use taco::core::taco::TacoConfig;
use taco::core::{AggWeighting, FedAvg, FederatedAlgorithm, HyperParams, Scaffold, Taco};
use taco::sim::{BackendChoice, FaultPlan, History, SimConfig, Simulation};
use taco::tensor::pool::{self, Pool};
use taco::trace::Value;

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];
const THREAD_COUNTS: [usize; 2] = [1, 4];

type AlgorithmMaker = fn() -> Box<dyn FederatedAlgorithm>;

/// The three algorithm shapes the backends must agree on: a plain
/// plan-based aggregator (FedAvg), the full TACO statistics pipeline
/// (upload stats → α → weighted plan), and a plan-less algorithm
/// (SCAFFOLD) that exercises the sharded backend's sequential
/// fallback.
fn algorithms() -> Vec<(&'static str, AlgorithmMaker)> {
    vec![
        ("FedAvg", || Box::new(FedAvg::new(AggWeighting::Uniform))),
        ("TACO", || {
            Box::new(Taco::new(4, TacoConfig::paper_default(8, 6)))
        }),
        ("Scaffold", || Box::new(Scaffold::new(4, 1.0))),
    ]
}

#[test]
fn trajectories_are_bit_identical_across_the_shard_thread_matrix() {
    let mut rows = Vec::new();
    for (name, make) in algorithms() {
        let reference = golden_run(make(), false, Some(BackendChoice::Sequential));
        let reference_value = history_value(&reference);
        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                let pool = Pool::new(threads);
                let got = pool::with_pool(&pool, || {
                    golden_run(make(), true, Some(BackendChoice::Sharded { shards }))
                });
                let label = format!("{name}.shards{shards}.t{threads}");
                assert_values_close(&reference_value, &history_value(&got), 0.0, &label);
                rows.push(Value::object(vec![
                    ("algorithm".to_string(), Value::from(name)),
                    ("shards".to_string(), Value::from(shards)),
                    ("threads".to_string(), Value::from(threads)),
                    ("rounds".to_string(), Value::from(got.rounds.len())),
                    ("bit_identical".to_string(), Value::Bool(true)),
                ]));
            }
        }
    }
    let report = Value::object(vec![
        ("suite".to_string(), Value::from("backend_diff")),
        ("reference".to_string(), Value::from("sequential")),
        ("comparisons".to_string(), Value::Array(rows)),
    ]);
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(
        dir.join("backend_diff_report.json"),
        report.to_json() + "\n",
    )
    .expect("write backend diff report");
}

#[test]
fn sharded_runs_match_the_committed_golden_fixtures() {
    // The goldens were recorded on the sequential path; the sharded
    // backend must reproduce the committed files exactly — shard-count
    // equivalence is not just internal consistency but agreement with
    // the frozen trajectory.
    let h = golden_run(
        Box::new(FedAvg::new(AggWeighting::Uniform)),
        false,
        Some(BackendChoice::Sharded { shards: 8 }),
    );
    check_against_golden("golden_fedavg.json", &h);
    let h = golden_run(
        Box::new(Taco::new(4, TacoConfig::paper_default(8, 6))),
        false,
        Some(BackendChoice::Sharded { shards: 3 }),
    );
    check_against_golden("golden_taco.json", &h);
}

/// A faulted TACO run: corruption past the validation norm cap (so
/// uploads are quarantined and reported through the backend), plus
/// stragglers behind a synchronous deadline, with detection enabled so
/// quarantine strikes can expel clients.
fn faulted_run(backend: BackendChoice) -> History {
    let clients = 6;
    let fed = tabular_fed(clients, 13, 0.4);
    let hyper = HyperParams::new(clients, 6, 0.05, 16);
    let plan = FaultPlan::new()
        .with_dropouts(0.1)
        .with_corruption(0.2, 1e9)
        .with_max_delta_norm(1e4)
        .with_stragglers(0.2, 4.0)
        .with_deadline(12.0, 1.0);
    let config = SimConfig::new(hyper, 8, 13)
        .with_fault_plan(plan)
        .with_backend(backend);
    let alg = Taco::new(
        clients,
        TacoConfig::paper_default(8, 6).with_detection(0.6, 1),
    );
    Simulation::new(fed, mlp(13), Box::new(alg), config).run()
}

#[test]
fn fault_injection_interacts_identically_with_both_backends() {
    let reference = faulted_run(BackendChoice::Sequential);
    assert!(
        reference.rounds.iter().any(|r| r.updates_rejected > 0),
        "fault plan must reject uploads for this test to bite"
    );
    for shards in SHARD_COUNTS {
        let got = faulted_run(BackendChoice::Sharded { shards });
        assert_values_close(
            &history_value(&reference),
            &history_value(&got),
            0.0,
            &format!("faulted.shards{shards}"),
        );
        // Fault accounting and the strike/expulsion sequence are not
        // part of history_value; compare them field by field.
        for (ra, rb) in reference.rounds.iter().zip(&got.rounds) {
            let r = ra.round;
            assert_eq!(
                ra.faults_injected, rb.faults_injected,
                "shards{shards}: faults_injected @ round {r}"
            );
            assert_eq!(
                ra.updates_rejected, rb.updates_rejected,
                "shards{shards}: updates_rejected @ round {r}"
            );
        }
        assert_eq!(
            reference.expelled_clients, got.expelled_clients,
            "shards{shards}: expulsion sequence"
        );
    }
}
