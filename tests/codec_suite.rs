//! Codec differential suite (see `taco_core::compress`).
//!
//! The upload codecs carry the same hard contract as the aggregation
//! backends: folding an encoded payload **decode-free** into the
//! sharded `f64` sum tables must be bit-identical to decoding it and
//! running the dense fold, at any shard count and any `TACO_THREADS`.
//! This suite enforces the contract three ways:
//!
//! - a raw-table differential over shards {1, 3, 8} × threads {1, 4},
//!   comparing every shard's `f64` sums bit-for-bit against a
//!   sequential decode-then-add reference;
//! - end-to-end simulations per codec, sequential vs sharded backends,
//!   with bit-identical histories;
//! - fault-pipeline runs proving corrupted *encodings* (a poisoned
//!   value, a broken index, a damaged scale header) are quarantined
//!   and counted in `updates_rejected`;
//! - a `NoCompression` run proving the codec plumbing is inert — its
//!   history is bit-identical to a codec-free run, so the committed
//!   goldens stay valid.
//!
//! CI runs this suite once per codec with `TACO_CODEC` pinned (like
//! the `TACO_BACKEND` matrix); locally, with the variable unset, every
//! codec is exercised in one pass.

mod common;

use std::sync::Arc;

use common::{assert_values_close, golden_run, golden_run_configured, history_value};
use taco::core::compress::{
    codec_by_name, codec_from_env, codec_stream, Compressor, EncodedDelta, NoCompression,
};
use taco::core::{AggWeighting, ClientUpdate, FedAvg};
use taco::sim::{BackendChoice, FaultPlan, RejectReason, ValidationPolicy};
use taco::tensor::pool::{self, Pool};
use taco::tensor::shard::{ShardSpec, StripedTable};
use taco::tensor::{Prng, Tensor};

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];
const THREAD_COUNTS: [usize; 2] = [1, 4];

/// The codecs this run exercises: the one pinned by `TACO_CODEC` when
/// CI's codec matrix sets it, otherwise the full registry.
fn codecs_under_test() -> Vec<Arc<dyn Compressor>> {
    match codec_from_env() {
        Some(c) => vec![c],
        None => ["none", "topk", "q8", "q4"]
            .iter()
            .map(|n| codec_by_name(n).expect("registry name"))
            .collect(),
    }
}

/// Encoded uploads for a synthetic cohort: normal deltas of varying
/// magnitude, encoded with the per-(round, client) rounding stream.
fn encoded_cohort(codec: &dyn Compressor, dim: usize, clients: usize) -> Vec<EncodedDelta> {
    let mut rng = Prng::seed_from_u64(17);
    (0..clients)
        .map(|client| {
            let delta = Tensor::randn([dim], 0.5 + client as f32, &mut rng).into_vec();
            codec.encode(&delta, &mut codec_stream(17, 0, client))
        })
        .collect()
}

#[test]
fn decode_free_folds_are_bit_identical_across_the_shard_thread_matrix() {
    let dim = 2003; // odd: shard boundaries cross Q4 nibble parity
    let clients = 5;
    let weights: [f32; 5] = [1.0, 0.25, 2.0, 0.125, 0.8125];
    for codec in codecs_under_test() {
        let cohort = encoded_cohort(codec.as_ref(), dim, clients);
        // Reference: decode every payload, then the sequential
        // client-order widening fold per dimension.
        let mut reference = vec![0.0f64; dim];
        for (enc, &w) in cohort.iter().zip(&weights) {
            for (a, &x) in reference.iter_mut().zip(&enc.decode()) {
                *a += w as f64 * x as f64;
            }
        }
        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                let pool = Pool::new(threads);
                let sums: Vec<f64> = pool::with_pool(&pool, || {
                    let spec = ShardSpec::new(dim, shards);
                    let table = StripedTable::new(spec);
                    // The sharded backend's dispatch: every shard
                    // folds the cohort in client order, decode-free.
                    pool::for_each_index(spec.num_shards(), |s| {
                        for (enc, &w) in cohort.iter().zip(&weights) {
                            table.accumulate_shard_with(s, |range, acc| {
                                enc.accumulate_range_into(range, acc, w);
                            });
                        }
                    });
                    (0..spec.num_shards())
                        .flat_map(|s| table.shard_sums(s))
                        .collect()
                });
                assert_eq!(sums.len(), dim);
                for (i, (got, want)) in sums.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{} shards={shards} threads={threads} dim {i}: {got} vs {want}",
                        codec.name()
                    );
                }
            }
        }
    }
}

#[test]
fn codec_histories_agree_between_sequential_and_sharded_backends() {
    for codec in codecs_under_test() {
        let alg = || Box::new(FedAvg::new(AggWeighting::Uniform));
        let reference = golden_run_configured(alg(), false, Some(BackendChoice::Sequential), |c| {
            c.with_compressor(codec.clone())
        });
        let reference_value = history_value(&reference);
        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                let pool = Pool::new(threads);
                let got = pool::with_pool(&pool, || {
                    golden_run_configured(
                        alg(),
                        true,
                        Some(BackendChoice::Sharded { shards }),
                        |c| c.with_compressor(codec.clone()),
                    )
                });
                assert_values_close(
                    &reference_value,
                    &history_value(&got),
                    0.0,
                    &format!("{}.shards{shards}.t{threads}", codec.name()),
                );
            }
        }
    }
}

#[test]
fn no_compression_codec_is_inert_against_the_codec_free_run() {
    // `NoCompression` threads a Dense encoding through the whole
    // pipeline; its trajectory (accuracies, losses, *and* the byte
    // accounting) must be bit-identical to a run with no codec at all
    // — which is what keeps the committed golden fixtures valid.
    let plain = golden_run(
        Box::new(FedAvg::new(AggWeighting::Uniform)),
        false,
        Some(BackendChoice::Sequential),
    );
    let with_codec = golden_run_configured(
        Box::new(FedAvg::new(AggWeighting::Uniform)),
        false,
        Some(BackendChoice::Sequential),
        |c| c.with_compressor(Arc::new(NoCompression)),
    );
    assert_values_close(
        &history_value(&plain),
        &history_value(&with_codec),
        0.0,
        "no_compression_inert",
    );
}

#[test]
fn corrupted_encodings_are_quarantined_and_counted() {
    for codec in codecs_under_test() {
        // Corrupt every upload: the damage lands on the encoded
        // payload (value slot, index, or scale header), and validation
        // must quarantine all of it — poisoned values/headers as
        // non-finite, broken indices as malformed encodings, scaled
        // payloads as norm explosions (the 1e-4 bound is far below any
        // honest delta scaled by 1e6).
        let history = golden_run_configured(
            Box::new(FedAvg::new(AggWeighting::Uniform)),
            false,
            Some(BackendChoice::Sequential),
            |c| {
                c.with_compressor(codec.clone()).with_fault_plan(
                    FaultPlan::new()
                        .with_corruption(1.0, 1e6)
                        .with_max_delta_norm(1e-4),
                )
            },
        );
        let rejected = history.total_updates_rejected();
        let injected = history.total_faults_injected();
        assert!(injected > 0, "{}: no corruption injected", codec.name());
        assert_eq!(
            rejected,
            injected,
            "{}: every corrupted encoding must be quarantined",
            codec.name()
        );
        for r in &history.rounds {
            assert_eq!(
                r.updates_rejected,
                r.faults_injected,
                "{} round {}: rejects must be counted per round",
                codec.name(),
                r.round
            );
        }
    }
}

#[test]
fn broken_index_is_rejected_as_malformed_before_the_floats_are_trusted() {
    // The decoded delta below is perfectly finite and small — only the
    // structural check can catch the out-of-range index.
    let update = ClientUpdate {
        client: 0,
        delta: vec![0.0, 0.5, 0.0, 0.0],
        num_samples: 1,
        final_v: None,
        mean_loss: 0.0,
        grad_evals: 1,
        steps: 1,
        compute_seconds: 0.0,
        encoded: Some(EncodedDelta::Sparse {
            dim: 4,
            indices: vec![u32::MAX],
            values: vec![0.5],
        }),
    };
    let policy = ValidationPolicy::default();
    assert_eq!(
        policy.validate(&update),
        Err(RejectReason::MalformedEncoding)
    );
    assert_eq!(
        RejectReason::MalformedEncoding.label(),
        "malformed_encoding"
    );
}
