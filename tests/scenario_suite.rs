//! Scenario-suite integration tests: churn × expulsion interaction,
//! per-client state retirement under churn, bit-identity of attacked
//! runs across the thread/backend matrix, and proof that inert
//! adversary/churn/drift plans leave the committed golden fixtures
//! byte-identical.

mod common;

use common::{
    assert_values_close, check_against_golden, golden_run_configured, history_value, mlp,
    tabular_fed,
};
use taco::core::taco::TacoConfig;
use taco::core::{AggWeighting, FedAvg, FoolsGold, HyperParams, Taco};
use taco::data::partition::DriftSchedule;
use taco::sim::{
    detection, AdversaryPlan, BackendChoice, ChurnTrace, ClientBehavior, FaultPlan, History,
    SimConfig, Simulation,
};
use taco::tensor::pool::{self, Pool};

/// A TACO-expelled client whose churn trace has it depart and later
/// "rejoin" must stay expelled: the rejoin is never announced and the
/// client never re-enters the participant set.
#[test]
fn expelled_client_cannot_rejoin_through_churn() {
    let clients = 4;
    let hyper = HyperParams::new(clients, 4, 0.05, 16);
    // Corruption targeting client 0 blows past the norm cap every
    // round; the quarantine strikes expel it by round 2. κ = 0.9 keeps
    // the skewed-but-honest clients clear of alpha strikes.
    let plan = FaultPlan::new()
        .with_corruption(1.0, 1e12)
        .targeting(vec![0])
        .with_max_delta_norm(1e4);
    let taco = Taco::new(
        clients,
        TacoConfig::paper_default(10, 4).with_detection(0.9, 2),
    );
    let trace = ChurnTrace::new(clients).departs(0, 4).joins(0, 6);
    let config = SimConfig::new(hyper, 10, 17)
        .with_fault_plan(plan)
        .with_churn(trace);
    let history = Simulation::new(
        tabular_fed(clients, 27, 0.3),
        mlp(27),
        Box::new(taco),
        config,
    )
    .run();
    assert_eq!(history.rounds.len(), 10);
    assert_eq!(history.expelled_clients, vec![0]);
    let expelled_round = history
        .rounds
        .iter()
        .position(|r| r.expelled > 0)
        .expect("client 0 is expelled during the run");
    // From the expulsion on — through the departure at round 4 and the
    // attempted rejoin at round 6 — client 0 never participates again.
    for rec in &history.rounds[expelled_round + 1..] {
        assert!(
            !rec.participants.contains(&0),
            "expelled client resurfaced in round {}",
            rec.round
        );
    }
    // The survivors keep training to the end.
    assert_eq!(history.rounds[9].participants, vec![1, 2, 3]);
}

/// FoolsGold's per-client cosine histories are retired on departure
/// and re-materialized from scratch on rejoin, which the
/// `tracked_states` probe observes round by round.
#[test]
fn departed_clients_state_is_dropped_and_rebuilt() {
    let clients = 3;
    let hyper = HyperParams::new(clients, 3, 0.05, 16);
    let trace = ChurnTrace::new(clients).departs(2, 2).joins(2, 4);
    let config = SimConfig::new(hyper, 6, 23).with_churn(trace);
    let history = Simulation::new(
        tabular_fed(clients, 29, 0.3),
        mlp(29),
        Box::new(FoolsGold::new()),
        config,
    )
    .run();
    assert_eq!(history.rounds.len(), 6);
    // Rounds 0-1: all three uploaded, three histories held.
    assert_eq!(history.rounds[1].tracked_states, 3);
    // Rounds 2-3: client 2 departed, its history dropped.
    assert_eq!(history.rounds[2].tracked_states, 2);
    assert_eq!(history.rounds[3].tracked_states, 2);
    // Round 4: rejoined, history rebuilt from zero.
    assert_eq!(history.rounds[4].tracked_states, 3);
    assert_eq!(history.rounds[2].participants, vec![0, 1]);
    assert_eq!(history.rounds[4].participants, vec![0, 1, 2]);
}

/// A full-strength coalition sharing a seeded direction is exactly
/// the signature FoolsGold's pairwise cosine history catches: the
/// per-round curves complete detection with zero false positives.
#[test]
fn colluders_show_up_on_the_detection_curves() {
    let clients = 6;
    let behaviors =
        taco::sim::freeloader::with_behavior(clients, 2, ClientBehavior::Colluder { coalition: 0 });
    let hyper = HyperParams::new(clients, 4, 0.05, 16);
    let config = SimConfig::new(hyper, 8, 41)
        .with_behaviors(behaviors.clone())
        .with_adversary(AdversaryPlan::new().with_collusion_strength(1.0));
    let history = Simulation::new(
        tabular_fed(clients, 43, 0.3),
        mlp(43),
        Box::new(FoolsGold::new()),
        config,
    )
    .run();
    let curves = detection::curves(&history, &behaviors);
    assert_eq!(curves.per_round.len(), 8);
    let t = curves
        .time_to_detection
        .expect("full-strength coalition is detected");
    assert!(t <= 8, "detection completed at round {t}");
    let last = curves.final_score().expect("non-empty curves");
    assert_eq!(last.tpr, 1.0, "both colluders flagged by the final round");
    assert_eq!(last.fpr, 0.0, "no honest client flagged");
}

fn adversarial_history(parallel: bool, backend: BackendChoice) -> History {
    let clients = 4;
    let hyper = HyperParams::new(clients, 6, 0.05, 16);
    let mut config = SimConfig::new(hyper, 8, 11)
        .with_behaviors(vec![
            ClientBehavior::SignFlip,
            ClientBehavior::Colluder { coalition: 0 },
            ClientBehavior::Colluder { coalition: 0 },
            ClientBehavior::Honest,
        ])
        .with_adversary(AdversaryPlan::new().starting_at(2))
        .with_churn(ChurnTrace::new(clients).departs(3, 4).joins(3, 6))
        .with_drift(DriftSchedule::new(0.5, 0.2, 3, 8))
        .with_backend(backend);
    config.parallel = parallel;
    Simulation::new(
        tabular_fed(clients, 11, 0.3),
        mlp(11),
        Box::new(Taco::new(clients, TacoConfig::paper_default(8, 6))),
        config,
    )
    .run()
}

/// An attacked, churning, drifting run is bit-identical across the
/// thread × backend matrix: attacks are applied to sorted updates from
/// per-client seeded streams, so neither the worker pool size nor the
/// sharded parameter server may perturb a single bit.
#[test]
fn attacked_runs_are_bit_identical_across_threads_and_backends() {
    let reference = adversarial_history(false, BackendChoice::Sequential);
    let golden = history_value(&reference);
    assert!(
        reference.total_attacks_applied() > 0,
        "scenario applies no attacks; the matrix would prove nothing"
    );
    for &threads in &[1usize, 4] {
        for &backend in &[
            BackendChoice::Sequential,
            BackendChoice::Sharded { shards: 3 },
        ] {
            let got = pool::with_pool(&Pool::new(threads), || adversarial_history(true, backend));
            assert_eq!(
                got.total_attacks_applied(),
                reference.total_attacks_applied(),
                "attack count drifted (threads={threads}, {backend:?})"
            );
            assert_values_close(
                &golden,
                &history_value(&got),
                0.0,
                &format!("threads={threads}/{backend:?}"),
            );
        }
    }
}

/// Attaching inert plans — an empty adversary plan over all-honest
/// behaviours, a churn trace with no events, an inert drift schedule —
/// must leave the committed golden fixtures byte-identical on both
/// backends.
#[test]
fn inert_plans_leave_the_goldens_untouched() {
    let inert = |c: SimConfig| {
        c.with_adversary(AdversaryPlan::new())
            .with_churn(ChurnTrace::new(4))
            .with_drift(DriftSchedule::inert())
    };
    for &backend in &[
        BackendChoice::Sequential,
        BackendChoice::Sharded { shards: 3 },
    ] {
        let h = golden_run_configured(
            Box::new(FedAvg::new(AggWeighting::Uniform)),
            true,
            Some(backend),
            inert,
        );
        check_against_golden("golden_fedavg.json", &h);
        let h = golden_run_configured(
            Box::new(Taco::new(4, TacoConfig::paper_default(8, 6))),
            true,
            Some(backend),
            inert,
        );
        check_against_golden("golden_taco.json", &h);
    }
}
