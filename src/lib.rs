//! Facade crate re-exporting the TACO reproduction public API.
//!
//! See the individual crates for details:
//! - [`taco_tensor`] — dense tensor math substrate
//! - [`taco_nn`] — neural networks with manual backprop
//! - [`taco_data`] — synthetic federated datasets and partitioners
//! - [`taco_core`] — FL algorithms (TACO + six baselines)
//! - [`taco_sim`] — federated simulation runtime
//! - [`taco_trace`] — structured tracing, metrics, and run manifests

pub use taco_core as core;
pub use taco_data as data;
pub use taco_nn as nn;
pub use taco_sim as sim;
pub use taco_tensor as tensor;
pub use taco_trace as trace;
