//! Randomized property tests for the tensor substrate's algebraic
//! identities, driven by seeded [`Prng`] case generators (the offline
//! crate set has no proptest).

use taco_tensor::{conv, linalg, ops, Prng, Tensor};

const CASES: u64 = 48;

fn tensor(rows: usize, cols: usize, rng: &mut Prng) -> Tensor {
    let v: Vec<f32> = (0..rows * cols)
        .map(|_| rng.uniform_f32() * 20.0 - 10.0)
        .collect();
    Tensor::from_vec(v, &[rows, cols][..])
}

fn vector(n: usize, scale: f32, rng: &mut Prng) -> Vec<f32> {
    (0..n)
        .map(|_| rng.uniform_f32() * 2.0 * scale - scale)
        .collect()
}

/// (A·B)·C == A·(B·C) within f32 tolerance.
#[test]
fn matmul_is_associative() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xA550C ^ case);
        let a = tensor(3, 4, &mut rng);
        let b = tensor(4, 2, &mut rng);
        let c = tensor(2, 5, &mut rng);
        let left = linalg::matmul(&linalg::matmul(&a, &b), &c);
        let right = linalg::matmul(&a, &linalg::matmul(&b, &c));
        for (l, r) in left.data().iter().zip(right.data()) {
            assert!(
                (l - r).abs() < 1e-2 * (1.0 + l.abs()),
                "case {case}: {l} vs {r}"
            );
        }
    }
}

/// (A·B)^T == B^T · A^T.
#[test]
fn transpose_reverses_products() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x7085 ^ case);
        let a = tensor(3, 4, &mut rng);
        let b = tensor(4, 2, &mut rng);
        let lhs = linalg::matmul(&a, &b).transpose();
        let rhs = linalg::matmul(&b.transpose(), &a.transpose());
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            assert!((l - r).abs() < 1e-3 * (1.0 + l.abs()), "case {case}");
        }
    }
}

/// matmul distributes over addition.
#[test]
fn matmul_distributes() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xD157 ^ case);
        let a = tensor(2, 3, &mut rng);
        let b = tensor(3, 2, &mut rng);
        let c = tensor(3, 2, &mut rng);
        let lhs = linalg::matmul(&a, &(&b + &c));
        let rhs = &linalg::matmul(&a, &b) + &linalg::matmul(&a, &c);
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            assert!((l - r).abs() < 1e-3 * (1.0 + l.abs()), "case {case}");
        }
    }
}

/// Cauchy–Schwarz: |<a, b>| <= |a|·|b|.
#[test]
fn cauchy_schwarz() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xCA0C ^ case);
        let n = 1 + rng.below(15);
        let a = vector(n, 10.0, &mut rng);
        let b = vector(n, 10.0, &mut rng);
        let dot = ops::dot(&a, &b).abs();
        let bound = ops::norm(&a) * ops::norm(&b);
        assert!(
            dot <= bound * (1.0 + 1e-4) + 1e-5,
            "case {case}: {dot} > {bound}"
        );
    }
}

/// Triangle inequality on the flat-vector norm.
#[test]
fn triangle_inequality() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x781A ^ case);
        let n = 1 + rng.below(15);
        let a = vector(n, 10.0, &mut rng);
        let b = vector(n, 10.0, &mut rng);
        let sum = ops::add(&a, &b);
        assert!(
            ops::norm(&sum) <= ops::norm(&a) + ops::norm(&b) + 1e-4,
            "case {case}"
        );
    }
}

/// im2col/col2im adjointness: <im2col(x), y> == <x, col2im(y)>.
#[test]
fn im2col_adjoint() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x12C ^ case);
        let pad = rng.below(2);
        let stride = 1 + rng.below(2);
        let spec = conv::Conv2dSpec {
            in_channels: 2,
            out_channels: 1,
            kernel: 3,
            stride,
            padding: pad,
        };
        let (h, w) = (6, 6);
        let x = Tensor::randn(&[2 * h * w][..], 1.0, &mut rng);
        let cols = conv::im2col(x.data(), h, w, &spec);
        let y = Tensor::randn(cols.shape().clone(), 1.0, &mut rng);
        let lhs = ops::dot(cols.data(), y.data());
        let back = conv::col2im(&y, h, w, &spec);
        let rhs = ops::dot(x.data(), &back);
        assert!(
            (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "case {case}: {lhs} vs {rhs}"
        );
    }
}

/// Dirichlet draws are simplex points for any shape/seed.
#[test]
fn dirichlet_simplex() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xD1E ^ case);
        let alpha = 0.05 + rng.uniform_f64() * 9.95;
        let k = 1 + rng.below(19);
        let p = rng.dirichlet(alpha, k);
        assert_eq!(p.len(), k);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "case {case}: sum {sum}");
        assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
    }
}

/// `below(n)` is always within range.
#[test]
fn below_in_range() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xB10 ^ case);
        let bound = 1 + rng.below(9_999);
        for _ in 0..50 {
            assert!(rng.below(bound) < bound, "case {case}");
        }
    }
}
