//! Randomized property tests for the tensor substrate's algebraic
//! identities, driven by seeded [`Prng`] case generators (the offline
//! crate set has no proptest), plus the differential kernel suite:
//! blocked/parallel matmul vs the frozen naive references across
//! ragged shapes, with *exact bit* agreement, and determinism probes
//! showing `TACO_THREADS=1` and `TACO_THREADS=8` produce identical
//! bits (in-process via pool overrides and across real processes via
//! the environment variable).

use taco_tensor::pool::{self, Pool};
use taco_tensor::{conv, linalg, ops, Prng, Tensor};

const CASES: u64 = 48;

fn tensor(rows: usize, cols: usize, rng: &mut Prng) -> Tensor {
    let v: Vec<f32> = (0..rows * cols)
        .map(|_| rng.uniform_f32() * 20.0 - 10.0)
        .collect();
    Tensor::from_vec(v, &[rows, cols][..])
}

fn vector(n: usize, scale: f32, rng: &mut Prng) -> Vec<f32> {
    (0..n)
        .map(|_| rng.uniform_f32() * 2.0 * scale - scale)
        .collect()
}

/// (A·B)·C == A·(B·C) within f32 tolerance.
#[test]
fn matmul_is_associative() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xA550C ^ case);
        let a = tensor(3, 4, &mut rng);
        let b = tensor(4, 2, &mut rng);
        let c = tensor(2, 5, &mut rng);
        let left = linalg::matmul(&linalg::matmul(&a, &b), &c);
        let right = linalg::matmul(&a, &linalg::matmul(&b, &c));
        for (l, r) in left.data().iter().zip(right.data()) {
            assert!(
                (l - r).abs() < 1e-2 * (1.0 + l.abs()),
                "case {case}: {l} vs {r}"
            );
        }
    }
}

/// (A·B)^T == B^T · A^T.
#[test]
fn transpose_reverses_products() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x7085 ^ case);
        let a = tensor(3, 4, &mut rng);
        let b = tensor(4, 2, &mut rng);
        let lhs = linalg::matmul(&a, &b).transpose();
        let rhs = linalg::matmul(&b.transpose(), &a.transpose());
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            assert!((l - r).abs() < 1e-3 * (1.0 + l.abs()), "case {case}");
        }
    }
}

/// matmul distributes over addition.
#[test]
fn matmul_distributes() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xD157 ^ case);
        let a = tensor(2, 3, &mut rng);
        let b = tensor(3, 2, &mut rng);
        let c = tensor(3, 2, &mut rng);
        let lhs = linalg::matmul(&a, &(&b + &c));
        let rhs = &linalg::matmul(&a, &b) + &linalg::matmul(&a, &c);
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            assert!((l - r).abs() < 1e-3 * (1.0 + l.abs()), "case {case}");
        }
    }
}

/// Cauchy–Schwarz: |<a, b>| <= |a|·|b|.
#[test]
fn cauchy_schwarz() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xCA0C ^ case);
        let n = 1 + rng.below(15);
        let a = vector(n, 10.0, &mut rng);
        let b = vector(n, 10.0, &mut rng);
        let dot = ops::dot(&a, &b).abs();
        let bound = ops::norm(&a) * ops::norm(&b);
        assert!(
            dot <= bound * (1.0 + 1e-4) + 1e-5,
            "case {case}: {dot} > {bound}"
        );
    }
}

/// Triangle inequality on the flat-vector norm.
#[test]
fn triangle_inequality() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x781A ^ case);
        let n = 1 + rng.below(15);
        let a = vector(n, 10.0, &mut rng);
        let b = vector(n, 10.0, &mut rng);
        let sum = ops::add(&a, &b);
        assert!(
            ops::norm(&sum) <= ops::norm(&a) + ops::norm(&b) + 1e-4,
            "case {case}"
        );
    }
}

/// im2col/col2im adjointness: <im2col(x), y> == <x, col2im(y)>.
#[test]
fn im2col_adjoint() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x12C ^ case);
        let pad = rng.below(2);
        let stride = 1 + rng.below(2);
        let spec = conv::Conv2dSpec {
            in_channels: 2,
            out_channels: 1,
            kernel: 3,
            stride,
            padding: pad,
        };
        let (h, w) = (6, 6);
        let x = Tensor::randn(&[2 * h * w][..], 1.0, &mut rng);
        let cols = conv::im2col(x.data(), h, w, &spec);
        let y = Tensor::randn(cols.shape().clone(), 1.0, &mut rng);
        let lhs = ops::dot(cols.data(), y.data());
        let back = conv::col2im(&y, h, w, &spec);
        let rhs = ops::dot(x.data(), &back);
        assert!(
            (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "case {case}: {lhs} vs {rhs}"
        );
    }
}

/// Dirichlet draws are simplex points for any shape/seed.
#[test]
fn dirichlet_simplex() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xD1E ^ case);
        let alpha = 0.05 + rng.uniform_f64() * 9.95;
        let k = 1 + rng.below(19);
        let p = rng.dirichlet(alpha, k);
        assert_eq!(p.len(), k);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "case {case}: sum {sum}");
        assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
    }
}

/// `below(n)` is always within range.
#[test]
fn below_in_range() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xB10 ^ case);
        let bound = 1 + rng.below(9_999);
        for _ in 0..50 {
            assert!(rng.below(bound) < bound, "case {case}");
        }
    }
}

// --- Differential kernel tests ------------------------------------

/// Ragged shape generator: 1×1, prime dims, tall/skinny, batch-like
/// (≤64), and pool-engaging sizes (the blocked kernels only dispatch
/// to workers above a work threshold, so some cases must be big).
fn ragged_dims(rng: &mut Prng) -> (usize, usize, usize) {
    const PRIMES: &[usize] = &[
        1, 2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 47, 53, 61,
    ];
    let pick = |rng: &mut Prng| PRIMES[rng.below(PRIMES.len())];
    match rng.below(5) {
        0 => (1, 1, 1),
        1 => (pick(rng), pick(rng), pick(rng)),
        // Tall & skinny either way.
        2 => (97 + rng.below(80), 1 + rng.below(6), 1 + rng.below(6)),
        3 => (1 + rng.below(6), 1 + rng.below(6), 97 + rng.below(80)),
        // Batch-like, large enough to cross the parallel threshold.
        _ => (33 + rng.below(32), 83 + rng.below(60), 83 + rng.below(60)),
    }
}

fn ragged(rows: usize, cols: usize, rng: &mut Prng) -> Tensor {
    // Mix magnitudes and exact zeros so the naive kernels' zero-skip
    // path is exercised by the comparison.
    let v: Vec<f32> = (0..rows * cols)
        .map(|_| match rng.below(8) {
            0 => 0.0,
            1 => rng.normal_f32() * 1e4,
            2 => rng.normal_f32() * 1e-4,
            _ => rng.normal_f32(),
        })
        .collect();
    Tensor::from_vec(v, &[rows, cols][..])
}

fn assert_bits(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.dims(), want.dims(), "{what}: shape");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs ({g} vs {w})"
        );
    }
}

/// Blocked kernels vs the frozen naive references, exact to the bit,
/// on 1 and 8 in-process pool threads.
#[test]
fn blocked_kernels_match_naive_bitwise_across_ragged_shapes() {
    let one = Pool::new(1);
    let eight = Pool::new(8);
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xD1FF ^ case);
        let (m, k, n) = ragged_dims(&mut rng);
        let a = ragged(m, k, &mut rng);
        let b = ragged(k, n, &mut rng);
        let at = ragged(k, m, &mut rng);
        let bt = ragged(n, k, &mut rng);
        let want_nn = linalg::matmul_naive(&a, &b);
        let want_tn = linalg::matmul_tn_naive(&at, &b);
        let want_nt = linalg::matmul_nt_naive(&a, &bt);
        for (pool, label) in [(&one, "1t"), (&eight, "8t")] {
            pool::with_pool(pool, || {
                assert_bits(
                    &linalg::matmul(&a, &b),
                    &want_nn,
                    &format!("case {case} matmul {m}x{k}x{n} {label}"),
                );
                assert_bits(
                    &linalg::matmul_tn(&at, &b),
                    &want_tn,
                    &format!("case {case} matmul_tn {m}x{k}x{n} {label}"),
                );
                assert_bits(
                    &linalg::matmul_nt(&a, &bt),
                    &want_nt,
                    &format!("case {case} matmul_nt {m}x{k}x{n} {label}"),
                );
            });
        }
    }
}

/// One deliberately pool-heavy shape: many chunks, uneven tail rows.
#[test]
fn parallel_chunking_is_bit_identical_on_uneven_tails() {
    let mut rng = Prng::seed_from_u64(0xBEEF);
    // 131 rows = 4 full MC=32 chunks + a 3-row tail chunk.
    let a = ragged(131, 113, &mut rng);
    let b = ragged(113, 127, &mut rng);
    let want = linalg::matmul_naive(&a, &b);
    for threads in [1, 2, 3, 8] {
        let p = Pool::new(threads);
        pool::with_pool(&p, || {
            assert_bits(
                &linalg::matmul(&a, &b),
                &want,
                &format!("{threads} threads"),
            );
        });
    }
}

// --- TACO_THREADS determinism across processes --------------------

/// Hashes every kernel output (matmul family + conv/pool paths) for a
/// fixed seed into one FNV-1a digest.
fn kernel_digest() -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |bits: u64| {
        h ^= bits;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    let mut rng = Prng::seed_from_u64(0x51D);
    let a = ragged(70, 190, &mut rng);
    let b = ragged(190, 60, &mut rng);
    let bt = ragged(60, 190, &mut rng);
    for t in [
        linalg::matmul(&a, &b),
        linalg::matmul_tn(&a.transpose(), &b),
        linalg::matmul_nt(&a, &bt),
    ] {
        for v in t.data() {
            fold(u64::from(v.to_bits()));
        }
    }
    let spec = conv::Conv2dSpec {
        in_channels: 3,
        out_channels: 8,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let img = Tensor::randn(&[3 * 24 * 24][..], 1.0, &mut rng);
    let weight = Tensor::randn(&[8, 3 * 9][..], 0.5, &mut rng);
    let (out, cols) = conv::conv2d_forward(img.data(), 24, 24, &weight, &[0.0; 8], &spec);
    let mut gw = Tensor::zeros(&[8, 3 * 9][..]);
    let mut gb = [0.0f32; 8];
    let gin = conv::conv2d_backward(&out, 24, 24, &weight, &cols, &spec, &mut gw, &mut gb);
    let (pooled, arg) = conv::maxpool2d_forward(&out, 8, 24, 24, 2, 2);
    let gpool = conv::maxpool2d_backward(&pooled, &arg, 8, out.len());
    for series in [&out[..], &gin, gw.data(), &pooled, &gpool] {
        for v in series {
            fold(u64::from(v.to_bits()));
        }
    }
    h
}

/// Prints the digest under the ambient `TACO_THREADS`; harnessed by
/// [`taco_threads_env_is_bit_deterministic`], which runs this test in
/// child processes with different settings. Also asserts in-process
/// that 1-thread and 8-thread pools reproduce the ambient digest.
#[test]
fn kernel_digest_probe() {
    let ambient = kernel_digest();
    println!("KERNEL_DIGEST=0x{ambient:016x}");
    let one = pool::with_pool(&Pool::new(1), kernel_digest);
    let eight = pool::with_pool(&Pool::new(8), kernel_digest);
    assert_eq!(ambient, one, "ambient vs 1-thread digest");
    assert_eq!(one, eight, "1-thread vs 8-thread digest");
}

/// Spawns this test binary twice — `TACO_THREADS=1` and
/// `TACO_THREADS=8` — and asserts both print the same kernel digest:
/// the environment knob itself, not just the in-process override, is
/// bit-deterministic.
#[test]
fn taco_threads_env_is_bit_deterministic() {
    let exe = std::env::current_exe().expect("test binary path");
    let digest_for = |threads: &str| -> String {
        let out = std::process::Command::new(&exe)
            .args([
                "--exact",
                "kernel_digest_probe",
                "--nocapture",
                "--test-threads=1",
            ])
            .env("TACO_THREADS", threads)
            .output()
            .expect("spawn kernel_digest_probe child");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "child with TACO_THREADS={threads} failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // `--nocapture` may glue the digest onto libtest's status line,
        // so scan for the marker anywhere rather than at line starts.
        stdout
            .split("KERNEL_DIGEST=")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no digest line in child output:\n{stdout}"))
    };
    let d1 = digest_for("1");
    let d8 = digest_for("8");
    assert_eq!(d1, d8, "TACO_THREADS=1 vs TACO_THREADS=8 digests differ");
}
