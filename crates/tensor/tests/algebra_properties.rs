//! Property tests for the tensor substrate's algebraic identities.

use proptest::prelude::*;
use taco_tensor::{conv, linalg, ops, Prng, Tensor};

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols][..]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)·C == A·(B·C) within f32 tolerance.
    #[test]
    fn matmul_is_associative(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(2, 5),
    ) {
        let left = linalg::matmul(&linalg::matmul(&a, &b), &c);
        let right = linalg::matmul(&a, &linalg::matmul(&b, &c));
        for (l, r) in left.data().iter().zip(right.data()) {
            prop_assert!((l - r).abs() < 1e-2 * (1.0 + l.abs()), "{} vs {}", l, r);
        }
    }

    /// (A·B)^T == B^T · A^T.
    #[test]
    fn transpose_reverses_products(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
    ) {
        let lhs = linalg::matmul(&a, &b).transpose();
        let rhs = linalg::matmul(&b.transpose(), &a.transpose());
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((l - r).abs() < 1e-3 * (1.0 + l.abs()));
        }
    }

    /// matmul distributes over addition.
    #[test]
    fn matmul_distributes(
        a in tensor_strategy(2, 3),
        b in tensor_strategy(3, 2),
        c in tensor_strategy(3, 2),
    ) {
        let lhs = linalg::matmul(&a, &(&b + &c));
        let rhs = &linalg::matmul(&a, &b) + &linalg::matmul(&a, &c);
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((l - r).abs() < 1e-3 * (1.0 + l.abs()));
        }
    }

    /// Cauchy–Schwarz: |<a, b>| <= |a|·|b|.
    #[test]
    fn cauchy_schwarz(
        (a, b) in (1usize..16).prop_flat_map(|n| (
            proptest::collection::vec(-10.0f32..10.0, n..=n),
            proptest::collection::vec(-10.0f32..10.0, n..=n),
        )),
    ) {
        let dot = ops::dot(&a, &b).abs();
        let bound = ops::norm(&a) * ops::norm(&b);
        prop_assert!(dot <= bound * (1.0 + 1e-4) + 1e-5, "{} > {}", dot, bound);
    }

    /// Triangle inequality on the flat-vector norm.
    #[test]
    fn triangle_inequality(
        (a, b) in (1usize..16).prop_flat_map(|n| (
            proptest::collection::vec(-10.0f32..10.0, n..=n),
            proptest::collection::vec(-10.0f32..10.0, n..=n),
        )),
    ) {
        let sum = ops::add(&a, &b);
        prop_assert!(ops::norm(&sum) <= ops::norm(&a) + ops::norm(&b) + 1e-4);
    }

    /// im2col/col2im adjointness: <im2col(x), y> == <x, col2im(y)>.
    #[test]
    fn im2col_adjoint(seed in 0u64..1000, pad in 0usize..2, stride in 1usize..3) {
        let spec = conv::Conv2dSpec {
            in_channels: 2,
            out_channels: 1,
            kernel: 3,
            stride,
            padding: pad,
        };
        let (h, w) = (6, 6);
        let mut rng = Prng::seed_from_u64(seed);
        let x = Tensor::randn(&[2 * h * w][..], 1.0, &mut rng);
        let cols = conv::im2col(x.data(), h, w, &spec);
        let y = Tensor::randn(cols.shape().clone(), 1.0, &mut rng);
        let lhs = ops::dot(cols.data(), y.data());
        let back = conv::col2im(&y, h, w, &spec);
        let rhs = ops::dot(x.data(), &back);
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    /// Dirichlet draws are simplex points for any shape/seed.
    #[test]
    fn dirichlet_simplex(alpha in 0.05f64..10.0, k in 1usize..20, seed in 0u64..500) {
        let mut rng = Prng::seed_from_u64(seed);
        let p = rng.dirichlet(alpha, k);
        prop_assert_eq!(p.len(), k);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
    }

    /// `below(n)` is always within range.
    #[test]
    fn below_in_range(bound in 1usize..10_000, seed in 0u64..100) {
        let mut rng = Prng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(bound) < bound);
        }
    }
}
