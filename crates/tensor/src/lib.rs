//! Dense tensor and linear-algebra substrate for the TACO reproduction.
//!
//! This crate is the mathematical foundation every other crate in the
//! workspace builds on. It provides:
//!
//! - [`Tensor`]: a dense, row-major, `f32` n-dimensional array with the
//!   element-wise and reduction operations needed for neural-network
//!   training.
//! - [`linalg`]: cache-blocked, register-tiled matrix multiplication
//!   (plain / transposed variants) with runtime AVX dispatch and
//!   bit-exact naive reference kernels for differential testing.
//! - [`conv`]: `im2col`-based 2-D convolution and max-pooling
//!   forward/backward kernels.
//! - [`pool`]: a persistent worker pool (`TACO_THREADS`) that the
//!   matmul/conv kernels and the simulation's client loop share;
//!   partitioning is size-independent so results are bit-identical at
//!   any thread count.
//! - [`ops`]: flat-vector helpers (`dot`, `norm`, `cosine_similarity`,
//!   `axpy`, ...) used pervasively by the federated-learning algorithms,
//!   which treat model parameters as flat `&[f32]` slices.
//! - [`shard`]: contiguous dimension sharding with lock-striped,
//!   double-buffered `f64` accumulators for the simulation's sharded
//!   parameter-server backend; merge order is fixed so sharded
//!   aggregation is bit-identical to the sequential fold.
//! - [`rng`]: a deterministic xoshiro256++ PRNG with normal, gamma,
//!   Dirichlet and categorical samplers (the offline `rand` crate does
//!   not ship `rand_distr`, so the distributions needed by the paper's
//!   Dirichlet partitioner are implemented here).
//! - [`stats`]: small summary-statistics helpers used by the metrics
//!   pipeline.
//!
//! # Example
//!
//! ```
//! use taco_tensor::{Tensor, linalg};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = linalg::matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! ```

#![deny(missing_docs)]

pub mod conv;
mod ktrace;
pub mod linalg;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod shard;
pub mod stats;
mod tensor;

pub use rng::Prng;
pub use shape::Shape;
pub use tensor::Tensor;
