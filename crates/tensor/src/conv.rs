//! 2-D convolution and pooling kernels.
//!
//! Convolution is implemented via `im2col`: the input patches are
//! unrolled into a matrix so that convolution becomes one matrix
//! multiplication (and the backward pass two). This is the classic
//! CPU strategy and keeps all heavy lifting in [`crate::linalg`].
//!
//! Layout conventions: activations are `[batch, channels, height,
//! width]` (NCHW) flattened row-major; kernels are `[out_ch, in_ch,
//! kh, kw]`.
//!
//! The patch-matrix and pooling loops here run on the worker pool
//! ([`crate::pool`]) when the problem is large enough: `im2col` is
//! split over output-row blocks and `col2im` / max-pooling over
//! channels — partitions whose writes are disjoint and whose
//! per-element accumulation order matches the sequential loops, so
//! results are bit-identical at any thread count. Each kernel reports
//! `kernel.*` time/call/element metrics via `taco-trace`.

use crate::ktrace;
use crate::linalg;
use crate::pool;
use crate::pool::SendPtr;
use crate::Tensor;

static K_IM2COL: ktrace::Kernel = ktrace::Kernel::new("kernel.im2col");
static K_COL2IM: ktrace::Kernel = ktrace::Kernel::new("kernel.col2im");
static K_MAXPOOL: ktrace::Kernel = ktrace::Kernel::new("kernel.maxpool2d");
static K_MAXPOOL_BWD: ktrace::Kernel = ktrace::Kernel::new("kernel.maxpool2d_bwd");

/// Below this many moved elements a conv/pool kernel stays on the
/// caller; these loops are copy-bound, so the dispatch only pays off
/// for reasonably large planes.
const MIN_PAR_ELEMS: usize = 1 << 14;

/// `im2col` output rows (`oy` values) per parallel chunk.
const IM2COL_ROWS_PER_CHUNK: usize = 4;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (ignored by pooling).
    pub out_channels: usize,
    /// Kernel height and width.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied on every side.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit (output would be empty).
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding)
            .checked_sub(self.kernel)
            .map(|x| x / self.stride + 1);
        let ow = (w + 2 * self.padding)
            .checked_sub(self.kernel)
            .map(|x| x / self.stride + 1);
        match (oh, ow) {
            (Some(oh), Some(ow)) if oh > 0 && ow > 0 => (oh, ow),
            _ => panic!(
                "conv window {}x{} stride {} pad {} does not fit input {h}x{w}",
                self.kernel, self.kernel, self.stride, self.padding
            ),
        }
    }
}

/// Unrolls input patches into a `[oh*ow, in_ch*k*k]` matrix for one
/// image of shape `[in_ch, h, w]` (flattened).
///
/// Out-of-bounds (padding) positions contribute zeros.
pub fn im2col(input: &[f32], h: usize, w: usize, spec: &Conv2dSpec) -> Tensor {
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let cols = spec.in_channels * k * k;
    let _t = K_IM2COL.record((oh * ow * cols) as u64);
    let mut out = vec![0.0f32; oh * ow * cols];
    if out.is_empty() {
        return Tensor::from_vec(out, &[oh * ow, cols][..]);
    }
    // Each output row `oy` owns a contiguous `ow * cols` slice; chunks
    // are fixed-size row blocks (pure copies — any partition is exact).
    let row_elems = ow * cols;
    let rows_per_chunk = if oh * row_elems < MIN_PAR_ELEMS || pool::threads() <= 1 {
        oh
    } else {
        IM2COL_ROWS_PER_CHUNK
    };
    pool::for_each_chunk(&mut out, rows_per_chunk * row_elems, |ci, chunk| {
        let oy0 = ci * rows_per_chunk;
        let oys = chunk.len() / row_elems;
        for dy in 0..oys {
            let oy = oy0 + dy;
            for ox in 0..ow {
                let base = (dy * ow + ox) * cols;
                for c in 0..spec.in_channels {
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let src = c * h * w + iy as usize * w + ix as usize;
                            let dst = base + c * k * k + ky * k + kx;
                            chunk[dst] = input[src];
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[oh * ow, cols][..])
}

/// Scatters a `[oh*ow, in_ch*k*k]` column matrix back into an image
/// gradient of shape `[in_ch, h, w]` (the adjoint of [`im2col`]).
pub fn col2im(cols_t: &Tensor, h: usize, w: usize, spec: &Conv2dSpec) -> Vec<f32> {
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let cols = spec.in_channels * k * k;
    assert_eq!(cols_t.dims(), &[oh * ow, cols], "col2im shape mismatch");
    let _t = K_COL2IM.record((oh * ow * cols) as u64);
    let mut out = vec![0.0f32; spec.in_channels * h * w];
    if out.is_empty() {
        return out;
    }
    let data = cols_t.data();
    let chw = h * w;
    // Scatter is parallel over channels: every destination belongs to
    // exactly one channel, and within a channel the (oy, ox, ky, kx)
    // accumulation order below is the same as the sequential loop's, so
    // the f32 sums are bit-identical.
    let chunk_len = if oh * ow * cols < MIN_PAR_ELEMS || pool::threads() <= 1 {
        out.len()
    } else {
        chw
    };
    pool::for_each_chunk(&mut out, chunk_len, |ci, chunk| {
        let c0 = ci * chunk_len / chw;
        let nch = chunk.len() / chw;
        for dc in 0..nch {
            let c = c0 + dc;
            for oy in 0..oh {
                for ox in 0..ow {
                    let base = (oy * ow + ox) * cols;
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let dst = dc * chw + iy as usize * w + ix as usize;
                            let src = base + c * k * k + ky * k + kx;
                            chunk[dst] += data[src];
                        }
                    }
                }
            }
        }
    });
    out
}

/// Forward 2-D convolution for one image.
///
/// `input` is `[in_ch, h, w]` flattened, `weight` is
/// `[out_ch, in_ch*k*k]`, `bias` has `out_ch` entries. Returns the
/// output `[out_ch, oh, ow]` flattened plus the `im2col` matrix, which
/// the caller keeps for the backward pass.
pub fn conv2d_forward(
    input: &[f32],
    h: usize,
    w: usize,
    weight: &Tensor,
    bias: &[f32],
    spec: &Conv2dSpec,
) -> (Vec<f32>, Tensor) {
    let (oh, ow) = spec.output_hw(h, w);
    let cols = im2col(input, h, w, spec);
    // [oh*ow, in_ch*k*k] x [in_ch*k*k, out_ch] -> [oh*ow, out_ch]
    let prod = linalg::matmul_nt(&cols, weight);
    let mut out = vec![0.0f32; spec.out_channels * oh * ow];
    let pd = prod.data();
    for pos in 0..oh * ow {
        for oc in 0..spec.out_channels {
            out[oc * oh * ow + pos] = pd[pos * spec.out_channels + oc] + bias[oc];
        }
    }
    (out, cols)
}

/// Backward 2-D convolution for one image.
///
/// `grad_out` is `[out_ch, oh, ow]` flattened, `cols` is the `im2col`
/// matrix saved by [`conv2d_forward`]. Accumulates into `grad_weight`
/// (`[out_ch, in_ch*k*k]`) and `grad_bias`, and returns the input
/// gradient `[in_ch, h, w]` flattened.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward(
    grad_out: &[f32],
    h: usize,
    w: usize,
    weight: &Tensor,
    cols: &Tensor,
    spec: &Conv2dSpec,
    grad_weight: &mut Tensor,
    grad_bias: &mut [f32],
) -> Vec<f32> {
    let (oh, ow) = spec.output_hw(h, w);
    // Repack grad_out to [oh*ow, out_ch].
    let mut g = vec![0.0f32; oh * ow * spec.out_channels];
    for oc in 0..spec.out_channels {
        for pos in 0..oh * ow {
            g[pos * spec.out_channels + oc] = grad_out[oc * oh * ow + pos];
        }
    }
    let g = Tensor::from_vec(g, &[oh * ow, spec.out_channels][..]);
    // dW = gᵀ · cols  -> [out_ch, in_ch*k*k]
    let dw = linalg::matmul_tn(&g, cols);
    *grad_weight += &dw;
    for (oc, gb) in grad_bias.iter_mut().enumerate().take(spec.out_channels) {
        let mut s = 0.0;
        for pos in 0..oh * ow {
            s += g.data()[pos * spec.out_channels + oc];
        }
        *gb += s;
    }
    // dcols = g · W -> [oh*ow, in_ch*k*k]
    let dcols = linalg::matmul(&g, weight);
    col2im(&dcols, h, w, spec)
}

/// Forward 2×2 (or general square) max pooling for one image.
///
/// Returns the pooled output `[ch, oh, ow]` and the flat argmax indices
/// used by [`maxpool2d_backward`].
pub fn maxpool2d_forward(
    input: &[f32],
    channels: usize,
    h: usize,
    w: usize,
    window: usize,
    stride: usize,
) -> (Vec<f32>, Vec<usize>) {
    assert!(
        window > 0 && stride > 0,
        "pool window/stride must be positive"
    );
    let oh = (h - window) / stride + 1;
    let ow = (w - window) / stride + 1;
    let plane = oh * ow;
    let mut out = vec![0.0f32; channels * plane];
    let mut arg = vec![0usize; channels * plane];
    let _t = K_MAXPOOL.record((channels * plane * window * window) as u64);
    let per_channel = |c: usize, out_c: &mut [f32], arg_c: &mut [usize]| {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for ky in 0..window {
                    for kx in 0..window {
                        let iy = oy * stride + ky;
                        let ix = ox * stride + kx;
                        let idx = c * h * w + iy * w + ix;
                        if input[idx] > best {
                            best = input[idx];
                            best_idx = idx;
                        }
                    }
                }
                let o = oy * ow + ox;
                out_c[o] = best;
                arg_c[o] = best_idx;
            }
        }
    };
    if channels * plane * window * window < MIN_PAR_ELEMS || pool::threads() <= 1 {
        for c in 0..channels {
            per_channel(
                c,
                &mut out[c * plane..(c + 1) * plane],
                &mut arg[c * plane..(c + 1) * plane],
            );
        }
    } else {
        let outp = SendPtr(out.as_mut_ptr());
        let argp = SendPtr(arg.as_mut_ptr());
        pool::for_each_index(channels, |c| {
            // SAFETY: each channel index is claimed exactly once and
            // maps to a disjoint `plane`-long region of `out`, which
            // outlives the dispatch.
            let out_c = unsafe { std::slice::from_raw_parts_mut(outp.get().add(c * plane), plane) };
            // SAFETY: same disjointness argument for `arg`.
            let arg_c = unsafe { std::slice::from_raw_parts_mut(argp.get().add(c * plane), plane) };
            per_channel(c, out_c, arg_c);
        });
    }
    (out, arg)
}

/// Backward max pooling: routes each output gradient to the input
/// element that won the forward max. `channels` must match the forward
/// call — the scatter parallelizes per channel (argmax indices from
/// [`maxpool2d_forward`] always stay within their channel's plane).
///
/// # Panics
///
/// Panics if `channels` is zero or doesn't divide both `input_len` and
/// `grad_out.len()`, or if an argmax index falls outside its channel.
pub fn maxpool2d_backward(
    grad_out: &[f32],
    argmax: &[usize],
    channels: usize,
    input_len: usize,
) -> Vec<f32> {
    assert!(
        channels > 0,
        "maxpool2d_backward needs at least one channel"
    );
    assert_eq!(
        input_len % channels,
        0,
        "input_len not divisible by channels"
    );
    assert_eq!(
        grad_out.len() % channels,
        0,
        "grad_out not divisible by channels"
    );
    assert_eq!(
        grad_out.len(),
        argmax.len(),
        "grad_out/argmax length mismatch"
    );
    let _t = K_MAXPOOL_BWD.record(grad_out.len() as u64);
    let mut grad_in = vec![0.0f32; input_len];
    if input_len == 0 {
        return grad_in;
    }
    let chw = input_len / channels;
    let plane = grad_out.len() / channels;
    let chunk_len = if grad_out.len() < MIN_PAR_ELEMS || pool::threads() <= 1 {
        input_len
    } else {
        chw
    };
    pool::for_each_chunk(&mut grad_in, chunk_len, |ci, chunk| {
        let c0 = ci * chunk_len / chw;
        let nch = chunk.len() / chw;
        for dc in 0..nch {
            let c = c0 + dc;
            let go = &grad_out[c * plane..(c + 1) * plane];
            let am = &argmax[c * plane..(c + 1) * plane];
            for (g, &idx) in go.iter().zip(am) {
                let local = idx
                    .checked_sub(c * chw)
                    .filter(|&l| l < chw)
                    .expect("argmax index escapes its channel");
                chunk[dc * chw + local] += g;
            }
        }
    });
    grad_in
}

/// Global average pooling: collapses `[ch, h, w]` to `[ch]`.
pub fn global_avg_pool(input: &[f32], channels: usize, hw: usize) -> Vec<f32> {
    (0..channels)
        .map(|c| input[c * hw..(c + 1) * hw].iter().sum::<f32>() / hw as f32)
        .collect()
}

/// Backward of [`global_avg_pool`].
pub fn global_avg_pool_backward(grad_out: &[f32], channels: usize, hw: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; channels * hw];
    for c in 0..channels {
        let g = grad_out[c] / hw as f32;
        for x in &mut out[c * hw..(c + 1) * hw] {
            *x = g;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prng;

    fn spec(in_c: usize, out_c: usize, k: usize, stride: usize, pad: usize) -> Conv2dSpec {
        Conv2dSpec {
            in_channels: in_c,
            out_channels: out_c,
            kernel: k,
            stride,
            padding: pad,
        }
    }

    /// Direct (nested-loop) convolution used as the test oracle.
    fn naive_conv(
        input: &[f32],
        h: usize,
        w: usize,
        weight: &Tensor,
        bias: &[f32],
        s: &Conv2dSpec,
    ) -> Vec<f32> {
        let (oh, ow) = s.output_hw(h, w);
        let k = s.kernel;
        let mut out = vec![0.0f32; s.out_channels * oh * ow];
        for oc in 0..s.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[oc];
                    for c in 0..s.in_channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * s.stride + ky) as isize - s.padding as isize;
                                let ix = (ox * s.stride + kx) as isize - s.padding as isize;
                                if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let wv = weight.data()
                                    [oc * s.in_channels * k * k + c * k * k + ky * k + kx];
                                acc += wv * input[c * h * w + iy as usize * w + ix as usize];
                            }
                        }
                    }
                    out[oc * oh * ow + oy * ow + ox] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn output_hw_formula() {
        let s = spec(1, 1, 5, 1, 0);
        assert_eq!(s.output_hw(28, 28), (24, 24));
        let s = spec(1, 1, 3, 2, 1);
        assert_eq!(s.output_hw(8, 8), (4, 4));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn output_hw_too_small_panics() {
        let s = spec(1, 1, 5, 1, 0);
        let _ = s.output_hw(3, 3);
    }

    #[test]
    fn conv_forward_matches_naive() {
        let mut rng = Prng::seed_from_u64(10);
        for &(h, w, s) in &[
            (6usize, 6usize, spec(2, 3, 3, 1, 0)),
            (5, 7, spec(1, 2, 3, 2, 1)),
        ] {
            let input = Tensor::randn(&[s.in_channels * h * w][..], 1.0, &mut rng);
            let weight = Tensor::randn(
                &[s.out_channels, s.in_channels * s.kernel * s.kernel][..],
                0.5,
                &mut rng,
            );
            let bias: Vec<f32> = (0..s.out_channels).map(|_| rng.normal_f32()).collect();
            let (got, _) = conv2d_forward(input.data(), h, w, &weight, &bias, &s);
            let want = naive_conv(input.data(), h, w, &weight, &bias, &s);
            for (g, n) in got.iter().zip(&want) {
                assert!((g - n).abs() < 1e-4, "{g} vs {n}");
            }
        }
    }

    #[test]
    fn conv_backward_matches_finite_differences() {
        let mut rng = Prng::seed_from_u64(20);
        let s = spec(2, 2, 3, 1, 1);
        let (h, w) = (4, 4);
        let input = Tensor::randn(&[s.in_channels * h * w][..], 1.0, &mut rng);
        let weight = Tensor::randn(
            &[s.out_channels, s.in_channels * s.kernel * s.kernel][..],
            0.5,
            &mut rng,
        );
        let bias = vec![0.1f32, -0.2];
        // Loss = sum of outputs; grad_out = ones.
        let loss = |inp: &[f32], wt: &Tensor, b: &[f32]| -> f32 {
            conv2d_forward(inp, h, w, wt, b, &s).0.iter().sum()
        };
        let (out, cols) = conv2d_forward(input.data(), h, w, &weight, &bias, &s);
        let grad_out = vec![1.0f32; out.len()];
        let mut gw = Tensor::zeros(weight.shape().clone());
        let mut gb = vec![0.0f32; 2];
        let gin = conv2d_backward(&grad_out, h, w, &weight, &cols, &s, &mut gw, &mut gb);

        let eps = 1e-2f32;
        // Check a few input coordinates.
        for &i in &[0usize, 7, 15, 31] {
            let mut p = input.data().to_vec();
            p[i] += eps;
            let mut m = input.data().to_vec();
            m[i] -= eps;
            let fd = (loss(&p, &weight, &bias) - loss(&m, &weight, &bias)) / (2.0 * eps);
            assert!(
                (fd - gin[i]).abs() < 1e-2,
                "input grad {i}: fd {fd} vs {}",
                gin[i]
            );
        }
        // Check a few weight coordinates.
        for &i in &[0usize, 5, 17] {
            let mut p = weight.clone();
            p.data_mut()[i] += eps;
            let mut m = weight.clone();
            m.data_mut()[i] -= eps;
            let fd = (loss(input.data(), &p, &bias) - loss(input.data(), &m, &bias)) / (2.0 * eps);
            assert!(
                (fd - gw.data()[i]).abs() < 1e-1,
                "weight grad {i}: fd {fd} vs {}",
                gw.data()[i]
            );
        }
        // Bias gradient is just the count of output positions.
        let (oh, ow) = s.output_hw(h, w);
        assert!((gb[0] - (oh * ow) as f32).abs() < 1e-3);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let mut rng = Prng::seed_from_u64(30);
        let s = spec(2, 1, 3, 2, 1);
        let (h, w) = (5, 5);
        let x = Tensor::randn(&[s.in_channels * h * w][..], 1.0, &mut rng);
        let cols = im2col(x.data(), h, w, &s);
        let y = Tensor::randn(cols.shape().clone(), 1.0, &mut rng);
        let lhs = crate::ops::dot(cols.data(), y.data());
        let back = col2im(&y, h, w, &s);
        let rhs = crate::ops::dot(x.data(), &back);
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn maxpool_forward_and_backward() {
        // 1 channel, 4x4 input, 2x2 window stride 2.
        let input: Vec<f32> = vec![
            1.0, 2.0, 5.0, 6.0, //
            3.0, 4.0, 7.0, 8.0, //
            9.0, 10.0, 13.0, 14.0, //
            11.0, 12.0, 15.0, 16.0,
        ];
        let (out, arg) = maxpool2d_forward(&input, 1, 4, 4, 2, 2);
        assert_eq!(out, vec![4.0, 8.0, 12.0, 16.0]);
        let grad = maxpool2d_backward(&[1.0, 2.0, 3.0, 4.0], &arg, 1, input.len());
        assert_eq!(grad[5], 1.0);
        assert_eq!(grad[7], 2.0);
        assert_eq!(grad[13], 3.0);
        assert_eq!(grad[15], 4.0);
        assert_eq!(grad.iter().sum::<f32>(), 10.0);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let input = vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0];
        let out = global_avg_pool(&input, 2, 4);
        assert_eq!(out, vec![4.0, 2.0]);
        let back = global_avg_pool_backward(&[4.0, 8.0], 2, 4);
        assert_eq!(back, vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }
}
