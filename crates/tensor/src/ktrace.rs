//! Kernel-level instrumentation with cached metric handles.
//!
//! [`taco_trace::span!`] resolves its histogram by name on every
//! completion (a `format!` plus a registry lookup), which is fine for
//! round- or client-scale spans but too heavy for kernels that run
//! thousands of times per round on sub-millisecond inputs. Each kernel
//! here owns a [`Kernel`] static whose `Arc` handles are resolved once
//! and then cost two atomic adds plus an `Instant` read per call.
//!
//! Per kernel `<name>` the following metrics are registered:
//!
//! * `<name>.seconds` — histogram of wall-clock time per call, summing
//!   to total time-in-kernel (surfaces in run manifests via the trace
//!   snapshot embedded by `taco-bench`),
//! * `<name>.calls` — counter of invocations,
//! * `<name>.elems` — counter of work items (multiply-adds for matmul
//!   kernels, elements moved for packing/pooling kernels), so
//!   throughput is `elems / seconds.sum`.
//!
//! Caveat: handles are cached for the process lifetime, so these
//! metrics do not survive `taco_trace::reset_metrics()` (which nothing
//! outside trace-crate tests calls).

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use taco_trace::{Counter, Histogram};

/// Cached metric handles for one kernel. Construct as a `static` with
/// [`Kernel::new`] and wrap each kernel body in [`Kernel::record`].
pub(crate) struct Kernel {
    name: &'static str,
    seconds: OnceLock<Arc<Histogram>>,
    calls: OnceLock<Arc<Counter>>,
    elems: OnceLock<Arc<Counter>>,
}

impl Kernel {
    pub(crate) const fn new(name: &'static str) -> Self {
        Kernel {
            name,
            seconds: OnceLock::new(),
            calls: OnceLock::new(),
            elems: OnceLock::new(),
        }
    }

    /// Starts timing one kernel call performing `elems` work items;
    /// metrics are recorded when the returned guard drops.
    pub(crate) fn record(&'static self, elems: u64) -> KernelTimer {
        KernelTimer {
            kernel: self,
            elems,
            // taco-check: allow(wall-clock, metrics-only kernel timing: readings feed trace histograms and never simulated time)
            start: Instant::now(),
        }
    }

    fn observe(&'static self, seconds: f64, elems: u64) {
        self.seconds
            .get_or_init(|| taco_trace::histogram(&format!("{}.seconds", self.name)))
            .observe(seconds);
        self.calls
            .get_or_init(|| taco_trace::counter(&format!("{}.calls", self.name)))
            .incr();
        self.elems
            .get_or_init(|| taco_trace::counter(&format!("{}.elems", self.name)))
            .add(elems);
    }
}

/// RAII guard from [`Kernel::record`].
pub(crate) struct KernelTimer {
    kernel: &'static Kernel,
    elems: u64,
    start: Instant,
}

impl Drop for KernelTimer {
    fn drop(&mut self) {
        let dt = self.start.elapsed().as_secs_f64();
        self.kernel.observe(dt, self.elems);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_KERNEL: Kernel = Kernel::new("kernel.ktrace_test");

    #[test]
    fn records_calls_seconds_and_elems() {
        let _guard = taco_trace::test_guard();
        {
            let _t = TEST_KERNEL.record(42);
        }
        {
            let _t = TEST_KERNEL.record(8);
        }
        assert_eq!(taco_trace::counter("kernel.ktrace_test.calls").get(), 2);
        assert_eq!(taco_trace::counter("kernel.ktrace_test.elems").get(), 50);
        assert_eq!(
            taco_trace::histogram("kernel.ktrace_test.seconds").count(),
            2
        );
    }
}
