//! Dimension-sharded `f64` accumulation for parameter-server backends.
//!
//! A parameter vector of `dim` elements is split into contiguous
//! **shards** so that independent workers can accumulate client deltas
//! into disjoint dimension ranges concurrently. Three pieces:
//!
//! - [`ShardSpec`]: the partition itself. Ranges are a pure function of
//!   `(dim, shards)` — never of the worker count — and concatenating
//!   them in shard order always reproduces `0..dim` exactly, so a
//!   shard-merged vector is *bit-identical* to its unsharded
//!   counterpart for any shard count.
//! - [`StripedTable`]: one `f64` accumulator per shard behind its own
//!   mutex (lock striping). `acc[j] += weight · value[j]` uses exactly
//!   the widening arithmetic of [`crate::ops::weighted_mean`], and each
//!   dimension's additions happen in caller order, so as long as
//!   updates are applied in a fixed order per shard the merged result
//!   matches the sequential fold bit for bit.
//! - [`DoubleBuffered`]: the active/frozen table pair of the classic
//!   parameter-server double-buffering scheme — writers accumulate into
//!   the *active* table while the server reads the *frozen* one;
//!   [`DoubleBuffered::flip`] swaps the roles and clears the new active
//!   table for the next round.
//!
//! The chunk length is `ceil(dim / shards)`, the same partition rule as
//! [`crate::pool::Pool::for_each_chunk`], so a shard maps one-to-one
//! onto a pool chunk when both use the same counts.

use std::ops::Range;
use std::sync::Mutex;

/// Upper bound on configured shards (defensive clamp, mirroring the
/// pool's `MAX_THREADS`).
const MAX_SHARDS: usize = 4096;

/// A contiguous, order-preserving partition of `0..dim` into shards.
///
/// Shard `s` owns `[s·chunk, min((s+1)·chunk, dim))` with
/// `chunk = ceil(dim / shards)`. Trailing shards may be empty when
/// `shards` exceeds `dim`; [`ShardSpec::num_shards`] counts only the
/// non-empty ones, and iterating `0..num_shards()` visits every
/// parameter index exactly once, in ascending order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    dim: usize,
    chunk: usize,
    shards: usize,
}

impl ShardSpec {
    /// Creates a spec splitting `dim` elements into at most `shards`
    /// contiguous ranges. `shards` is clamped to `[1, 4096]`.
    pub fn new(dim: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, MAX_SHARDS);
        let chunk = dim.div_ceil(shards).max(1);
        let shards = if dim == 0 { 0 } else { dim.div_ceil(chunk) };
        ShardSpec { dim, chunk, shards }
    }

    /// Total number of parameter dimensions covered.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of non-empty shards. Zero only when `dim` is zero.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Elements per shard (the last shard may hold fewer).
    pub fn chunk_len(&self) -> usize {
        self.chunk
    }

    /// The dimension range owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= num_shards()`.
    pub fn range(&self, s: usize) -> Range<usize> {
        assert!(s < self.shards, "shard {s} out of {}", self.shards);
        let start = s * self.chunk;
        start..(start + self.chunk).min(self.dim)
    }

    /// The shard owning parameter index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim()`.
    pub fn shard_of(&self, i: usize) -> usize {
        assert!(i < self.dim, "index {i} out of {}", self.dim);
        i / self.chunk
    }
}

/// Lock-striped `f64` accumulator over a [`ShardSpec`] partition.
///
/// Each shard's accumulator sits behind its own mutex, so concurrent
/// writers touching *different* shards never contend and writers
/// touching the *same* shard serialize. Determinism is the caller's
/// contract: apply updates to each shard in a fixed order (the backends
/// iterate updates in client order within each shard task) and the
/// per-dimension fold is identical to the sequential one.
pub struct StripedTable {
    spec: ShardSpec,
    stripes: Vec<Mutex<Vec<f64>>>,
}

impl std::fmt::Debug for StripedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedTable")
            .field("spec", &self.spec)
            .finish()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl StripedTable {
    /// Creates a zeroed table for the given partition.
    pub fn new(spec: ShardSpec) -> Self {
        let stripes = (0..spec.num_shards())
            .map(|s| Mutex::new(vec![0.0f64; spec.range(s).len()]))
            .collect();
        StripedTable { spec, stripes }
    }

    /// The partition this table accumulates over.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Zeroes every accumulator.
    pub fn clear(&mut self) {
        for stripe in &mut self.stripes {
            for x in lock(stripe).iter_mut() {
                *x = 0.0;
            }
        }
    }

    /// Accumulates `weight · values[j]` into shard `s`'s range, with
    /// the exact widening arithmetic of
    /// [`crate::ops::weighted_mean`]'s inner loop
    /// (`acc += weight as f64 * x as f64`).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != spec.dim()` or `s` is out of range.
    pub fn accumulate_shard(&self, s: usize, weight: f32, values: &[f32]) {
        assert_eq!(values.len(), self.spec.dim(), "value length mismatch");
        let range = self.spec.range(s);
        let mut acc = lock(&self.stripes[s]);
        for (a, &x) in acc.iter_mut().zip(&values[range]) {
            *a += weight as f64 * x as f64;
        }
    }

    /// Accumulates `weight · values` into every shard, inline on the
    /// caller.
    pub fn accumulate(&self, weight: f32, values: &[f32]) {
        for s in 0..self.spec.num_shards() {
            self.accumulate_shard(s, weight, values);
        }
    }

    /// Runs `f` on shard `s`'s dimension range and locked accumulator
    /// slice — the decode-free entry point: codecs fold an encoded
    /// payload straight into the `f64` sums without materializing a
    /// decoded vector. The caller owns the determinism contract: the
    /// per-dimension additions `f` performs must reproduce the
    /// `acc += weight as f64 * x as f64` fold of
    /// [`StripedTable::accumulate_shard`] in ascending index order.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn accumulate_shard_with(&self, s: usize, f: impl FnOnce(Range<usize>, &mut [f64])) {
        let range = self.spec.range(s);
        let mut acc = lock(&self.stripes[s]);
        f(range, &mut acc);
    }

    /// Writes shard `s`'s merged value `(acc[j] / total) as f32` into
    /// the matching range of `out` — the read-out arithmetic of
    /// [`crate::ops::weighted_mean`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != spec.dim()` or `s` is out of range.
    pub fn merge_shard_into(&self, s: usize, total: f64, out: &mut [f32]) {
        assert_eq!(out.len(), self.spec.dim(), "output length mismatch");
        let range = self.spec.range(s);
        let acc = lock(&self.stripes[s]);
        for (o, &a) in out[range].iter_mut().zip(acc.iter()) {
            *o = (a / total) as f32;
        }
    }

    /// Merges every shard in ascending shard order into a fresh vector
    /// (the sequential reference for the pool-parallel read-out).
    pub fn merged(&self, total: f64) -> Vec<f32> {
        let mut out = vec![0.0f32; self.spec.dim()];
        for s in 0..self.spec.num_shards() {
            self.merge_shard_into(s, total, &mut out);
        }
        out
    }

    /// A copy of shard `s`'s raw `f64` accumulator.
    pub fn shard_sums(&self, s: usize) -> Vec<f64> {
        lock(&self.stripes[s]).clone()
    }
}

/// The active/frozen pair of [`StripedTable`]s used by sharded
/// parameter-server backends (the `PSServer` double-buffer idiom):
/// writers accumulate into [`DoubleBuffered::active`] while the server
/// reads [`DoubleBuffered::frozen`]; [`DoubleBuffered::flip`] swaps the
/// roles and clears the new active table.
pub struct DoubleBuffered {
    tables: [StripedTable; 2],
    active: usize,
}

impl std::fmt::Debug for DoubleBuffered {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DoubleBuffered")
            .field("spec", &self.tables[0].spec)
            .field("active", &self.active)
            .finish()
    }
}

impl DoubleBuffered {
    /// Creates a zeroed pair for the given partition.
    pub fn new(spec: ShardSpec) -> Self {
        DoubleBuffered {
            tables: [StripedTable::new(spec), StripedTable::new(spec)],
            active: 0,
        }
    }

    /// The table writers accumulate into.
    pub fn active(&self) -> &StripedTable {
        &self.tables[self.active]
    }

    /// The table the server reads (last flipped-out sums).
    pub fn frozen(&self) -> &StripedTable {
        &self.tables[1 - self.active]
    }

    /// Swaps active/frozen and clears the new active table: the sums
    /// accumulated so far become readable via [`Self::frozen`] while
    /// new accumulation starts from zero.
    pub fn flip(&mut self) {
        self.active = 1 - self.active;
        self.tables[self.active].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::rng::Prng;

    #[test]
    fn every_index_lands_in_exactly_one_shard() {
        for dim in [0usize, 1, 2, 7, 64, 257, 1003] {
            for shards in [1usize, 2, 3, 5, 8, 16, 64, 4096] {
                let spec = ShardSpec::new(dim, shards);
                let mut hits = vec![0u32; dim];
                for s in 0..spec.num_shards() {
                    for i in spec.range(s) {
                        hits[i] += 1;
                        assert_eq!(spec.shard_of(i), s, "dim={dim} shards={shards} i={i}");
                    }
                }
                assert!(
                    hits.iter().all(|&h| h == 1),
                    "dim={dim} shards={shards}: coverage {hits:?}"
                );
            }
        }
    }

    #[test]
    fn ranges_are_ascending_and_cover_ragged_shapes() {
        // Ragged layer shapes: odd dims that do not divide evenly.
        for dim in [1usize, 13, 97, 1003, 4099] {
            for shards in [1usize, 3, 8, 11] {
                let spec = ShardSpec::new(dim, shards);
                let mut next = 0usize;
                for s in 0..spec.num_shards() {
                    let r = spec.range(s);
                    assert_eq!(r.start, next, "gap before shard {s}");
                    assert!(!r.is_empty(), "empty shard {s} for dim={dim}");
                    next = r.end;
                }
                assert_eq!(next, dim, "shards do not cover dim={dim}");
            }
        }
    }

    #[test]
    fn merge_order_is_stable_under_shard_count_changes() {
        // Concatenating shard ranges in shard order must reproduce the
        // identity permutation for *any* shard count — the fixed merge
        // order the backends rely on.
        let dim = 101;
        let reference: Vec<usize> = (0..dim).collect();
        for shards in [1usize, 2, 3, 8, 50, 101, 4096] {
            let spec = ShardSpec::new(dim, shards);
            let merged: Vec<usize> = (0..spec.num_shards()).flat_map(|s| spec.range(s)).collect();
            assert_eq!(merged, reference, "shards={shards}");
        }
    }

    #[test]
    fn more_shards_than_dims_never_yields_empty_ranges() {
        let spec = ShardSpec::new(3, 4096);
        assert_eq!(spec.num_shards(), 3);
        assert_eq!(spec.chunk_len(), 1);
        let spec = ShardSpec::new(0, 8);
        assert_eq!(spec.num_shards(), 0);
        assert_eq!(spec.dim(), 0);
    }

    #[test]
    fn striped_accumulation_matches_weighted_mean_bitwise() {
        let mut rng = Prng::seed_from_u64(7);
        let dim = 103;
        let vectors: Vec<Vec<f32>> = (0..5)
            .map(|_| (0..dim).map(|_| rng.normal_f32() * 0.3).collect())
            .collect();
        let weights = [0.3f32, 1.7, 0.01, 2.5, 0.9];
        let refs: Vec<&[f32]> = vectors.iter().map(Vec::as_slice).collect();
        let reference = ops::weighted_mean(&refs, &weights);
        let wf: Vec<f64> = weights.iter().map(|&w| w as f64).collect();
        let total = ops::sum_f64(&wf);
        for shards in [1usize, 3, 8, 64] {
            let table = StripedTable::new(ShardSpec::new(dim, shards));
            // Per shard, updates are applied in client order — the
            // determinism contract.
            for (v, &w) in vectors.iter().zip(&weights) {
                table.accumulate(w, v);
            }
            let merged = table.merged(total);
            assert_eq!(merged.len(), reference.len());
            for (i, (a, b)) in merged.iter().zip(&reference).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "shards={shards} dim {i}");
            }
        }
    }

    #[test]
    fn clear_zeroes_and_shard_sums_expose_raw_accumulators() {
        let mut table = StripedTable::new(ShardSpec::new(4, 2));
        table.accumulate(2.0, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(table.shard_sums(0), vec![2.0, 4.0]);
        assert_eq!(table.shard_sums(1), vec![6.0, 8.0]);
        table.clear();
        assert_eq!(table.shard_sums(0), vec![0.0, 0.0]);
        assert_eq!(table.shard_sums(1), vec![0.0, 0.0]);
    }

    #[test]
    fn double_buffer_flip_freezes_sums_and_clears_active() {
        let mut pair = DoubleBuffered::new(ShardSpec::new(2, 1));
        pair.active().accumulate(1.0, &[1.0, 2.0]);
        pair.flip();
        // The accumulated sums are now readable on the frozen side...
        assert_eq!(pair.frozen().shard_sums(0), vec![1.0, 2.0]);
        // ...while the active side starts clean for the next round.
        assert_eq!(pair.active().shard_sums(0), vec![0.0, 0.0]);
        pair.active().accumulate(1.0, &[10.0, 10.0]);
        pair.flip();
        assert_eq!(pair.frozen().shard_sums(0), vec![10.0, 10.0]);
        assert_eq!(pair.active().shard_sums(0), vec![0.0, 0.0]);
    }

    #[test]
    fn concurrent_stripe_writers_do_not_lose_updates() {
        // Parallelize over shards via the pool: each shard task applies
        // every update in client order; the merged result must match
        // the sequential fold bitwise whatever the thread count.
        let mut rng = Prng::seed_from_u64(11);
        let dim = 517;
        let vectors: Vec<Vec<f32>> = (0..6)
            .map(|_| (0..dim).map(|_| rng.normal_f32()).collect())
            .collect();
        let refs: Vec<&[f32]> = vectors.iter().map(Vec::as_slice).collect();
        let reference = ops::mean_of(&refs);
        let pool = crate::pool::Pool::new(4);
        let table = StripedTable::new(ShardSpec::new(dim, 8));
        pool.for_each_index(table.spec().num_shards(), |s| {
            for v in &vectors {
                table.accumulate_shard(s, 1.0, v);
            }
        });
        let merged = table.merged(vectors.len() as f64);
        for (i, (a, b)) in merged.iter().zip(&reference).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "dim {i}");
        }
    }

    #[test]
    #[should_panic(expected = "value length mismatch")]
    fn length_mismatch_panics() {
        let table = StripedTable::new(ShardSpec::new(4, 2));
        table.accumulate(1.0, &[1.0, 2.0]);
    }
}
