//! Deterministic pseudo-random number generation and samplers.
//!
//! Federated-learning experiments must be exactly reproducible across
//! runs and across thread schedules, so every stochastic component in
//! the workspace draws from a [`Prng`] seeded from an explicit `u64`.
//! The generator is xoshiro256++ (public domain algorithm by Blackman
//! and Vigna) seeded through SplitMix64.
//!
//! The sampler set covers what the paper needs: uniform and normal
//! variates for initialization and synthetic data, gamma variates
//! (Marsaglia–Tsang) to build the Dirichlet label-skew partitioner, and
//! categorical sampling for mini-batch and Markov-chain text generation.

/// Deterministic xoshiro256++ pseudo-random number generator.
///
/// # Example
///
/// ```
/// use taco_tensor::Prng;
///
/// let mut rng = Prng::seed_from_u64(42);
/// let x = rng.uniform_f32();
/// assert!((0.0..1.0).contains(&x));
///
/// // Same seed, same stream.
/// let mut rng2 = Prng::seed_from_u64(42);
/// assert_eq!(x, rng2.uniform_f32());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The four words of xoshiro state are expanded from the seed with
    /// SplitMix64, which guarantees a well-mixed state even for small
    /// consecutive seeds (0, 1, 2, ...).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        Prng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent child generator.
    ///
    /// Used to hand every simulated client its own stream so that the
    /// order in which clients execute (or the number of worker threads)
    /// cannot change the results.
    pub fn split(&mut self, tag: u64) -> Prng {
        let a = self.next_u64();
        Prng::seed_from_u64(a ^ tag.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform variate in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` variate in `[0, 1)`.
    pub fn uniform_f32(&mut self) -> f32 {
        self.uniform_f64() as f32
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method; unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is undefined");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as usize;
            }
            // Rejection zone for exact uniformity.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Returns a standard normal variate (Box–Muller, f64 precision).
    pub fn normal_f64(&mut self) -> f64 {
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Returns a standard normal `f32` variate.
    pub fn normal_f32(&mut self) -> f32 {
        self.normal_f64() as f32
    }

    /// Returns a gamma variate with shape `alpha > 0` and unit scale.
    ///
    /// Implements Marsaglia–Tsang squeeze for `alpha >= 1` and the
    /// standard boosting transform for `alpha < 1`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not finite and positive.
    pub fn gamma(&mut self, alpha: f64) -> f64 {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "gamma shape must be finite and positive, got {alpha}"
        );
        if alpha < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
            let u: f64 = self.uniform_f64().max(f64::MIN_POSITIVE);
            return self.gamma(alpha + 1.0) * u.powf(1.0 / alpha);
        }
        let d = alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal_f64();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u = self.uniform_f64();
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }

    /// Returns a sample from `Dirichlet(alpha · 1_k)`.
    ///
    /// This is the symmetric Dirichlet used by the paper's `Dir(φ)`
    /// label-skew partitioner. The output sums to 1 (up to floating
    /// point) and has `k` components.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `alpha <= 0`.
    pub fn dirichlet(&mut self, alpha: f64, k: usize) -> Vec<f64> {
        assert!(k > 0, "dirichlet needs at least one component");
        let mut draws: Vec<f64> = (0..k).map(|_| self.gamma(alpha)).collect();
        let sum: f64 = draws.iter().sum();
        if sum <= 0.0 || !sum.is_finite() {
            // Numerically degenerate draw (can happen for tiny alpha):
            // fall back to a one-hot split, which is the alpha → 0 limit.
            let hot = self.below(k);
            return (0..k).map(|i| if i == hot { 1.0 } else { 0.0 }).collect();
        }
        for d in &mut draws {
            *d /= sum;
        }
        draws
    }

    /// Samples an index from an unnormalized weight vector.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn categorical(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "categorical needs weights");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "categorical weights must sum to a positive finite value"
        );
        let mut u = self.uniform_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            u -= w;
            if u < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `n` distinct indices from `0..pool` (floyd-style when
    /// dense, shuffle otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `n > pool`.
    pub fn sample_indices(&mut self, pool: usize, n: usize) -> Vec<usize> {
        assert!(n <= pool, "cannot sample {n} from pool of {pool}");
        let mut all: Vec<usize> = (0..pool).collect();
        self.shuffle(&mut all);
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Prng::seed_from_u64(123);
        let mut b = Prng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let mut parent = Prng::seed_from_u64(9);
        let mut c1 = parent.split(0);
        let mut c2 = parent.split(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = Prng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Prng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.uniform_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Prng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Prng::seed_from_u64(21);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal_f64()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = Prng::seed_from_u64(31);
        for &alpha in &[0.3, 1.0, 2.5, 10.0] {
            let n = 30_000;
            let mean: f64 = (0..n).map(|_| rng.gamma(alpha)).sum::<f64>() / n as f64;
            assert!(
                (mean - alpha).abs() < 0.1 * alpha.max(1.0),
                "alpha {alpha} mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = Prng::seed_from_u64(41);
        for &alpha in &[0.1, 0.5, 5.0] {
            let p = rng.dirichlet(alpha, 10);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn small_alpha_dirichlet_is_peaky() {
        let mut rng = Prng::seed_from_u64(43);
        // Dir(0.05) draws should concentrate mass on few classes.
        let mut max_sum = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let p = rng.dirichlet(0.05, 10);
            max_sum += p.iter().cloned().fold(0.0, f64::max);
        }
        assert!(
            max_sum / trials as f64 > 0.7,
            "avg max {}",
            max_sum / trials as f64
        );
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = Prng::seed_from_u64(51);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.categorical(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::seed_from_u64(61);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Prng::seed_from_u64(71);
        let s = rng.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 30);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Prng::seed_from_u64(0).below(0);
    }
}
