//! Summary statistics for metric reporting.
//!
//! The benchmark harness reports the paper's tables as `mean ± std`
//! over repeated seeds, and Fig. 5 reports per-round medians; these
//! helpers implement exactly those reductions.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; `0.0` for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (average of middle two for even length); `0.0` when empty.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median of NaN"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// `q`-quantile in `[0, 1]` by linear interpolation; `0.0` when empty.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("quantile of NaN"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let t = pos - lo as f64;
        v[lo] * (1.0 - t) + v[hi] * t
    }
}

/// A `mean ± std` pair, formatted the way the paper's tables print it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
}

impl MeanStd {
    /// Computes mean and standard deviation of a sample.
    pub fn of(xs: &[f64]) -> Self {
        MeanStd {
            mean: mean(xs),
            std: std_dev(xs),
        }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}±{:.2}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 10.0);
        assert_eq!(quantile(&xs, 0.25), 2.5);
    }

    #[test]
    fn mean_std_display() {
        let ms = MeanStd::of(&[78.0, 79.0, 80.0]);
        assert_eq!(format!("{ms}"), "79.00±0.82");
    }
}
