//! Flat-vector numeric helpers.
//!
//! The federated-learning algorithms in `taco-core` treat model state
//! as flat `&[f32]` slices (parameter vectors, accumulated gradients
//! `Δ_i^t`, control variates, momenta). These free functions implement
//! the vector arithmetic those algorithms need — most importantly
//! [`cosine_similarity`], which is the direction term of TACO's
//! correction coefficient `α_i^t` (Eq. 7 of the paper).

/// Dot product of two equal-length slices.
///
/// Accumulates in `f64` for stability on long model vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
///
/// # Example
///
/// ```
/// assert_eq!(taco_tensor::ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as f64 * y as f64;
    }
    acc as f32
}

/// Euclidean (L2) norm of a slice.
pub fn norm(a: &[f32]) -> f32 {
    let mut acc = 0.0f64;
    for &x in a {
        acc += x as f64 * x as f64;
    }
    (acc.sqrt()) as f32
}

/// Squared Euclidean norm of a slice.
pub fn norm_sq(a: &[f32]) -> f32 {
    let mut acc = 0.0f64;
    for &x in a {
        acc += x as f64 * x as f64;
    }
    acc as f32
}

/// Cosine similarity between two slices.
///
/// Returns `0.0` when either vector has (near-)zero norm; this matches
/// how the paper's `α_i^t` treats a degenerate first round where
/// `Δ̄_t = 0`, and makes the value safe to feed into `max{·, 0}`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a) as f64;
    let nb = norm(b) as f64;
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    let cos = dot(a, b) as f64 / (na * nb);
    cos.clamp(-1.0, 1.0) as f32
}

/// [`cosine_similarity`] with both norms supplied by the caller.
///
/// Bit-identical to `cosine_similarity(a, b)` whenever
/// `na == norm(a)` and `nb == norm(b)`: the degenerate-norm guard,
/// the widening `f64` division, and the clamp are the same arithmetic
/// in the same order — only the redundant norm recomputations are
/// hoisted. Lets aggregation paths that already hold per-vector norms
/// (e.g. upload statistics) skip two extra passes per pair.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn cosine_with_norms(a: &[f32], b: &[f32], na: f32, nb: f32) -> f32 {
    let na = na as f64;
    let nb = nb as f64;
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    let cos = dot(a, b) as f64 / (na * nb);
    cos.clamp(-1.0, 1.0) as f32
}

/// `y += alpha * x` (AXPY).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = alpha * y` in place.
pub fn scale(y: &mut [f32], alpha: f32) {
    for yi in y.iter_mut() {
        *yi *= alpha;
    }
}

/// Element-wise `a - b` into a fresh vector.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Element-wise `a + b` into a fresh vector.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// `a * alpha` into a fresh vector.
pub fn scaled(a: &[f32], alpha: f32) -> Vec<f32> {
    a.iter().map(|&x| x * alpha).collect()
}

/// Weighted mean of several equal-length vectors.
///
/// `out[j] = Σ_i weights[i] · vectors[i][j] / Σ_i weights[i]`.
///
/// # Panics
///
/// Panics if `vectors` is empty, lengths are inconsistent, the weight
/// count differs from the vector count, or the weights sum to a
/// non-positive value.
pub fn weighted_mean(vectors: &[&[f32]], weights: &[f32]) -> Vec<f32> {
    assert!(!vectors.is_empty(), "weighted_mean of no vectors");
    assert_eq!(vectors.len(), weights.len(), "weight count mismatch");
    let total: f64 = weights.iter().map(|&w| w as f64).sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "weights must sum to a positive finite value, got {total}"
    );
    let dim = vectors[0].len();
    let mut out = vec![0.0f64; dim];
    for (v, &w) in vectors.iter().zip(weights) {
        assert_eq!(v.len(), dim, "vector length mismatch in weighted_mean");
        for (o, &x) in out.iter_mut().zip(v.iter()) {
            *o += w as f64 * x as f64;
        }
    }
    out.into_iter().map(|x| (x / total) as f32).collect()
}

/// Unweighted mean of several equal-length vectors.
///
/// # Panics
///
/// Panics if `vectors` is empty or lengths are inconsistent.
pub fn mean_of(vectors: &[&[f32]]) -> Vec<f32> {
    let w = vec![1.0f32; vectors.len()];
    weighted_mean(vectors, &w)
}

/// Linear interpolation `(1 - t) * a + t * b` into a fresh vector.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn lerp(a: &[f32], b: &[f32], t: f32) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "lerp length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (1.0 - t) * x + t * y)
        .collect()
}

/// Returns `true` if every element is finite.
pub fn all_finite(a: &[f32]) -> bool {
    a.iter().all(|x| x.is_finite())
}

// --- Order-fixed reductions -------------------------------------------
//
// The aggregation paths in `taco-core` must reduce in a fixed
// left-to-right order so trajectories stay bit-identical across runs
// and thread counts. Ad-hoc `.sum()`/`.fold()` chains in core are
// rejected by the `taco-check` D6 lint; these helpers are the blessed
// reduction points. They are plain sequential folds — bit-identical to
// `iter().sum()` today — and the contract is that they will *never* be
// parallelized or reassociated (no pairwise/Kahan rewrites) without a
// golden-trajectory regeneration.

/// Left-to-right sum of an `f32` slice. The reduction order is part of
/// the contract: element `0` first, element `len-1` last.
pub fn sum(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &x in xs {
        acc += x;
    }
    acc
}

/// Left-to-right sum of an `f64` slice. See [`sum`] for the ordering
/// contract.
pub fn sum_f64(xs: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for &x in xs {
        acc += x;
    }
    acc
}

/// Left-to-right dot product of two equal-length `f64` slices
/// (`Σ aᵢ·bᵢ`, accumulated in index order).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot_f64 length mismatch");
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Minimum and maximum of a slice in one left-to-right pass, with
/// `fold(INFINITY, min)` semantics: an empty slice yields
/// `(INFINITY, NEG_INFINITY)` and `NaN` elements are skipped (both
/// `f32::min` and `f32::max` prefer the non-`NaN` operand).
pub fn min_max(xs: &[f32]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm_pythagoras() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn cosine_parallel_and_orthogonal() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_with_norms_is_bit_identical_to_cosine_similarity() {
        let mut rng = crate::rng::Prng::seed_from_u64(3);
        let a: Vec<f32> = (0..257).map(|_| rng.normal_f32()).collect();
        let b: Vec<f32> = (0..257).map(|_| rng.normal_f32()).collect();
        let reference = cosine_similarity(&a, &b);
        let hoisted = cosine_with_norms(&a, &b, norm(&a), norm(&b));
        assert_eq!(reference.to_bits(), hoisted.to_bits());
        // Degenerate-norm guard matches too.
        let z = vec![0.0f32; 257];
        assert_eq!(cosine_with_norms(&z, &b, norm(&z), norm(&b)), 0.0);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_is_clamped() {
        // Large near-parallel vectors can produce cos slightly > 1.0 in
        // f32; the clamp keeps downstream max{cos, 0} well-defined.
        let a = vec![1e20f32; 4];
        let c = cosine_similarity(&a, &a);
        assert!(c <= 1.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(&mut y, 2.0, &[1.0, 2.0]);
        assert_eq!(y, vec![3.0, 5.0]);
        scale(&mut y, 0.5);
        assert_eq!(y, vec![1.5, 2.5]);
    }

    #[test]
    fn weighted_mean_is_convex_combination() {
        let a = [0.0, 0.0];
        let b = [1.0, 2.0];
        let m = weighted_mean(&[&a, &b], &[1.0, 3.0]);
        assert_eq!(m, vec![0.75, 1.5]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn weighted_mean_zero_weights_panics() {
        let a = [1.0];
        let _ = weighted_mean(&[&a], &[0.0]);
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0, 3.0];
        let b = [3.0, 5.0];
        assert_eq!(mean_of(&[&a, &b]), vec![2.0, 4.0]);
    }

    #[test]
    fn lerp_endpoints() {
        let a = [0.0, 10.0];
        let b = [10.0, 0.0];
        assert_eq!(lerp(&a, &b, 0.0), a.to_vec());
        assert_eq!(lerp(&a, &b, 1.0), b.to_vec());
        assert_eq!(lerp(&a, &b, 0.5), vec![5.0, 5.0]);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, -2.0]));
        assert!(!all_finite(&[f32::NAN]));
        assert!(!all_finite(&[f32::INFINITY]));
    }

    #[test]
    fn ordered_sums_match_iterator_sums_bitwise() {
        // The helpers replace `.iter().sum()` call sites in core; they
        // must be bit-identical or golden trajectories would drift.
        let xs: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin() / 3.0).collect();
        assert_eq!(sum(&xs).to_bits(), xs.iter().sum::<f32>().to_bits());
        let ys: Vec<f64> = xs.iter().map(|&x| x as f64 * 1.1).collect();
        assert_eq!(sum_f64(&ys).to_bits(), ys.iter().sum::<f64>().to_bits());
        let ws: Vec<f64> = (0..100).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let manual: f64 = ws.iter().zip(&ys).map(|(a, b)| a * b).sum();
        assert_eq!(dot_f64(&ws, &ys).to_bits(), manual.to_bits());
    }

    #[test]
    fn min_max_matches_fold_semantics() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), (-1.0, 3.0));
        assert_eq!(min_max(&[]), (f32::INFINITY, f32::NEG_INFINITY));
        // NaN is skipped, like fold(∞, f32::min).
        let (lo, hi) = min_max(&[1.0, f32::NAN, 5.0]);
        assert_eq!((lo, hi), (1.0, 5.0));
    }
}
