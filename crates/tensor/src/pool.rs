//! A persistent, std-only worker pool for data-parallel kernels.
//!
//! Every heavy kernel in this crate ([`crate::linalg`], [`crate::conv`])
//! splits its output into **fixed-size chunks** and executes the chunks
//! on this pool. Two properties make the parallelism safe to use inside
//! a deterministic simulation:
//!
//! 1. **Size-independent partitioning.** Chunk boundaries are a
//!    function of the problem shape only — never of the worker count —
//!    and each chunk is computed by exactly the same code as the
//!    sequential path. Results are therefore *bit-identical* for any
//!    `TACO_THREADS` setting, including 1.
//! 2. **No oversubscription.** Worker threads mark themselves with a
//!    thread-local flag; any kernel invoked *from* a worker (e.g. a
//!    matmul inside a per-client training step that is itself running
//!    on the pool) executes inline instead of re-dispatching. The
//!    simulation's client loop and the tensor kernels share one pool.
//!
//! # Sizing
//!
//! The global pool holds `TACO_THREADS` compute threads (the caller
//! participates, so `TACO_THREADS = N` spawns `N − 1` workers).
//! When the variable is unset or invalid the pool falls back to
//! [`std::thread::available_parallelism`]. `TACO_THREADS=1` disables
//! the pool entirely — every kernel runs inline on the caller.
//!
//! # Scheduling
//!
//! Work is claimed from a shared atomic index, so *which* thread runs a
//! chunk is scheduling-dependent — but chunks write disjoint output
//! ranges selected by chunk index, so the result is not. The caller
//! always participates in the claim loop; helper jobs that have not
//! started by the time the caller drains the index are cancelled. A
//! dispatch therefore never waits on unrelated work that happens to sit
//! in the queue (important when client jobs and kernels share the
//! pool), and a dispatch from a saturated pool degrades to an inline
//! loop rather than deadlocking.

use std::cell::Cell;
use std::collections::VecDeque;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on configured threads (defensive clamp for typos like
/// `TACO_THREADS=1000000`).
const MAX_THREADS: usize = 512;

type Job = Box<dyn FnOnce() + Send>;

struct Queued {
    batch: u64,
    job: Job,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Queued>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    available: Condvar,
}

thread_local! {
    /// True on pool worker threads: kernels called from a worker run
    /// inline instead of re-dispatching (no nested parallelism).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread pool override installed by [`with_pool`].
    static OVERRIDE: Cell<Option<NonNull<Pool>>> = const { Cell::new(None) };
}

/// Returns `true` when called from one of the pool's worker threads.
pub fn on_worker_thread() -> bool {
    IN_WORKER.with(Cell::get)
}

/// A pool of persistent worker threads executing chunked kernels.
///
/// Most code should use the free functions ([`for_each_chunk`],
/// [`threads`]) which route to the process-global pool (or a
/// [`with_pool`] override); constructing `Pool`s directly is meant for
/// tests and benchmarks that compare worker counts in one process.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    next_batch: AtomicU64,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Pool {
    /// Creates a pool with `threads` total compute threads (the caller
    /// counts as one, so `threads − 1` workers are spawned). `0` is
    /// treated as `1`.
    pub fn new(threads: usize) -> Self {
        let threads = threads.clamp(1, MAX_THREADS);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState::default()),
            available: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("taco-pool-{i}"))
                    .spawn(move || worker_main(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            threads,
            next_batch: AtomicU64::new(0),
        }
    }

    /// Total compute threads (workers + the participating caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), …, f(tasks − 1)`, distributing indices across
    /// the pool. Blocks until every index has been executed. Falls back
    /// to an inline loop when the pool has one thread, there is one
    /// task, or the caller is itself a pool worker.
    ///
    /// Indices are claimed from a shared counter: execution *order* and
    /// *placement* are scheduling-dependent, so `f` must only perform
    /// work whose result is independent of both (disjoint writes keyed
    /// by index).
    pub fn for_each_index<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        if tasks == 0 {
            return;
        }
        if self.threads <= 1 || tasks == 1 || on_worker_thread() {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        let ctx = DispatchCtx {
            next: AtomicUsize::new(0),
            tasks,
            run: &f,
            completed_helpers: Mutex::new(0),
            helper_done: Condvar::new(),
        };
        // Helpers beyond `tasks − 1` could never claim anything.
        let helpers = (self.threads - 1).min(tasks - 1);
        let batch = self.next_batch.fetch_add(1, Ordering::Relaxed);
        // SAFETY (lifetime erasure): the raw context pointer handed to
        // helper jobs is only dereferenced by jobs of this batch, and
        // this function does not return until every such job has either
        // been cancelled (removed from the queue before starting) or
        // has signalled completion — `ctx` outlives all uses.
        let raw = RawCtx(&ctx as *const DispatchCtx<'_, F> as usize);
        {
            let mut st = lock(&self.shared.state);
            for _ in 0..helpers {
                let raw = RawCtx(raw.0);
                st.jobs.push_back(Queued {
                    batch,
                    // SAFETY: per the lifetime-erasure argument above,
                    // `ctx` outlives every job queued for this batch.
                    job: Box::new(move || unsafe { helper_entry::<F>(raw) }),
                });
            }
        }
        self.shared.available.notify_all();
        // The caller claims chunks too: dispatch makes progress even if
        // every worker is busy with unrelated jobs.
        ctx.claim_loop();
        // Cancel helpers that never started; wait for the ones that did.
        let removed = {
            let mut st = lock(&self.shared.state);
            let before = st.jobs.len();
            st.jobs.retain(|q| q.batch != batch);
            before - st.jobs.len()
        };
        let live = helpers - removed;
        let mut done = lock(&ctx.completed_helpers);
        while *done < live {
            done = ctx
                .helper_done
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements
    /// (the last may be shorter) and runs `f(chunk_index, chunk)` for
    /// each on the pool. The chunk partition depends only on
    /// `data.len()` and `chunk_len`, never on the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let len = data.len();
        let chunks = len.div_ceil(chunk_len);
        let base = SendPtr(data.as_mut_ptr());
        self.for_each_index(chunks, move |i| {
            let start = i * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: each index is claimed exactly once and maps to a
            // disjoint sub-range of `data`, which outlives the dispatch.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            f(i, chunk);
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct DispatchCtx<'a, F> {
    next: AtomicUsize,
    tasks: usize,
    run: &'a F,
    completed_helpers: Mutex<usize>,
    helper_done: Condvar,
}

impl<F: Fn(usize) + Sync> DispatchCtx<'_, F> {
    fn claim_loop(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.tasks {
                return;
            }
            (self.run)(i);
        }
    }
}

/// Type-erased pointer to a [`DispatchCtx`] living on a dispatching
/// caller's stack. See the safety comment in [`Pool::for_each_index`].
#[derive(Clone, Copy)]
struct RawCtx(usize);

/// # Safety
///
/// `raw` must point at a live `DispatchCtx<F>` with the same `F` —
/// guaranteed by [`Pool::for_each_index`], which queues helpers only
/// for its own batch and does not return until each has been cancelled
/// or has signalled completion.
unsafe fn helper_entry<F: Fn(usize) + Sync>(raw: RawCtx) {
    // SAFETY: per the function contract, `raw` points at a live
    // `DispatchCtx<F>` for the whole call.
    let ctx = unsafe { &*(raw.0 as *const DispatchCtx<'_, F>) };
    ctx.claim_loop();
    let mut done = lock(&ctx.completed_helpers);
    *done += 1;
    drop(done);
    ctx.helper_done.notify_all();
}

/// Raw pointer wrapper asserting cross-thread use is sound because all
/// accesses derived from it are disjoint (see call sites).
pub(crate) struct SendPtr<T>(pub(crate) *mut T);

impl<T> SendPtr<T> {
    /// Accessor taking `self` so closures capture the whole wrapper
    /// (2021 disjoint capture would otherwise grab the bare `*mut T`,
    /// which is not `Sync`).
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: asserted at each construction site — every thread touches a
// disjoint index range behind the pointer.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

fn worker_main(shared: &Shared) {
    IN_WORKER.with(|w| w.set(true));
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(q) = st.jobs.pop_front() {
                    break q.job;
                }
                if st.shutdown {
                    return;
                }
                st = shared
                    .available
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        job();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Configured thread count: `TACO_THREADS` if set to a positive
/// integer, else [`std::thread::available_parallelism`], else 1. The
/// variable is read through the [`taco_trace::env`] registry (which
/// also owns the invalid-value warning).
pub fn threads_from_env() -> usize {
    if let Some(n) = taco_trace::env::threads() {
        return n.min(MAX_THREADS);
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// The process-global pool, created on first use from
/// [`threads_from_env`].
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(threads_from_env()))
}

/// Runs `f` with `pool` installed as the current thread's dispatch
/// target: every kernel called (transitively) on this thread inside `f`
/// uses `pool` instead of the global one. Used by tests and benchmarks
/// to compare worker counts within one process.
pub fn with_pool<R>(pool: &Pool, f: impl FnOnce() -> R) -> R {
    struct Reset(Option<NonNull<Pool>>);
    impl Drop for Reset {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.replace(Some(NonNull::from(pool))));
    let _reset = Reset(prev);
    f()
}

fn dispatch<R>(f: impl FnOnce(&Pool) -> R) -> R {
    match OVERRIDE.with(Cell::get) {
        // SAFETY: the pointer was installed by a `with_pool` frame on
        // this same thread which is still on the stack (it resets the
        // cell on exit), so the referenced pool is alive.
        Some(p) => f(unsafe { p.as_ref() }),
        None => f(global()),
    }
}

/// Compute threads of the current dispatch target (override or global).
pub fn threads() -> usize {
    dispatch(Pool::threads)
}

/// Dispatch width of the current target clamped by the host's
/// available hardware parallelism. An oversubscribed pool (more
/// workers than cores) still computes bit-identical results, but its
/// tasks merely time-slice; callers deciding whether a parallel
/// dispatch is *worthwhile* should consult this instead of
/// [`threads`].
pub fn effective_parallelism() -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    threads().min(hw)
}

/// [`Pool::for_each_chunk`] on the current dispatch target.
pub fn for_each_chunk<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    dispatch(|p| p.for_each_chunk(data, chunk_len, f));
}

/// [`Pool::for_each_index`] on the current dispatch target.
pub fn for_each_index<F: Fn(usize) + Sync>(tasks: usize, f: F) {
    dispatch(|p| p.for_each_index(tasks, f));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn inline_when_single_threaded() {
        let pool = Pool::new(1);
        let hits = AtomicU32::new(0);
        pool.for_each_index(5, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn chunks_cover_data_exactly_once() {
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let mut data = vec![0u32; 1003];
            pool.for_each_chunk(&mut data, 64, |i, chunk| {
                for (off, x) in chunk.iter_mut().enumerate() {
                    *x += (i * 64 + off) as u32 + 1;
                }
            });
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x, i as u32 + 1, "threads={threads}");
            }
        }
    }

    #[test]
    fn chunk_partition_is_thread_count_independent() {
        let record = |threads: usize| {
            let pool = Pool::new(threads);
            let mut data = vec![0usize; 257];
            pool.for_each_chunk(&mut data, 32, |i, chunk| {
                let len = chunk.len();
                for x in chunk.iter_mut() {
                    *x = i + 100 * len;
                }
            });
            data
        };
        assert_eq!(record(1), record(4));
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let pool = Pool::new(4);
        let hits = AtomicU32::new(0);
        pool.for_each_index(8, |_| {
            // Nested dispatch from (possibly) a worker thread.
            pool.for_each_index(8, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn with_pool_overrides_and_restores() {
        let small = Pool::new(1);
        let big = Pool::new(3);
        let outer = threads();
        with_pool(&big, || {
            assert_eq!(threads(), 3);
            with_pool(&small, || assert_eq!(threads(), 1));
            assert_eq!(threads(), 3);
        });
        assert_eq!(threads(), outer);
    }

    #[test]
    fn pool_drops_cleanly_with_queued_work_done() {
        let pool = Pool::new(3);
        let mut data = vec![0u8; 100];
        pool.for_each_chunk(&mut data, 10, |_, c| c.fill(1));
        drop(pool);
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn env_parse_clamps_and_defaults() {
        // Can't mutate the process environment safely in tests; only
        // check the fallback is sane.
        assert!(threads_from_env() >= 1);
    }
}
