//! Tensor shapes: dimension lists with row-major stride arithmetic.

use std::fmt;

/// The shape (dimension list) of a [`Tensor`](crate::Tensor).
///
/// Shapes are row-major: the last dimension is contiguous in memory.
/// A shape with zero dimensions describes a scalar with one element.
///
/// # Example
///
/// ```
/// use taco_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.ndim(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero: empty axes are never meaningful
    /// for the models in this workspace and would silently produce
    /// zero-length tensors.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be positive, got {dims:?}"
        );
        Shape(dims.to_vec())
    }

    /// Returns the dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Returns the number of dimensions.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` if the shape describes a scalar (zero dimensions).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns the size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Returns row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Computes the flat row-major offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds (debug builds check each coordinate).
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.0.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for (i, (&ix, &dim)) in index.iter().zip(&self.0).enumerate().rev() {
            debug_assert!(
                ix < dim,
                "index {ix} out of bounds for axis {i} (dim {dim})"
            );
            off += ix * stride;
            stride *= dim;
        }
        off
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

impl<const N: usize> From<&[usize; N]> for Shape {
    fn from(dims: &[usize; N]) -> Self {
        Shape::new(dims)
    }
}

impl From<&Shape> for Shape {
    fn from(shape: &Shape) -> Self {
        shape.clone()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.ndim(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.strides(), vec![6, 2, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 0, 0]), 6);
        assert_eq!(s.offset(&[3, 2, 1]), 23);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_rejected() {
        let _ = Shape::new(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn offset_wrong_rank_panics() {
        let s = Shape::new(&[2, 2]);
        let _ = s.offset(&[1]);
    }

    #[test]
    fn conversion_from_array() {
        let s: Shape = [2, 3].into();
        assert_eq!(s.dims(), &[2, 3]);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Shape::new(&[2, 3])), "[2, 3]");
        assert_eq!(format!("{:?}", Shape::new(&[])), "Shape[]");
    }
}
