//! Matrix multiplication kernels.
//!
//! Three variants cover everything a dense/convolutional layer's
//! forward and backward passes need without materializing transposes:
//!
//! - [`matmul`]       — `C = A · B`
//! - [`matmul_tn`]    — `C = Aᵀ · B` (weight gradients)
//! - [`matmul_nt`]    — `C = A · Bᵀ` (input gradients)
//!
//! The kernels use a k-outer loop with row-major AXPY inner loops,
//! which vectorizes well and keeps memory access contiguous for the
//! mini-batch shapes used in this workspace (batch ≤ 64, features ≤
//! a few thousand).

use crate::Tensor;

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().ndim(), 2, "{what} must be 2-D, got {}", t.shape());
    (t.dims()[0], t.dims()[1])
}

/// Computes `C = A · B` for 2-D tensors.
///
/// # Panics
///
/// Panics if either operand is not 2-D or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use taco_tensor::{Tensor, linalg::matmul};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "matmul lhs");
    let (kb, n) = dims2(b, "matmul rhs");
    assert_eq!(ka, kb, "matmul inner dimension mismatch: {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        let orow = &mut out[i * n..(i + 1) * n];
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aik * bkj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n][..])
}

/// Computes `C = Aᵀ · B` where `A` is `k × m` and `B` is `k × n`.
///
/// Equivalent to `matmul(&a.transpose(), b)` without allocating the
/// transpose. Used for weight gradients (`∂L/∂W = Xᵀ · ∂L/∂Y`).
///
/// # Panics
///
/// Panics if either operand is not 2-D or the leading dimensions differ.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = dims2(a, "matmul_tn lhs");
    let (kb, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(ka, kb, "matmul_tn leading dimension mismatch: {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for k in 0..ka {
        let arow = &ad[k * m..(k + 1) * m];
        let brow = &bd[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aki * bkj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n][..])
}

/// Computes `C = A · Bᵀ` where `A` is `m × k` and `B` is `n × k`.
///
/// Equivalent to `matmul(a, &b.transpose())` without allocating the
/// transpose. Used for input gradients (`∂L/∂X = ∂L/∂Y · Wᵀ`).
///
/// # Panics
///
/// Panics if either operand is not 2-D or the trailing dimensions differ.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "matmul_nt lhs");
    let (n, kb) = dims2(b, "matmul_nt rhs");
    assert_eq!(
        ka, kb,
        "matmul_nt trailing dimension mismatch: {ka} vs {kb}"
    );
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            *o = crate::ops::dot(arow, &bd[j * kb..(j + 1) * kb]);
        }
    }
    Tensor::from_vec(out, &[m, n][..])
}

/// Computes the matrix-vector product `A · x` for a 2-D tensor.
///
/// # Panics
///
/// Panics if `a` is not 2-D or `x.len()` differs from the column count.
pub fn matvec(a: &Tensor, x: &[f32]) -> Vec<f32> {
    let (m, k) = dims2(a, "matvec lhs");
    assert_eq!(x.len(), k, "matvec dimension mismatch");
    let ad = a.data();
    (0..m)
        .map(|i| crate::ops::dot(&ad[i * k..(i + 1) * k], x))
        .collect()
}

/// Outer product `x · yᵀ` as an `m × n` tensor.
pub fn outer(x: &[f32], y: &[f32]) -> Tensor {
    let mut out = vec![0.0f32; x.len() * y.len()];
    for (i, &xi) in x.iter().enumerate() {
        for (j, &yj) in y.iter().enumerate() {
            out[i * y.len() + j] = xi * yj;
        }
    }
    Tensor::from_vec(out, &[x.len(), y.len()][..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n][..]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], s);
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Prng::seed_from_u64(1);
        let a = Tensor::randn(&[3, 3][..], 1.0, &mut rng);
        assert_close(&matmul(&a, &Tensor::eye(3)), &a, 1e-6);
        assert_close(&matmul(&Tensor::eye(3), &a), &a, 1e-6);
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Prng::seed_from_u64(2);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (8, 8, 8)] {
            let a = Tensor::randn(&[m, k][..], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n][..], 1.0, &mut rng);
            assert_close(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-5);
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = Prng::seed_from_u64(3);
        let a = Tensor::randn(&[6, 4][..], 1.0, &mut rng);
        let b = Tensor::randn(&[6, 5][..], 1.0, &mut rng);
        assert_close(&matmul_tn(&a, &b), &matmul(&a.transpose(), &b), 1e-5);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = Prng::seed_from_u64(4);
        let a = Tensor::randn(&[3, 7][..], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 7][..], 1.0, &mut rng);
        assert_close(&matmul_nt(&a, &b), &matmul(&a, &b.transpose()), 1e-5);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Prng::seed_from_u64(5);
        let a = Tensor::randn(&[4, 6][..], 1.0, &mut rng);
        let x = Tensor::randn(&[6, 1][..], 1.0, &mut rng);
        let via_matmul = matmul(&a, &x);
        let via_matvec = matvec(&a, x.data());
        for (p, q) in via_matmul.data().iter().zip(&via_matvec) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn outer_shape_and_values() {
        let t = outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3][..]);
        let b = Tensor::zeros(&[4, 2][..]);
        let _ = matmul(&a, &b);
    }
}
