//! Matrix multiplication kernels: cache-blocked, register-tiled, and
//! pool-parallel.
//!
//! Three variants cover everything a dense/convolutional layer's
//! forward and backward passes need without materializing transposes:
//!
//! - [`matmul`]       — `C = A · B`
//! - [`matmul_tn`]    — `C = Aᵀ · B` (weight gradients)
//! - [`matmul_nt`]    — `C = A · Bᵀ` (input gradients)
//!
//! # Kernel structure
//!
//! `matmul` and `matmul_tn` are GEBP-style blocked kernels: the K
//! dimension is split into [`KC`]-deep slabs, columns into [`NC`]-wide
//! blocks whose full [`NR`]-column panels are packed contiguously, and
//! rows into [`MR`]-row groups packed k-major, so the inner
//! [`MR`]`×`[`NR`] microkernel streams both packs linearly and keeps
//! the whole accumulator tile in registers. On x86-64 the blocked body
//! is additionally compiled under `target_feature(avx)` and selected
//! at runtime. `matmul_nt` keeps its historical `f64` accumulation
//! (see below) and instead blocks B rows in transposed `f64` panels
//! with a 2×4 unrolled dot kernel.
//!
//! Work is split across the worker pool ([`crate::pool`]) along the M
//! dimension in fixed [`MC`]-row chunks. Chunk boundaries depend only
//! on the output shape — never on the thread count — so results are
//! identical for any `TACO_THREADS` setting.
//!
//! # Bit-exactness contract
//!
//! For every output element, the blocked kernels perform *the same
//! sequence of rounded operations* as the naive references
//! ([`matmul_naive`], [`matmul_tn_naive`], [`matmul_nt_naive`], which
//! preserve the pre-blocking implementations):
//!
//! - `matmul`/`matmul_tn`: an ascending-k fold of
//!   `c = round(c + round(a·b))` in `f32`. K-slabs run in ascending
//!   order and the microkernel loads the current C tile before
//!   accumulating, so slab boundaries don't change the fold. Rust
//!   never contracts `mul + add` into FMA, and per-lane AVX
//!   `vmulps`/`vaddps` round exactly like scalar ops, so SIMD and
//!   scalar paths agree bit-for-bit.
//! - `matmul_nt`: an ascending-k fold in `f64` with one final cast to
//!   `f32`, exactly [`crate::ops::dot`]. The K dimension is therefore
//!   *not* blocked in `matmul_nt` — the `f64` accumulator must span
//!   all of k.
//!
//! On this contract rest the differential tests in
//! `tests/algebra_properties.rs` (exact equality, not tolerance) and
//! the golden-trajectory fixtures in the workspace-level
//! `tests/end_to_end.rs`.
//!
//! ## The old `aik == 0.0` fast path
//!
//! The pre-blocking kernels skipped a whole AXPY row when the A element
//! was zero, which helped sparse-ish gradients (e.g. post-ReLU). The
//! blocked kernels drop that branch. It is bit-neutral for *finite*
//! inputs (`round(c + round(0·b)) == c`, since an accumulator can
//! never be `-0.0` unless every contribution was, in which case both
//! paths agree), so correctness is unaffected; the only observable
//! difference is on non-finite data (`0·∞ = NaN` now propagates
//! instead of being skipped), which no caller feeds the kernels.
//!
//! Measured on the `benches/tensor_ops.rs` sweep (256³, single
//! thread): the blocked kernel is ~3× faster than the skipping naive
//! kernel on dense inputs, while the skip only pulls ahead once A is
//! more than ~⅔ zeros (at 90% zeros the naive kernel wins ~3×, since
//! it touches a tenth of the work). The workspace's hot matmuls have
//! dense A operands — batches, im2col patch matrices, and upstream
//! gradients that are at ReLU-level (~50%) sparsity at most — which is
//! below the crossover, so the blocked kernel keeps no zero test and
//! the sparse case is covered by the benchmark instead.
//!
//! [`matvec`] and [`outer`] are small enough that the naive loops are
//! already memory-bound; they are unchanged.

#[cfg(all(target_arch = "x86_64", not(miri)))]
use std::sync::OnceLock;

use crate::ktrace;
use crate::pool;
use crate::Tensor;

/// Microkernel rows: A-pack group height.
const MR: usize = 4;
/// Microkernel columns: one AVX register of `f32` per accumulator row.
const NR: usize = 8;
/// K-slab depth for `matmul`/`matmul_tn` packing.
const KC: usize = 256;
/// Column-block width: the packed B slab is at most `KC · NC` floats.
const NC: usize = 128;
/// Rows per parallel chunk. A multiple of [`MR`] so microkernel group
/// boundaries are the same whether a chunk starts at row 0 or row
/// `i · MC`.
const MC: usize = 32;
/// Below this many multiply-adds a kernel runs inline on the caller —
/// pool dispatch overhead would dominate.
const PAR_MIN_MACS: usize = 1 << 18;

static K_MATMUL: ktrace::Kernel = ktrace::Kernel::new("kernel.matmul");
static K_MATMUL_TN: ktrace::Kernel = ktrace::Kernel::new("kernel.matmul_tn");
static K_MATMUL_NT: ktrace::Kernel = ktrace::Kernel::new("kernel.matmul_nt");

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().ndim(), 2, "{what} must be 2-D, got {}", t.shape());
    (t.dims()[0], t.dims()[1])
}

/// Rows per parallel chunk for an `m`-row output with `macs` total
/// multiply-adds: the fixed [`MC`] when the problem is worth
/// dispatching, else all of `m` (one inline chunk).
fn par_chunk_rows(m: usize, macs: usize) -> usize {
    if macs >= PAR_MIN_MACS && pool::threads() > 1 {
        MC
    } else {
        m
    }
}

fn cpu_has_avx() -> bool {
    // Miri interprets portable Rust only: it can run neither the
    // feature-detection intrinsics nor the AVX kernels, so the
    // dispatch reports no AVX and the scalar path (bit-identical by
    // the differential tests) is what gets checked for UB.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        static AVX: OnceLock<bool> = OnceLock::new();
        *AVX.get_or_init(|| std::is_x86_feature_detected!("avx"))
    }
    #[cfg(any(not(target_arch = "x86_64"), miri))]
    {
        false
    }
}

/// Per-thread packing scratch, reused across kernel calls.
struct Scratch {
    a: Vec<f32>,
    b: Vec<f32>,
    bt: Vec<f64>,
}

thread_local! {
    static SCRATCH: std::cell::RefCell<Scratch> = const {
        std::cell::RefCell::new(Scratch { a: Vec::new(), b: Vec::new(), bt: Vec::new() })
    };
}

fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Computes `C = A · B` for 2-D tensors.
///
/// # Panics
///
/// Panics if either operand is not 2-D or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use taco_tensor::{Tensor, linalg::matmul};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "matmul lhs");
    let (kb, n) = dims2(b, "matmul rhs");
    assert_eq!(ka, kb, "matmul inner dimension mismatch: {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return Tensor::from_vec(out, &[m, n][..]);
    }
    let _t = K_MATMUL.record((m * ka * n) as u64);
    let (ad, bd) = (a.data(), b.data());
    let chunk_rows = par_chunk_rows(m, m * ka * n);
    pool::for_each_chunk(&mut out, chunk_rows * n, |ci, c_chunk| {
        let r0 = ci * chunk_rows;
        let rows = c_chunk.len() / n;
        // Row group `r` of the pack holds A row `row0 + r`; element t
        // of the slab is A column `kk + t` (contiguous in memory).
        let pack_a = |dst: &mut [f32], row0: usize, mb: usize, kk: usize, kc: usize| {
            for r in 0..mb {
                let arow = &ad[(row0 + r) * ka + kk..];
                for t in 0..kc {
                    dst[t * MR + r] = arow[t];
                }
            }
        };
        gebp_dispatch(&pack_a, bd, c_chunk, r0, rows, ka, n);
    });
    Tensor::from_vec(out, &[m, n][..])
}

/// Computes `C = Aᵀ · B` where `A` is `k × m` and `B` is `k × n`.
///
/// Equivalent to `matmul(&a.transpose(), b)` without allocating the
/// transpose. Used for weight gradients (`∂L/∂W = Xᵀ · ∂L/∂Y`).
///
/// # Panics
///
/// Panics if either operand is not 2-D or the leading dimensions differ.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = dims2(a, "matmul_tn lhs");
    let (kb, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(ka, kb, "matmul_tn leading dimension mismatch: {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return Tensor::from_vec(out, &[m, n][..]);
    }
    let _t = K_MATMUL_TN.record((m * ka * n) as u64);
    let (ad, bd) = (a.data(), b.data());
    let chunk_rows = par_chunk_rows(m, m * ka * n);
    pool::for_each_chunk(&mut out, chunk_rows * n, |ci, c_chunk| {
        let r0 = ci * chunk_rows;
        let rows = c_chunk.len() / n;
        // A is stored k-major: output row `row0 + r` reads A column
        // `row0 + r`, i.e. stride-m loads.
        let pack_a = |dst: &mut [f32], row0: usize, mb: usize, kk: usize, kc: usize| {
            for t in 0..kc {
                let arow = &ad[(kk + t) * m + row0..];
                for r in 0..mb {
                    dst[t * MR + r] = arow[r];
                }
            }
        };
        gebp_dispatch(&pack_a, bd, c_chunk, r0, rows, ka, n);
    });
    Tensor::from_vec(out, &[m, n][..])
}

/// Computes `C = A · Bᵀ` where `A` is `m × k` and `B` is `n × k`.
///
/// Equivalent to `matmul(a, &b.transpose())` without allocating the
/// transpose. Used for input gradients (`∂L/∂X = ∂L/∂Y · Wᵀ`).
///
/// Accumulates in `f64` per element (like [`crate::ops::dot`], which
/// the pre-blocking kernel delegated to) — see the module docs.
///
/// # Panics
///
/// Panics if either operand is not 2-D or the trailing dimensions differ.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "matmul_nt lhs");
    let (n, kb) = dims2(b, "matmul_nt rhs");
    assert_eq!(
        ka, kb,
        "matmul_nt trailing dimension mismatch: {ka} vs {kb}"
    );
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return Tensor::from_vec(out, &[m, n][..]);
    }
    let _t = K_MATMUL_NT.record((m * ka * n) as u64);
    let (ad, bd) = (a.data(), b.data());
    let chunk_rows = par_chunk_rows(m, m * ka * n);
    pool::for_each_chunk(&mut out, chunk_rows * n, |ci, c_chunk| {
        let r0 = ci * chunk_rows;
        let rows = c_chunk.len() / n;
        nt_dispatch(&ad[r0 * ka..(r0 + rows) * ka], bd, c_chunk, rows, ka, n);
    });
    Tensor::from_vec(out, &[m, n][..])
}

/// Runs the blocked kernel body for one row chunk, selecting the AVX
/// build when the CPU supports it.
fn gebp_dispatch<PA: Fn(&mut [f32], usize, usize, usize, usize)>(
    pack_a: &PA,
    b: &[f32],
    c: &mut [f32],
    r0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    with_scratch(|s| {
        s.a.resize(MR * KC, 0.0);
        s.b.resize(KC * NC, 0.0);
        #[cfg(target_arch = "x86_64")]
        if cpu_has_avx() {
            // SAFETY: AVX support was just verified at runtime.
            unsafe { gebp_avx(pack_a, b, c, r0, rows, k, n, &mut s.a, &mut s.b) };
            return;
        }
        let _ = cpu_has_avx();
        gebp_body(pack_a, b, c, r0, rows, k, n, &mut s.a, &mut s.b);
    });
}

/// # Safety
///
/// The CPU must support AVX (`target_feature` makes calling this UB
/// otherwise); the dispatch site verifies with `cpu_has_avx` at
/// runtime. The body's own pointer arithmetic is justified inline.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[allow(clippy::too_many_arguments)]
unsafe fn gebp_avx<PA: Fn(&mut [f32], usize, usize, usize, usize)>(
    pack_a: &PA,
    b: &[f32],
    c: &mut [f32],
    r0: usize,
    rows: usize,
    k: usize,
    n: usize,
    ap_buf: &mut [f32],
    bp_buf: &mut [f32],
) {
    gebp_body(pack_a, b, c, r0, rows, k, n, ap_buf, bp_buf);
}

/// One row chunk of the blocked kernel. `c` is the chunk's slice of the
/// output (rows `r0 .. r0 + rows`, full width `n`); `pack_a` writes the
/// k-major `MR`-row pack for a given global row group and K slab.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn gebp_body<PA: Fn(&mut [f32], usize, usize, usize, usize)>(
    pack_a: &PA,
    b: &[f32],
    c: &mut [f32],
    r0: usize,
    rows: usize,
    k: usize,
    n: usize,
    ap_buf: &mut [f32],
    bp_buf: &mut [f32],
) {
    let mut kk = 0;
    while kk < k {
        let kc = KC.min(k - kk);
        let mut jj = 0;
        while jj < n {
            let nc = NC.min(n - jj);
            let panels = nc / NR;
            for p in 0..panels {
                for t in 0..kc {
                    let src = &b[(kk + t) * n + jj + p * NR..][..NR];
                    bp_buf[p * (kc * NR) + t * NR..][..NR].copy_from_slice(src);
                }
            }
            let mut ii = 0;
            while ii < rows {
                let mb = MR.min(rows - ii);
                pack_a(ap_buf, r0 + ii, mb, kk, kc);
                if mb == MR {
                    for p in 0..panels {
                        // SAFETY: rows `ii..ii+MR` < rows and columns
                        // `jj + p*NR .. + NR` ≤ jj + nc ≤ n are in
                        // bounds of the chunk; packs hold `kc` slabs.
                        unsafe {
                            micro(
                                kc,
                                ap_buf.as_ptr(),
                                bp_buf.as_ptr().add(p * (kc * NR)),
                                c.as_mut_ptr().add(ii * n + jj + p * NR),
                                n,
                            );
                        }
                    }
                    if panels * NR < nc {
                        scalar_tail(ap_buf, MR, kc, b, kk, n, jj + panels * NR, jj + nc, c, ii);
                    }
                } else {
                    scalar_tail(ap_buf, mb, kc, b, kk, n, jj, jj + nc, c, ii);
                }
                ii += MR;
            }
            jj += nc;
        }
        kk += kc;
    }
}

/// `MR×NR` register-tile update: loads the C tile, accumulates `kc`
/// slab steps from the packs, stores it back. Loading C first keeps the
/// per-element operation sequence identical to the naive ascending-k
/// fold across K slabs.
///
/// # Safety
///
/// `ap` must hold `kc · MR` floats, `bp` `kc · NR` floats, and `c` must
/// point at an `MR×NR` tile with row stride `ldc` inside an allocation
/// this call may write.
#[inline(always)]
unsafe fn micro(kc: usize, ap: *const f32, bp: *const f32, c: *mut f32, ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    // SAFETY: every access below stays within the pack/tile bounds the
    // function contract (`# Safety` above) requires of the caller.
    unsafe {
        for (r, row) in acc.iter_mut().enumerate() {
            let crow = c.add(r * ldc);
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = *crow.add(j);
            }
        }
        for t in 0..kc {
            let bt = bp.add(t * NR);
            let mut bv = [0.0f32; NR];
            for (j, slot) in bv.iter_mut().enumerate() {
                *slot = *bt.add(j);
            }
            for (r, row) in acc.iter_mut().enumerate() {
                let av = *ap.add(t * MR + r);
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot += av * bv[j];
                }
            }
        }
        for (r, row) in acc.iter().enumerate() {
            let crow = c.add(r * ldc);
            for (j, &v) in row.iter().enumerate() {
                *crow.add(j) = v;
            }
        }
    }
}

/// Fallback for row groups shorter than [`MR`] and column tails
/// narrower than [`NR`]: same ascending-k fold, reading A from the pack
/// and B rows in place.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn scalar_tail(
    ap: &[f32],
    mb: usize,
    kc: usize,
    b: &[f32],
    kk: usize,
    n: usize,
    js: usize,
    je: usize,
    c: &mut [f32],
    ii: usize,
) {
    for r in 0..mb {
        let crow = &mut c[(ii + r) * n..(ii + r + 1) * n];
        for t in 0..kc {
            let av = ap[t * MR + r];
            let brow = &b[(kk + t) * n..(kk + t + 1) * n];
            for j in js..je {
                crow[j] += av * brow[j];
            }
        }
    }
}

/// Runs the `A·Bᵀ` kernel body for one row chunk, selecting the AVX
/// build when available.
fn nt_dispatch(a: &[f32], b: &[f32], c: &mut [f32], rows: usize, k: usize, n: usize) {
    with_scratch(|s| {
        #[cfg(target_arch = "x86_64")]
        if cpu_has_avx() {
            // SAFETY: AVX support was just verified at runtime.
            unsafe { nt_avx(a, b, c, rows, k, n, &mut s.bt) };
            return;
        }
        nt_body(a, b, c, rows, k, n, &mut s.bt);
    });
}

/// # Safety
///
/// The CPU must support AVX (`target_feature` makes calling this UB
/// otherwise); the dispatch site verifies with `cpu_has_avx` at
/// runtime. The body is the safe `nt_body` compiled with AVX codegen.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn nt_avx(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
    bt: &mut Vec<f64>,
) {
    nt_body(a, b, c, rows, k, n, bt);
}

/// One row chunk of `C = A·Bᵀ` with per-element `f64` accumulation.
/// Groups of 4 B rows are packed as a transposed `f64` panel (so the
/// inner loop loads one contiguous 4-vector per k step) and consumed by
/// a 2-row unrolled kernel — 8 independent accumulator chains, each an
/// ascending-k `f64` fold identical to [`crate::ops::dot`]. K is never
/// blocked here: the `f64` accumulator must span all of it.
#[inline(always)]
fn nt_body(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
    bt: &mut Vec<f64>,
) {
    const JB: usize = 4;
    bt.resize(JB * k, 0.0);
    let mut jj = 0;
    while jj < n {
        let jb = JB.min(n - jj);
        if jb == JB {
            for t in 0..k {
                for j in 0..JB {
                    bt[t * JB + j] = f64::from(b[(jj + j) * k + t]);
                }
            }
            let mut i = 0;
            while i < rows {
                let ib = 2.min(rows - i);
                let mut acc = [[0.0f64; JB]; 2];
                for t in 0..k {
                    let bv = &bt[t * JB..(t + 1) * JB];
                    for (r, row) in acc.iter_mut().take(ib).enumerate() {
                        let av = f64::from(a[(i + r) * k + t]);
                        for (j, slot) in row.iter_mut().enumerate() {
                            *slot += av * bv[j];
                        }
                    }
                }
                for (r, row) in acc.iter().take(ib).enumerate() {
                    for (j, &v) in row.iter().enumerate() {
                        c[(i + r) * n + jj + j] = v as f32;
                    }
                }
                i += ib;
            }
        } else {
            for i in 0..rows {
                let arow = &a[i * k..(i + 1) * k];
                for j in 0..jb {
                    c[i * n + jj + j] = crate::ops::dot(arow, &b[(jj + j) * k..(jj + j + 1) * k]);
                }
            }
        }
        jj += jb;
    }
}

/// The pre-blocking `C = A · B` kernel (k-outer AXPY with the
/// `aik == 0.0` skip), kept verbatim as the differential-testing
/// reference and for sparse-input benchmarking. Single-threaded.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "matmul lhs");
    let (kb, n) = dims2(b, "matmul rhs");
    assert_eq!(ka, kb, "matmul inner dimension mismatch: {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        let orow = &mut out[i * n..(i + 1) * n];
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aik * bkj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n][..])
}

/// The pre-blocking `C = Aᵀ · B` kernel, kept verbatim as the
/// differential-testing reference. Single-threaded.
pub fn matmul_tn_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = dims2(a, "matmul_tn lhs");
    let (kb, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(ka, kb, "matmul_tn leading dimension mismatch: {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for k in 0..ka {
        let arow = &ad[k * m..(k + 1) * m];
        let brow = &bd[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aki * bkj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n][..])
}

/// The pre-blocking `C = A · Bᵀ` kernel (per-element
/// [`crate::ops::dot`]), kept verbatim as the differential-testing
/// reference. Single-threaded.
pub fn matmul_nt_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "matmul_nt lhs");
    let (n, kb) = dims2(b, "matmul_nt rhs");
    assert_eq!(
        ka, kb,
        "matmul_nt trailing dimension mismatch: {ka} vs {kb}"
    );
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            *o = crate::ops::dot(arow, &bd[j * kb..(j + 1) * kb]);
        }
    }
    Tensor::from_vec(out, &[m, n][..])
}

/// Computes the matrix-vector product `A · x` for a 2-D tensor.
///
/// # Panics
///
/// Panics if `a` is not 2-D or `x.len()` differs from the column count.
pub fn matvec(a: &Tensor, x: &[f32]) -> Vec<f32> {
    let (m, k) = dims2(a, "matvec lhs");
    assert_eq!(x.len(), k, "matvec dimension mismatch");
    let ad = a.data();
    (0..m)
        .map(|i| crate::ops::dot(&ad[i * k..(i + 1) * k], x))
        .collect()
}

// --- Codec scale-accumulate kernels ---------------------------------------
//
// The upload codecs in `taco-core::compress` fold encoded payloads
// directly into the sharded backend's `f64` accumulators without
// materializing an intermediate decoded `Vec<f32>`. Each kernel is a
// purely elementwise `acc[j] += weight · decode(j)` pass — no
// cross-lane reduction — so the AVX build is bit-identical to the
// scalar body lane for lane (the differential tests below pin this),
// and the widening arithmetic is exactly the
// `acc += weight as f64 * x as f64` of [`crate::ops::weighted_mean`].

static K_SCALE_ACC: ktrace::Kernel = ktrace::Kernel::new("kernel.scale_acc");
static K_DEQUANT_ACC: ktrace::Kernel = ktrace::Kernel::new("kernel.dequant_acc");

/// Fused scale-accumulate `acc[j] += weight · values[j]`, widening each
/// `f32` to `f64` before the multiply (the weighted-mean contract).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn scale_accumulate(acc: &mut [f64], values: &[f32], weight: f64) {
    assert_eq!(acc.len(), values.len(), "scale_accumulate length mismatch");
    if acc.is_empty() {
        return;
    }
    let _t = K_SCALE_ACC.record(acc.len() as u64);
    #[cfg(target_arch = "x86_64")]
    if cpu_has_avx() {
        // SAFETY: AVX support was just verified at runtime.
        unsafe { scale_accumulate_avx(acc, values, weight) };
        return;
    }
    let _ = cpu_has_avx();
    scale_accumulate_body(acc, values, weight);
}

/// # Safety
///
/// The CPU must support AVX (`target_feature` makes calling this UB
/// otherwise); the dispatch site verifies with `cpu_has_avx` at
/// runtime. The body is the safe `scale_accumulate_body` compiled with
/// AVX codegen.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn scale_accumulate_avx(acc: &mut [f64], values: &[f32], weight: f64) {
    scale_accumulate_body(acc, values, weight);
}

#[inline(always)]
fn scale_accumulate_body(acc: &mut [f64], values: &[f32], weight: f64) {
    for (a, &x) in acc.iter_mut().zip(values) {
        *a += weight * f64::from(x);
    }
}

/// Fused 8-bit dequantize-accumulate:
/// `acc[j] += weight · f64(min + levels[j] · scale)`, where the affine
/// reconstruction `min + level · scale` happens in `f32` — the exact
/// value a decode-then-add pass would have produced.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn dequant8_accumulate(acc: &mut [f64], levels: &[u8], min: f32, scale: f32, weight: f64) {
    assert_eq!(
        acc.len(),
        levels.len(),
        "dequant8_accumulate length mismatch"
    );
    if acc.is_empty() {
        return;
    }
    let _t = K_DEQUANT_ACC.record(acc.len() as u64);
    #[cfg(target_arch = "x86_64")]
    if cpu_has_avx() {
        // SAFETY: AVX support was just verified at runtime.
        unsafe { dequant8_accumulate_avx(acc, levels, min, scale, weight) };
        return;
    }
    let _ = cpu_has_avx();
    dequant8_accumulate_body(acc, levels, min, scale, weight);
}

/// # Safety
///
/// The CPU must support AVX (`target_feature` makes calling this UB
/// otherwise); the dispatch site verifies with `cpu_has_avx` at
/// runtime. The body is the safe `dequant8_accumulate_body` compiled
/// with AVX codegen.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn dequant8_accumulate_avx(
    acc: &mut [f64],
    levels: &[u8],
    min: f32,
    scale: f32,
    weight: f64,
) {
    dequant8_accumulate_body(acc, levels, min, scale, weight);
}

#[inline(always)]
fn dequant8_accumulate_body(acc: &mut [f64], levels: &[u8], min: f32, scale: f32, weight: f64) {
    for (a, &l) in acc.iter_mut().zip(levels) {
        let x = min + f32::from(l) * scale;
        *a += weight * f64::from(x);
    }
}

/// Fused 4-bit dequantize-accumulate over a nibble-packed level buffer:
/// element `first + j` reads the low (even index) or high (odd index)
/// nibble of `packed[(first + j) / 2]`, reconstructs
/// `min + level · scale` in `f32`, and accumulates
/// `acc[j] += weight · f64(value)`. `first` is the absolute element
/// offset, so shard-range calls agree with a whole-vector pass on
/// nibble parity.
///
/// # Panics
///
/// Panics if `packed` is too short for elements `first .. first + acc.len()`.
pub fn dequant4_accumulate(
    acc: &mut [f64],
    packed: &[u8],
    first: usize,
    min: f32,
    scale: f32,
    weight: f64,
) {
    if acc.is_empty() {
        return;
    }
    assert!(
        (first + acc.len()).div_ceil(2) <= packed.len(),
        "dequant4_accumulate: packed buffer too short"
    );
    let _t = K_DEQUANT_ACC.record(acc.len() as u64);
    #[cfg(target_arch = "x86_64")]
    if cpu_has_avx() {
        // SAFETY: AVX support was just verified at runtime.
        unsafe { dequant4_accumulate_avx(acc, packed, first, min, scale, weight) };
        return;
    }
    let _ = cpu_has_avx();
    dequant4_accumulate_body(acc, packed, first, min, scale, weight);
}

/// # Safety
///
/// The CPU must support AVX (`target_feature` makes calling this UB
/// otherwise); the dispatch site verifies with `cpu_has_avx` at
/// runtime. The body is the safe `dequant4_accumulate_body` compiled
/// with AVX codegen.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn dequant4_accumulate_avx(
    acc: &mut [f64],
    packed: &[u8],
    first: usize,
    min: f32,
    scale: f32,
    weight: f64,
) {
    dequant4_accumulate_body(acc, packed, first, min, scale, weight);
}

#[inline(always)]
fn dequant4_accumulate_body(
    acc: &mut [f64],
    packed: &[u8],
    first: usize,
    min: f32,
    scale: f32,
    weight: f64,
) {
    for (j, a) in acc.iter_mut().enumerate() {
        let i = first + j;
        let byte = packed[i / 2];
        let level = (byte >> ((i % 2) * 4)) & 0x0F;
        let x = min + f32::from(level) * scale;
        *a += weight * f64::from(x);
    }
}

/// Outer product `x · yᵀ` as an `m × n` tensor.
pub fn outer(x: &[f32], y: &[f32]) -> Tensor {
    let mut out = vec![0.0f32; x.len() * y.len()];
    for (i, &xi) in x.iter().enumerate() {
        for (j, &yj) in y.iter().enumerate() {
            out[i * y.len() + j] = xi * yj;
        }
    }
    Tensor::from_vec(out, &[x.len(), y.len()][..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    fn assert_bits_equal(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.dims(), b.dims(), "{what}: shape mismatch");
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: element {i} differs: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Prng::seed_from_u64(1);
        let a = Tensor::randn(&[3, 3][..], 1.0, &mut rng);
        assert_close(&matmul(&a, &Tensor::eye(3)), &a, 1e-6);
        assert_close(&matmul(&Tensor::eye(3), &a), &a, 1e-6);
    }

    #[test]
    fn matmul_matches_naive_bitwise() {
        let mut rng = Prng::seed_from_u64(2);
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 4),
            (5, 7, 3),
            (8, 8, 8),
            (13, 17, 11),
            (40, 9, 33),
        ] {
            let a = Tensor::randn(&[m, k][..], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n][..], 1.0, &mut rng);
            assert_bits_equal(
                &matmul(&a, &b),
                &matmul_naive(&a, &b),
                &format!("matmul {m}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn matmul_tn_matches_naive_bitwise() {
        let mut rng = Prng::seed_from_u64(3);
        for &(k, m, n) in &[(1, 1, 1), (6, 4, 5), (17, 13, 7), (33, 40, 9)] {
            let a = Tensor::randn(&[k, m][..], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n][..], 1.0, &mut rng);
            assert_bits_equal(
                &matmul_tn(&a, &b),
                &matmul_tn_naive(&a, &b),
                &format!("matmul_tn {k}x{m}x{n}"),
            );
        }
    }

    #[test]
    fn matmul_nt_matches_naive_bitwise() {
        let mut rng = Prng::seed_from_u64(4);
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (13, 11, 17), (40, 33, 9)] {
            let a = Tensor::randn(&[m, k][..], 1.0, &mut rng);
            let b = Tensor::randn(&[n, k][..], 1.0, &mut rng);
            assert_bits_equal(
                &matmul_nt(&a, &b),
                &matmul_nt_naive(&a, &b),
                &format!("matmul_nt {m}x{n}x{k}"),
            );
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = Prng::seed_from_u64(3);
        let a = Tensor::randn(&[6, 4][..], 1.0, &mut rng);
        let b = Tensor::randn(&[6, 5][..], 1.0, &mut rng);
        assert_close(&matmul_tn(&a, &b), &matmul(&a.transpose(), &b), 1e-5);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = Prng::seed_from_u64(4);
        let a = Tensor::randn(&[3, 7][..], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 7][..], 1.0, &mut rng);
        assert_close(&matmul_nt(&a, &b), &matmul(&a, &b.transpose()), 1e-5);
    }

    #[test]
    fn sparse_inputs_match_the_skipping_naive_kernel_bitwise() {
        // The naive kernel takes its `aik == 0.0` fast path here; the
        // blocked kernel has no such branch — results must still agree
        // exactly (module docs, "the old fast path").
        let mut rng = Prng::seed_from_u64(11);
        let mut a = Tensor::randn(&[19, 23][..], 1.0, &mut rng);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::randn(&[23, 29][..], 1.0, &mut rng);
        assert_bits_equal(&matmul(&a, &b), &matmul_naive(&a, &b), "sparse matmul");
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Prng::seed_from_u64(5);
        let a = Tensor::randn(&[4, 6][..], 1.0, &mut rng);
        let x = Tensor::randn(&[6, 1][..], 1.0, &mut rng);
        let via_matmul = matmul(&a, &x);
        let via_matvec = matvec(&a, x.data());
        for (p, q) in via_matmul.data().iter().zip(&via_matvec) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn outer_shape_and_values() {
        let t = outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3][..]);
        let b = Tensor::zeros(&[4, 2][..]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn scale_accumulate_matches_scalar_reference_bitwise() {
        let mut rng = Prng::seed_from_u64(11);
        for len in [0usize, 1, 7, 64, 1023] {
            let values: Vec<f32> = (0..len).map(|_| rng.normal_f32()).collect();
            let init: Vec<f64> = (0..len).map(|_| rng.normal_f64()).collect();
            let w = 0.37f64;
            let mut got = init.clone();
            scale_accumulate(&mut got, &values, w);
            let mut want = init;
            for (a, &x) in want.iter_mut().zip(&values) {
                *a += w * f64::from(x);
            }
            for (i, (p, q)) in got.iter().zip(&want).enumerate() {
                assert_eq!(p.to_bits(), q.to_bits(), "len {len} dim {i}");
            }
        }
    }

    #[test]
    fn dequant8_accumulate_matches_decode_then_add_bitwise() {
        let mut rng = Prng::seed_from_u64(12);
        let len = 513;
        let levels: Vec<u8> = (0..len).map(|_| (rng.below(256)) as u8).collect();
        let (min, scale) = (-0.83f32, 0.0071f32);
        let w = -1.25f64;
        let init: Vec<f64> = (0..len).map(|_| rng.normal_f64()).collect();
        let mut got = init.clone();
        dequant8_accumulate(&mut got, &levels, min, scale, w);
        let mut want = init;
        for (a, &l) in want.iter_mut().zip(&levels) {
            let x = min + f32::from(l) * scale;
            *a += w * f64::from(x);
        }
        for (i, (p, q)) in got.iter().zip(&want).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "dim {i}");
        }
    }

    #[test]
    fn dequant4_range_calls_agree_with_whole_vector_pass() {
        // Splitting the element range at an odd boundary must read the
        // same nibbles as one whole-vector pass: parity comes from the
        // absolute index, not the slice offset.
        let mut rng = Prng::seed_from_u64(13);
        let dim = 257usize;
        let packed: Vec<u8> = (0..dim.div_ceil(2)).map(|_| rng.below(256) as u8).collect();
        let (min, scale, w) = (0.05f32, 0.013f32, 2.0f64);
        let mut whole = vec![0.0f64; dim];
        dequant4_accumulate(&mut whole, &packed, 0, min, scale, w);
        let mut split = vec![0.0f64; dim];
        for (start, end) in [(0usize, 101usize), (101, 102), (102, dim)] {
            dequant4_accumulate(&mut split[start..end], &packed, start, min, scale, w);
        }
        for (i, (p, q)) in whole.iter().zip(&split).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "dim {i}");
        }
    }
}
