//! The dense `f32` tensor type.

use crate::shape::Shape;
use crate::Prng;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A dense, row-major, `f32` n-dimensional array.
///
/// `Tensor` is deliberately simple: it owns a flat `Vec<f32>` plus a
/// [`Shape`]. All neural-network layers in `taco-nn` are written against
/// this type, and the federated-learning algorithms in `taco-core` work
/// on the flat data directly via [`Tensor::data`].
///
/// # Example
///
/// ```
/// use taco_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.len(), 6);
/// let u = t.map(|x| x + 1.0);
/// assert_eq!(u.sum(), 6.0);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates an identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n][..]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements
    /// implied by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.len()
        );
        Tensor { data, shape }
    }

    /// Creates a tensor with entries drawn i.i.d. from `N(0, std²)`.
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut Prng) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| rng.normal_f32() * std).collect();
        Tensor { data, shape }
    }

    /// Creates a tensor with entries drawn i.i.d. from `U(-limit, limit)`.
    ///
    /// This is the classic fan-in uniform initialization used by the
    /// workspace layers.
    pub fn rand_uniform(shape: impl Into<Shape>, limit: f32, rng: &mut Prng) -> Self {
        let shape = shape.into();
        let data = (0..shape.len())
            .map(|_| (rng.uniform_f32() * 2.0 - 1.0) * limit)
            .collect();
        Tensor { data, shape }
    }

    /// Returns the shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimension list.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    ///
    /// Because [`Shape`] rejects zero-sized dimensions this is only true
    /// for a default-constructed tensor.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the flat data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the flat data slice mutably.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches; coordinates are
    /// bounds-checked in debug builds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a view of this tensor with a different shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            self.data.len(),
            shape.len(),
            "cannot reshape {} elements into shape {}",
            self.data.len(),
            shape
        );
        self.shape = shape;
        self
    }

    /// Applies `f` element-wise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two tensors element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// Multiplies every element by a scalar, in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns the sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Returns the arithmetic mean of all elements.
    ///
    /// Returns `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Returns the maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        assert!(!self.data.is_empty(), "max of empty tensor");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Returns the index of the maximum element in the flat data.
    ///
    /// Ties resolve to the first occurrence.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Returns the Euclidean (L2) norm of the flat data.
    pub fn norm(&self) -> f32 {
        crate::ops::norm(&self.data)
    }

    /// Interprets the tensor as a matrix and returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.ndim(), 2, "row() requires a 2-D tensor");
        let cols = self.shape.dim(1);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable variant of [`Tensor::row`].
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.shape.ndim(), 2, "row_mut() requires a 2-D tensor");
        let cols = self.shape.dim(1);
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Returns the transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.ndim(), 2, "transpose() requires a 2-D tensor");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[c, r][..]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Adds `other * alpha` to `self` in place (flat AXPY).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        crate::ops::axpy(&mut self.data, alpha, &other.data);
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.data.len() <= 8 {
            write!(f, "Tensor({}, {:?})", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor({}, [{:.4}, {:.4}, .., {:.4}])",
                self.shape,
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1]
            )
        }
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "shape mismatch in +=");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 2][..]);
        assert_eq!(z.sum(), 0.0);
        let f = Tensor::full(&[3][..], 2.5);
        assert_eq!(f.sum(), 7.5);
    }

    #[test]
    fn eye_diagonal() {
        let e = Tensor::eye(3);
        assert_eq!(e.at(&[0, 0]), 1.0);
        assert_eq!(e.at(&[1, 2]), 0.0);
        assert_eq!(e.sum(), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 2][..]);
    }

    #[test]
    fn reshape_keeps_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2][..]);
        let r = t.clone().reshape(&[4][..]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[4]);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2][..]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2][..]);
        assert_eq!(a.map(|x| 2.0 * x).data(), &[2.0, 4.0]);
        assert_eq!(a.zip(&b, |x, y| x * y).data(), &[3.0, 8.0]);
    }

    #[test]
    fn argmax_first_tie() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0], &[4][..]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3][..]);
        let tt = t.transpose().transpose();
        assert_eq!(tt, t);
    }

    #[test]
    fn row_access() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3][..]);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2][..]);
        let b = Tensor::from_vec(vec![0.5, 0.5], &[2][..]);
        assert_eq!((&a + &b).data(), &[1.5, 2.5]);
        assert_eq!((&a - &b).data(), &[0.5, 1.5]);
        assert_eq!((&a * 2.0).data(), &[2.0, 4.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.data(), &[1.5, 2.5]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::zeros(&[3][..]);
        let b = Tensor::full(&[3][..], 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = Prng::seed_from_u64(7);
        let mut r2 = Prng::seed_from_u64(7);
        let a = Tensor::randn(&[16][..], 1.0, &mut r1);
        let b = Tensor::randn(&[16][..], 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Tensor::default()).is_empty());
        assert!(!format!("{:?}", Tensor::zeros(&[100][..])).is_empty());
    }
}
