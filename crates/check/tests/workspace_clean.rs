//! The linter's own workspace gate: scanning the real workspace with
//! the committed baseline must produce zero findings. This is the
//! "run as a workspace test" half of taco-check — CI additionally runs
//! the binary, but `cargo test` alone already enforces the invariants.

use taco_check::{run, workspace_root_from_manifest, Config};

#[test]
fn workspace_has_no_unsuppressed_findings() {
    let root = workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR"));
    let baseline = taco_check::read_baseline(&root);
    let report = run(&Config { root, baseline });
    assert!(
        !report.failed(),
        "taco-check found violations:\n{}",
        report.render_text()
    );
    // The scan must actually have covered the workspace — a silent
    // walk failure would vacuously pass.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    // The committed baseline must stay healthy: no stale or
    // unparseable entries.
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline entries: {:?}",
        report.stale_baseline
    );
    assert!(
        report.malformed_baseline.is_empty(),
        "unparseable baseline lines: {:?}",
        report.malformed_baseline
    );
}
