// Seeded-violation fixture: D5 unsafe-hygiene.

pub fn undocumented(p: *const u8) -> u8 {
    // D5: no justification comment anywhere nearby.
    unsafe { *p }
}

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: fixture — caller passes a valid, aligned pointer.
    unsafe { *p }
}
