// Fixture span-name contract (the D9 anchor file).
pub const ROUND: &str = "sim.round";
// Dangling: nothing in the fixture tree references phase::ORPHAN.
pub const ORPHAN: &str = "sim.orphan";
