// Seeded-violation fixture: D1 and D2 in sim library code.
use std::time::Instant;

pub fn wall_clock_cost() -> f64 {
    // D2: wall-clock read outside trace/bench.
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

pub fn rogue_parallelism() {
    // D1: thread creation outside tensor::pool.
    let h = std::thread::spawn(|| {});
    let _ = h.join();
}

pub fn quoted_is_inert() -> &'static str {
    // Neither rule may fire on string contents.
    r#"Instant::now() and thread::spawn() inside a raw string"#
}
