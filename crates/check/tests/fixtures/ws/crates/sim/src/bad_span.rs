// Seeded-violation fixture: D9 span contract. The first span name is
// off-contract, the second spells a contract value as a literal, the
// third is the compliant form (and keeps phase::ROUND non-dangling).
pub fn run_round(r: usize) {
    let _rogue = trace::span!("sim.rogue", round = r);
    let _literal = trace::Span::quiet("sim.round");
    let _ok = trace::span!(crate::phase::ROUND, round = r);
}
