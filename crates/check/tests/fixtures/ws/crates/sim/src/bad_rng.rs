// Seeded-violation fixture: D7 salt discipline. The named salt below
// collides with core's REUSED_SALT (a two-location finding anchored
// there), and the raw hex literal is mixed straight into a seed.
pub const SELECT_SALT: u64 = 0xF1C5;

pub fn rngs(seed: u64) -> (u64, u64) {
    let select = seed ^ SELECT_SALT;
    let raw = seed ^ 0x00FF;
    (select, raw)
}
