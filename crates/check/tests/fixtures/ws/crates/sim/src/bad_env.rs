// Seeded-violation fixture: D8 env registry. Both reads bypass the
// typed accessor module, and the second name is a typo the registry
// never declared.
pub fn knobs() -> (Option<String>, Option<String>) {
    let raw = std::env::var("TACO_FIXTURE_KNOB").ok();
    let typo = std::env::var("TACO_FIXTURE_KNOBS").ok();
    (raw, typo)
}
