// Fixture env registry (the D8 anchor file): declares the knob the
// fixture tree reads, plus one the fixture README never mentions.
pub struct EnvVar {
    pub name: &'static str,
    pub doc: &'static str,
}

pub const REGISTRY: [EnvVar; 2] = [
    EnvVar {
        name: "TACO_FIXTURE_KNOB",
        doc: "documented in the fixture README",
    },
    EnvVar {
        name: "TACO_UNDOCUMENTED",
        doc: "registered but absent from the docs: D8 flags this entry",
    },
];
