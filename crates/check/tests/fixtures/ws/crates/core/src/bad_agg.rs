// Seeded-violation fixture: D3, D4, D6 in core library code.
use std::collections::HashMap;

pub fn nondeterministic_weights(w: &HashMap<usize, f32>) -> f32 {
    // D6: ad-hoc float reduction in an aggregation path.
    w.values().sum()
}

pub fn total(xs: &[f64]) -> f64 {
    // D6: bare fold accumulation.
    xs.iter().fold(0.0, |a, b| a + b)
}

pub fn first_alpha(alphas: &[f32]) -> f32 {
    // D4: unwrap in library code.
    alphas.first().copied().unwrap()
}

pub fn suppressed_alpha(alphas: &[f32]) -> f32 {
    // taco-check: allow(unwrap, fixture demonstrating pragma suppression)
    alphas.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    // Test code is exempt from D4/D6: none of these may fire.
    #[test]
    fn exempt() {
        let v: Vec<f32> = vec![1.0];
        let _ = v.first().copied().unwrap();
        let _: f32 = v.iter().sum();
    }
}
