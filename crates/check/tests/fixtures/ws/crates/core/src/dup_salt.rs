// Seeded-violation fixture: the same salt value declared twice
// workspace-wide — this one collides with sim's SELECT_SALT, so the
// D7 finding there carries this declaration as its related anchor.
pub const REUSED_SALT: u64 = 0xF1C5;

pub fn mix(seed: u64) -> u64 {
    seed ^ REUSED_SALT
}
