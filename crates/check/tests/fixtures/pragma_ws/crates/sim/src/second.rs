// Pragma fixture: both constants duplicate a value declared in core,
// so each carries the primary anchor of a two-location D7 finding.
// SECOND_SALT's finding is suppressed by the pragma at its *related*
// anchor (core/first.rs); FOURTH_SALT's by the pragma here at its
// *primary* anchor.
pub const SECOND_SALT: u64 = 0x11;

// taco-check: allow(salt-discipline, fixture: suppression via the primary anchor)
pub const FOURTH_SALT: u64 = 0x22;
