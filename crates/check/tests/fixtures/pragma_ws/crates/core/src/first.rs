// Pragma fixture: both constants here are the *first* declaration of
// their shared value, so the duplicate-salt findings anchor their
// primary location in sim and point back here as the related anchor.

// taco-check: allow(salt-discipline, fixture: suppression via the related anchor)
pub const FIRST_SALT: u64 = 0x11;

pub const THIRD_SALT: u64 = 0x22;
