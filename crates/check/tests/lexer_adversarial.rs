//! Adversarial token streams for the hand-rolled lexer, plus
//! rule-level assertions that lexing mistakes would turn into false
//! positives or false negatives.

use taco_check::lexer::{lex, TokenKind};
use taco_check::rules::{check_file, RuleId};
use taco_check::walker::{classify, FileIndex};

fn findings(path: &str, src: &str) -> Vec<RuleId> {
    let ctx = classify(path);
    let idx = FileIndex::build(&lex(src));
    let mut suppressed = 0;
    check_file(&ctx, &idx, &mut suppressed)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn raw_strings_with_hashes_swallow_quotes_and_hashes() {
    let src =
        r####"let a = r#"has "quotes" and a # sign"#; let b = r###"ends with "## not yet"###;"####;
    let toks = lex(src);
    let raw_count = toks
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::RawStrLit(_)))
        .count();
    assert_eq!(raw_count, 2, "tokens: {toks:?}");
    // Nothing inside the raw strings leaks as an identifier.
    let idents: Vec<_> = toks
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(idents, vec!["let", "a", "let", "b"]);
}

#[test]
fn nested_block_comments_terminate_correctly() {
    let src = "/* l1 /* l2 /* l3 */ l2 */ l1 */ fn after() {}";
    let toks = lex(src);
    assert!(matches!(toks[0].kind, TokenKind::BlockComment(_)));
    assert_eq!(toks[1].kind, TokenKind::Ident("fn".into()));
    // An unterminated nested comment consumes to EOF without panic.
    let toks = lex("/* open /* deeper */ still open");
    assert_eq!(toks.len(), 1);
}

#[test]
fn lifetime_char_ambiguity_under_pressure() {
    // <'a, 'b> then a char 'a' then a lifetime bound then b'x'.
    let src =
        "fn f<'a, 'b>(x: &'a str) { let c = 'a'; let d: &'static str = \"s\"; let e = b'x'; }";
    let toks = lex(src);
    let lifetimes: Vec<_> = toks
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::Lifetime(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(lifetimes, vec!["a", "b", "a", "static"]);
    let chars = toks.iter().filter(|t| t.kind == TokenKind::CharLit).count();
    assert_eq!(chars, 2); // 'a' and b'x'
}

#[test]
fn escaped_quote_char_does_not_derail_lexing() {
    // '\'' then code that must still be visible to rules.
    let src = "fn f() { let q = '\\''; foo.unwrap(); }";
    let toks = lex(src);
    assert!(toks.iter().any(|t| t.kind == TokenKind::CharLit));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Ident("unwrap".into())));
}

#[test]
fn pragmas_inside_strings_do_not_suppress() {
    let src = concat!(
        "pub fn f(x: Option<u8>) -> u8 {\n",
        "    let _decoy = \"taco-check: allow(unwrap, not a real pragma)\";\n",
        "    let _raw = r#\"taco-check: allow(D4, also fake)\"#;\n",
        "    x.unwrap()\n",
        "}\n",
    );
    assert_eq!(
        findings("crates/core/src/x.rs", src),
        vec![RuleId::D4Unwrap]
    );
}

#[test]
fn violations_inside_strings_and_comments_do_not_fire() {
    let src = concat!(
        "pub fn f() {\n",
        "    // thread::spawn and Instant::now in a comment\n",
        "    let _s = \"thread::spawn(Instant::now())\";\n",
        "    let _r = r##\"HashMap::new().iter().sum()\"##;\n",
        "    /* unsafe { } in /* nested */ comment */\n",
        "}\n",
    );
    assert!(findings("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn multiline_call_chains_still_match() {
    // The `.unwrap()` spans lines; token-sequence matching must span
    // the layout.
    let src = "pub fn f(x: Option<u8>) -> u8 {\n    x\n        .unwrap\n        ()\n}\n";
    assert_eq!(
        findings("crates/core/src/x.rs", src),
        vec![RuleId::D4Unwrap]
    );
}

#[test]
fn raw_identifier_is_not_a_raw_string() {
    let src = "fn f() { let r#unsafe = 1; let _ = r#unsafe; }";
    let toks = lex(src);
    // r#unsafe unescapes to the ident `unsafe` — which must then be
    // treated as the keyword by D5 (a false positive we accept as
    // impossible in practice: no one names a binding r#unsafe in this
    // codebase) — the important part is the lexer doesn't treat
    // `r#unsafe` as an unterminated raw string and swallow the file.
    assert!(
        toks.iter()
            .filter(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "unsafe"))
            .count()
            >= 2
    );
    assert_eq!(toks.last().unwrap().kind, TokenKind::Punct('}'));
}

#[test]
fn shebang_and_weird_bytes_do_not_panic() {
    let src = "#!/usr/bin/env rust\nfn f() { let 🦀 = (); }\n";
    let toks = lex(src);
    assert!(!toks.is_empty());
}
