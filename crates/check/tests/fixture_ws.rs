//! Runs the checker over the seeded-violation fixture tree
//! (`tests/fixtures/ws`), which mimics the workspace layout and
//! violates every rule D1–D6. Also exercises baseline semantics and
//! the CLI's exit codes end to end.

use std::path::PathBuf;
use taco_check::rules::{RuleId, ALL_RULES};
use taco_check::{run, Config};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("ws")
}

#[test]
fn every_rule_fires_on_the_seeded_fixture() {
    let report = run(&Config {
        root: fixture_root(),
        baseline: String::new(),
    });
    assert!(report.failed());
    for rule in ALL_RULES {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "rule {} did not fire on the fixture; findings:\n{}",
            rule.id(),
            report.render_text()
        );
    }
    // The pragma'd unwrap was suppressed, the documented unsafe clean.
    assert!(report.suppressed_by_pragma >= 1);
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == RuleId::D5SafetyComment
                && f.file.contains("bad_unsafe")
                && f.line > 7),
        "the SAFETY-commented unsafe block must not be flagged"
    );
    // String/raw-string contents are inert: nothing may fire on the
    // quoted_is_inert body.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.file.contains("bad_time") && f.line >= 16),
        "rules fired inside string literals:\n{}",
        report.render_text()
    );
}

#[test]
fn baseline_suppresses_exactly_and_reports_stale() {
    let clean = run(&Config {
        root: fixture_root(),
        baseline: String::new(),
    });
    // Baseline every current finding: the run becomes green.
    let baseline: String = clean
        .findings
        .iter()
        .map(|f| format!("{} {}:{}\n", f.rule.id(), f.file, f.line))
        .collect();
    let report = run(&Config {
        root: fixture_root(),
        baseline,
    });
    assert!(
        !report.failed(),
        "fully-baselined run must be green:\n{}",
        report.render_text()
    );
    assert_eq!(report.suppressed_by_baseline, clean.findings.len());
    assert!(report.stale_baseline.is_empty());

    // A baseline naming a fixed finding goes stale, visibly.
    let report = run(&Config {
        root: fixture_root(),
        baseline: "D4 crates/core/src/no_longer_exists.rs:1\n".to_string(),
    });
    assert_eq!(report.stale_baseline.len(), 1);
    assert!(report.failed(), "stale entries must not hide live findings");

    // Unparseable lines are surfaced, not silently ignored.
    let report = run(&Config {
        root: fixture_root(),
        baseline: "this is not an entry\n".to_string(),
    });
    assert_eq!(report.malformed_baseline.len(), 1);
}

#[test]
fn cli_exit_codes_match_findings() {
    // Green on the real workspace with the committed baseline…
    let root = taco_check::workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR"));
    let ok = std::process::Command::new(env!("CARGO_BIN_EXE_taco-check"))
        .args(["--root".as_ref(), root.as_os_str()])
        .args([
            "--baseline".as_ref(),
            root.join("taco-check.baseline").as_os_str(),
        ])
        .arg("--quiet")
        .output()
        .expect("spawn taco-check");
    assert!(
        ok.status.success(),
        "workspace run failed:\n{}{}",
        String::from_utf8_lossy(&ok.stdout),
        String::from_utf8_lossy(&ok.stderr)
    );

    // …and red on the seeded fixture, with a JSON report on request.
    let json_path = std::env::temp_dir().join("taco-check-fixture-report.json");
    let bad = std::process::Command::new(env!("CARGO_BIN_EXE_taco-check"))
        .args(["--root".as_ref(), fixture_root().as_os_str()])
        .args(["--json".as_ref(), json_path.as_os_str()])
        .output()
        .expect("spawn taco-check");
    assert!(!bad.status.success(), "fixture run must exit non-zero");
    let json = std::fs::read_to_string(&json_path).expect("JSON report written");
    for rule in ALL_RULES {
        assert!(
            json.contains(&format!("\"rule\": \"{}\"", rule.id())),
            "JSON report missing rule {}: {json}",
            rule.id()
        );
    }
    let _ = std::fs::remove_file(&json_path);
}
