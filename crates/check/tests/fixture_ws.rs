//! Runs the checker over the seeded-violation fixture tree
//! (`tests/fixtures/ws`), which mimics the workspace layout and
//! violates every rule D1–D9. Also exercises baseline and pragma
//! semantics for two-location findings, the unreadable-file exit
//! path, and the CLI's exit codes end to end.

use std::path::PathBuf;
use taco_check::rules::{RuleId, ALL_RULES};
use taco_check::{run, Config};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("ws")
}

#[test]
fn every_rule_fires_on_the_seeded_fixture() {
    let report = run(&Config {
        root: fixture_root(),
        baseline: String::new(),
    });
    assert!(report.failed());
    for rule in ALL_RULES {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "rule {} did not fire on the fixture; findings:\n{}",
            rule.id(),
            report.render_text()
        );
    }
    // The pragma'd unwrap was suppressed, the documented unsafe clean.
    assert!(report.suppressed_by_pragma >= 1);
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == RuleId::D5SafetyComment
                && f.file.contains("bad_unsafe")
                && f.line > 7),
        "the SAFETY-commented unsafe block must not be flagged"
    );
    // String/raw-string contents are inert: nothing may fire on the
    // quoted_is_inert body.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.file.contains("bad_time") && f.line >= 16),
        "rules fired inside string literals:\n{}",
        report.render_text()
    );
}

#[test]
fn cross_file_findings_carry_both_anchors() {
    let report = run(&Config {
        root: fixture_root(),
        baseline: String::new(),
    });
    // The duplicate-salt finding anchors at sim's SELECT_SALT (later
    // in collection order) and points back at core's REUSED_SALT.
    let dup = report
        .findings
        .iter()
        .find(|f| f.rule == RuleId::D7SaltDiscipline && f.message.contains("duplicates"))
        .expect("duplicate-salt finding");
    assert_eq!(dup.file, "crates/sim/src/bad_rng.rs");
    assert_eq!(
        dup.related,
        Some(("crates/core/src/dup_salt.rs".to_string(), 4))
    );
    // The raw-hex finding is single-location.
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == RuleId::D7SaltDiscipline
            && f.message.contains("raw hex")
            && f.related.is_none()));
    // D8 fires in every mode: raw read, typo'd name, undocumented
    // registry entry, doc-only ghost.
    let d8: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::D8EnvRegistry)
        .map(|f| f.message.as_str())
        .collect();
    assert!(d8
        .iter()
        .any(|m| m.contains("raw read of `TACO_FIXTURE_KNOB`")));
    assert!(d8
        .iter()
        .any(|m| m.contains("`TACO_FIXTURE_KNOBS` is not declared")));
    assert!(d8
        .iter()
        .any(|m| m.contains("`TACO_UNDOCUMENTED` is registered but never mentioned")));
    assert!(d8.iter().any(|m| m.contains("docs mention `TACO_GHOST`")));
    // D9 fires in every mode: off-contract literal, contract value as
    // a literal, dangling constant.
    let d9: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::D9SpanContract)
        .map(|f| f.message.as_str())
        .collect();
    assert!(d9
        .iter()
        .any(|m| m.contains("`\"sim.rogue\"` is not in the sim::phase contract")));
    assert!(d9
        .iter()
        .any(|m| m.contains("duplicates a sim::phase contract constant")));
    assert!(d9
        .iter()
        .any(|m| m.contains("`ORPHAN`") && m.contains("no use site")));
}

#[test]
fn pragmas_suppress_two_location_findings_at_either_anchor() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("pragma_ws");
    let report = run(&Config {
        root,
        baseline: String::new(),
    });
    // Two duplicate-salt pairs: one suppressed by a pragma at the
    // finding's related anchor (core), one at its primary anchor
    // (sim). Nothing may survive.
    assert!(
        !report.failed(),
        "pragma'd duplicates must be suppressed:\n{}",
        report.render_text()
    );
    assert_eq!(report.suppressed_by_pragma, 2);
}

#[test]
fn unreadable_files_fail_the_run_with_exit_2() {
    // A scratch tree with one valid file and one non-UTF-8 file: the
    // library reports the scan incomplete, the CLI exits 2.
    let root = std::env::temp_dir().join("taco-check-unreadable-ws");
    let src_dir = root.join("crates").join("core").join("src");
    std::fs::create_dir_all(&src_dir).expect("scratch tree");
    std::fs::write(src_dir.join("ok.rs"), "pub fn f() {}\n").expect("write ok.rs");
    std::fs::write(src_dir.join("bad.rs"), [0xFFu8, 0xFE, 0x00, 0x9F]).expect("write bad.rs");

    let report = run(&Config {
        root: root.clone(),
        baseline: String::new(),
    });
    assert!(report.incomplete());
    assert_eq!(report.unreadable.len(), 1);
    assert!(report.unreadable[0].starts_with("crates/core/src/bad.rs:"));

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_taco-check"))
        .args(["--root".as_ref(), root.as_os_str()])
        .output()
        .expect("spawn taco-check");
    assert_eq!(out.status.code(), Some(2), "unreadable files must exit 2");
    assert!(String::from_utf8_lossy(&out.stdout).contains("could not read crates/core/src/bad.rs"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn baseline_suppresses_exactly_and_reports_stale() {
    let clean = run(&Config {
        root: fixture_root(),
        baseline: String::new(),
    });
    // Baseline every current finding: the run becomes green. The set
    // includes two-location findings (D7–D9), which a baseline entry
    // matches by primary location alone.
    assert!(clean.findings.iter().any(|f| f.related.is_some()));
    let baseline: String = clean
        .findings
        .iter()
        .map(|f| format!("{} {}:{}\n", f.rule.id(), f.file, f.line))
        .collect();
    let report = run(&Config {
        root: fixture_root(),
        baseline,
    });
    assert!(
        !report.failed(),
        "fully-baselined run must be green:\n{}",
        report.render_text()
    );
    assert_eq!(report.suppressed_by_baseline, clean.findings.len());
    assert!(report.stale_baseline.is_empty());

    // A baseline naming a fixed finding goes stale, visibly.
    let report = run(&Config {
        root: fixture_root(),
        baseline: "D4 crates/core/src/no_longer_exists.rs:1\n".to_string(),
    });
    assert_eq!(report.stale_baseline.len(), 1);
    assert!(report.failed(), "stale entries must not hide live findings");

    // Unparseable lines are surfaced, not silently ignored.
    let report = run(&Config {
        root: fixture_root(),
        baseline: "this is not an entry\n".to_string(),
    });
    assert_eq!(report.malformed_baseline.len(), 1);
}

#[test]
fn cli_exit_codes_match_findings() {
    // Green on the real workspace with the committed baseline…
    let root = taco_check::workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR"));
    let ok = std::process::Command::new(env!("CARGO_BIN_EXE_taco-check"))
        .args(["--root".as_ref(), root.as_os_str()])
        .args([
            "--baseline".as_ref(),
            root.join("taco-check.baseline").as_os_str(),
        ])
        .arg("--quiet")
        .output()
        .expect("spawn taco-check");
    assert!(
        ok.status.success(),
        "workspace run failed:\n{}{}",
        String::from_utf8_lossy(&ok.stdout),
        String::from_utf8_lossy(&ok.stderr)
    );

    // …and red on the seeded fixture, with a JSON report on request.
    let json_path = std::env::temp_dir().join("taco-check-fixture-report.json");
    let bad = std::process::Command::new(env!("CARGO_BIN_EXE_taco-check"))
        .args(["--root".as_ref(), fixture_root().as_os_str()])
        .args(["--json".as_ref(), json_path.as_os_str()])
        .output()
        .expect("spawn taco-check");
    assert!(!bad.status.success(), "fixture run must exit non-zero");
    let json = std::fs::read_to_string(&json_path).expect("JSON report written");
    for rule in ALL_RULES {
        assert!(
            json.contains(&format!("\"rule\": \"{}\"", rule.id())),
            "JSON report missing rule {}: {json}",
            rule.id()
        );
    }
    let _ = std::fs::remove_file(&json_path);
}
