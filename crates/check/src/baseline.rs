//! The committed baseline: a list of known legacy findings that are
//! tolerated while being burned down deliberately.
//!
//! Format is one entry per line, `<rule-id> <file>:<line>`, with `#`
//! comments and blank lines ignored:
//!
//! ```text
//! # burning down: tracked in ISSUE 4
//! D4 crates/sim/src/runner.rs:473
//! ```
//!
//! Entries that no longer match any finding are reported as *stale* so
//! the baseline shrinks monotonically instead of fossilizing.

use crate::rules::{Finding, RuleId};

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: RuleId,
    pub file: String,
    pub line: u32,
}

impl BaselineEntry {
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule && self.file == f.file && self.line == f.line
    }

    pub fn render(&self) -> String {
        format!("{} {}:{}", self.rule.id(), self.file, self.line)
    }
}

/// Parses baseline text. Unparseable lines are returned separately so
/// the caller can surface them instead of silently tolerating typos.
pub fn parse(text: &str) -> (Vec<BaselineEntry>, Vec<String>) {
    let mut entries = Vec::new();
    let mut bad = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_entry(line) {
            Some(e) => entries.push(e),
            None => bad.push(line.to_string()),
        }
    }
    (entries, bad)
}

fn parse_entry(line: &str) -> Option<BaselineEntry> {
    let (rule_s, loc) = line.split_once(' ')?;
    let rule = RuleId::parse(rule_s.trim())?;
    let (file, line_s) = loc.trim().rsplit_once(':')?;
    Some(BaselineEntry {
        rule,
        file: file.to_string(),
        line: line_s.parse().ok()?,
    })
}

/// Splits `findings` into (kept, baselined) and reports stale entries.
pub fn apply(
    findings: Vec<Finding>,
    entries: &[BaselineEntry],
) -> (Vec<Finding>, usize, Vec<BaselineEntry>) {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    let mut baselined = 0usize;
    for f in findings {
        // Mark every matching entry used: several findings can share a
        // location (two D8 modes on one read site), and a repeated
        // entry must not surface as stale.
        let mut matched = false;
        for (i, e) in entries.iter().enumerate() {
            if e.matches(&f) {
                used[i] = true;
                matched = true;
            }
        }
        if matched {
            baselined += 1;
        } else {
            kept.push(f);
        }
    }
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|&(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    (kept, baselined, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, file: &str, line: u32) -> Finding {
        Finding::new(rule, file, line, String::new())
    }

    #[test]
    fn parses_entries_comments_and_garbage() {
        let (entries, bad) = parse("# comment\n\nD4 crates/sim/src/runner.rs:473\nnot an entry\n");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, RuleId::D4Unwrap);
        assert_eq!(entries[0].file, "crates/sim/src/runner.rs");
        assert_eq!(entries[0].line, 473);
        assert_eq!(bad, vec!["not an entry".to_string()]);
    }

    #[test]
    fn apply_partitions_and_reports_stale() {
        let (entries, _) = parse("D4 a.rs:1\nD2 gone.rs:9\n");
        let findings = vec![
            finding(RuleId::D4Unwrap, "a.rs", 1),
            finding(RuleId::D4Unwrap, "b.rs", 2),
        ];
        let (kept, baselined, stale) = apply(findings, &entries);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].file, "b.rs");
        assert_eq!(baselined, 1);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "gone.rs");
    }

    #[test]
    fn duplicate_entries_are_not_stale() {
        // Two findings on one location (D8 can report a read site in
        // two modes) round-trip through a baseline that repeats the
        // entry — neither copy may surface as stale.
        let (entries, _) = parse("D8 a.rs:1\nD8 a.rs:1\n");
        let findings = vec![
            finding(RuleId::D8EnvRegistry, "a.rs", 1),
            finding(RuleId::D8EnvRegistry, "a.rs", 1),
        ];
        let (kept, baselined, stale) = apply(findings, &entries);
        assert!(kept.is_empty());
        assert_eq!(baselined, 2);
        assert!(stale.is_empty());
    }

    #[test]
    fn slug_rule_names_accepted() {
        let (entries, bad) = parse("unwrap x.rs:3\n");
        assert!(bad.is_empty());
        assert_eq!(entries[0].rule, RuleId::D4Unwrap);
    }
}
