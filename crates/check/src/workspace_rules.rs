//! The workspace-rule pass: cross-file determinism rules D7–D9 over
//! the [`WorkspaceModel`] assembled by the collection pass.
//!
//! * **D7 salt discipline** — declared `*_SALT`/`*_TAG` values must be
//!   pairwise distinct workspace-wide (two RNG streams salted with the
//!   same constant silently correlate), and no raw hex literal may be
//!   mixed into a seed inline outside tests.
//! * **D8 env registry** — every `TACO_*` read goes through the
//!   accessor module ([`ENV_FILE`]), every name read is declared in
//!   the registry exactly once, and the registry round-trips with the
//!   user docs: registered-but-undocumented and
//!   documented-but-unregistered names are both findings.
//! * **D9 span contract** — span-name string literals in `sim`/`bench`
//!   runtime code must match a contract constant in [`PHASE_FILE`]
//!   (use the constant, not the literal), and a contract constant
//!   nothing references is dangling.
//!
//! Rules that need an anchor file (the registry, the phase contract,
//! the docs) only run when it was scanned, so pointing the checker at
//! a partial tree (the seeded fixtures) diagnoses exactly what that
//! tree contains.

use crate::model::{WorkspaceModel, DOC_FILES, ENV_FILE, PHASE_FILE};
use crate::rules::{Finding, RuleId};
use std::collections::{BTreeMap, BTreeSet};

/// Runs D7–D9 and appends the findings.
pub fn check(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    d7_salt_discipline(model, out);
    d8_env_registry(model, out);
    d9_span_contract(model, out);
}

fn d7_salt_discipline(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    // Pairwise-distinct values: group by value, flag every declaration
    // after the first, anchored to the first.
    let mut by_value: BTreeMap<u128, Vec<usize>> = BTreeMap::new();
    for (i, s) in model.salts.iter().enumerate() {
        by_value.entry(s.value).or_default().push(i);
    }
    for (value, decls) in &by_value {
        let first = &model.salts[decls[0]];
        for &i in &decls[1..] {
            let dup = &model.salts[i];
            out.push(
                Finding::new(
                    RuleId::D7SaltDiscipline,
                    dup.loc.file.clone(),
                    dup.loc.line,
                    format!(
                        "salt `{}` duplicates the value {value:#x} of `{}` ({}:{}): streams salted with the same constant correlate — pick a distinct value",
                        dup.name, first.name, first.loc.file, first.loc.line
                    ),
                )
                .with_related(first.loc.file.clone(), first.loc.line),
            );
        }
    }
    for raw in &model.raw_seed_hex {
        out.push(Finding::new(
            RuleId::D7SaltDiscipline,
            raw.loc.file.clone(),
            raw.loc.line,
            format!(
                "raw hex literal `{}` mixed into a seed (`{}`): hoist it to a documented `*_SALT`/`*_TAG` constant so the salt table stays auditable",
                raw.text, raw.context
            ),
        ));
    }
}

fn d8_env_registry(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    if !model.has_env_file {
        return; // partial tree without the registry: nothing to check against
    }
    let registry: BTreeMap<&str, &crate::model::EnvName> = model
        .env_decls
        .iter()
        .map(|d| (d.name.as_str(), d))
        .collect();

    // Exactly-once declaration.
    let mut seen: BTreeMap<&str, &crate::model::EnvName> = BTreeMap::new();
    for d in &model.env_decls {
        if let Some(first) = seen.get(d.name.as_str()) {
            out.push(
                Finding::new(
                    RuleId::D8EnvRegistry,
                    d.loc.file.clone(),
                    d.loc.line,
                    format!(
                        "`{}` is declared twice in the env registry (first at {}:{})",
                        d.name, first.loc.file, first.loc.line
                    ),
                )
                .with_related(first.loc.file.clone(), first.loc.line),
            );
        } else {
            seen.insert(&d.name, d);
        }
    }

    for read in &model.env_reads {
        // All reads flow through the accessor module.
        if read.loc.file != ENV_FILE {
            out.push(
                Finding::new(
                    RuleId::D8EnvRegistry,
                    read.loc.file.clone(),
                    read.loc.line,
                    format!(
                        "raw read of `{}`: go through the typed accessors in `taco_trace::env` so every knob stays declared, documented, and parsed one way",
                        read.name
                    ),
                )
                .with_related(ENV_FILE, 1),
            );
        }
        // Every name read exists in the registry (typo guard).
        if !registry.contains_key(read.name.as_str()) {
            out.push(
                Finding::new(
                    RuleId::D8EnvRegistry,
                    read.loc.file.clone(),
                    read.loc.line,
                    format!(
                        "`{}` is not declared in the env registry ({ENV_FILE}): add an `EnvVar` entry or fix the name",
                        read.name
                    ),
                )
                .with_related(ENV_FILE, 1),
            );
        }
    }

    // Docs ↔ registry round-trip.
    if model.has_docs {
        let documented: BTreeSet<&str> =
            model.doc_mentions.iter().map(|m| m.name.as_str()).collect();
        for d in &model.env_decls {
            if !documented.contains(d.name.as_str()) {
                out.push(Finding::new(
                    RuleId::D8EnvRegistry,
                    d.loc.file.clone(),
                    d.loc.line,
                    format!(
                        "`{}` is registered but never mentioned in {}: document the knob where users will find it",
                        d.name,
                        DOC_FILES.join("/")
                    ),
                ));
            }
        }
        let mut reported: BTreeSet<&str> = BTreeSet::new();
        for m in &model.doc_mentions {
            if !registry.contains_key(m.name.as_str()) && reported.insert(&m.name) {
                out.push(
                    Finding::new(
                        RuleId::D8EnvRegistry,
                        m.loc.file.clone(),
                        m.loc.line,
                        format!(
                            "docs mention `{}` but the env registry ({ENV_FILE}) does not declare it: a typo, or a knob that no longer exists",
                            m.name
                        ),
                    )
                    .with_related(ENV_FILE, 1),
                );
            }
        }
    }
}

fn d9_span_contract(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    if !model.has_phase_file {
        return;
    }
    let contract: BTreeSet<&str> = model
        .phase_consts
        .iter()
        .map(|c| c.value.as_str())
        .collect();
    for u in &model.span_uses {
        if !contract.contains(u.name.as_str()) {
            out.push(
                Finding::new(
                    RuleId::D9SpanContract,
                    u.loc.file.clone(),
                    u.loc.line,
                    format!(
                        "span name `\"{}\"` is not in the sim::phase contract ({PHASE_FILE}): register it there and use the constant, so the telemetry schema has one source of truth",
                        u.name
                    ),
                )
                .with_related(PHASE_FILE, 1),
            );
        } else {
            // Registered, but spelled as a literal: use the constant.
            out.push(
                Finding::new(
                    RuleId::D9SpanContract,
                    u.loc.file.clone(),
                    u.loc.line,
                    format!(
                        "span name `\"{}\"` duplicates a sim::phase contract constant as a string literal: use the constant so renames stay atomic",
                        u.name
                    ),
                )
                .with_related(PHASE_FILE, 1),
            );
        }
    }
    // Dangling contract constants: exported but referenced nowhere.
    let refs: BTreeSet<&str> = model.phase_refs.iter().map(String::as_str).collect();
    for c in &model.phase_consts {
        if !refs.contains(c.name.as_str()) {
            out.push(Finding::new(
                RuleId::D9SpanContract,
                c.loc.file.clone(),
                c.loc.line,
                format!(
                    "contract constant `{}` (\"{}\") has no use site in sim/bench: dead telemetry schema — wire it up or remove it",
                    c.name, c.value
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EnvName, Loc, PhaseConst, RawSeedHex, SaltDecl, SpanUse};

    fn loc(file: &str, line: u32) -> Loc {
        Loc {
            file: file.to_string(),
            line,
        }
    }

    fn rules_of(out: &[Finding]) -> Vec<RuleId> {
        out.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d7_flags_duplicate_values_with_both_anchors() {
        let model = WorkspaceModel {
            salts: vec![
                SaltDecl {
                    name: "A_SALT".into(),
                    value: 0xFA17,
                    loc: loc("crates/sim/src/a.rs", 3),
                },
                SaltDecl {
                    name: "B_SALT".into(),
                    value: 0xFA17,
                    loc: loc("crates/bench/src/b.rs", 9),
                },
                SaltDecl {
                    name: "C_SALT".into(),
                    value: 0x0DE1,
                    loc: loc("crates/bench/src/b.rs", 11),
                },
            ],
            ..WorkspaceModel::default()
        };
        let mut out = Vec::new();
        check(&model, &mut out);
        assert_eq!(rules_of(&out), vec![RuleId::D7SaltDiscipline]);
        assert_eq!(out[0].file, "crates/bench/src/b.rs");
        assert_eq!(out[0].line, 9);
        assert_eq!(out[0].related, Some(("crates/sim/src/a.rs".to_string(), 3)));
    }

    #[test]
    fn d7_flags_raw_hex() {
        let model = WorkspaceModel {
            raw_seed_hex: vec![RawSeedHex {
                text: "0x9A97".into(),
                context: "^",
                loc: loc("crates/sim/src/runner.rs", 456),
            }],
            ..WorkspaceModel::default()
        };
        let mut out = Vec::new();
        check(&model, &mut out);
        assert_eq!(rules_of(&out), vec![RuleId::D7SaltDiscipline]);
        assert!(out[0].message.contains("0x9A97"));
    }

    #[test]
    fn d8_needs_the_registry_file() {
        let mut model = WorkspaceModel {
            env_reads: vec![EnvName {
                name: "TACO_TYPO".into(),
                loc: loc("crates/bench/src/lib.rs", 5),
            }],
            ..WorkspaceModel::default()
        };
        let mut out = Vec::new();
        check(&model, &mut out);
        assert!(out.is_empty(), "without the registry D8 stays silent");

        model.has_env_file = true;
        model.env_decls.push(EnvName {
            name: "TACO_TRACE".into(),
            loc: loc(ENV_FILE, 20),
        });
        let mut out = Vec::new();
        check(&model, &mut out);
        // Raw read outside the accessor + unregistered name.
        assert_eq!(
            rules_of(&out),
            vec![RuleId::D8EnvRegistry, RuleId::D8EnvRegistry]
        );
        assert!(out.iter().any(|f| f.message.contains("raw read")));
        assert!(out.iter().any(|f| f.message.contains("not declared")));
    }

    #[test]
    fn d8_docs_roundtrip_both_directions() {
        let model = WorkspaceModel {
            has_env_file: true,
            has_docs: true,
            env_decls: vec![
                EnvName {
                    name: "TACO_TRACE".into(),
                    loc: loc(ENV_FILE, 20),
                },
                EnvName {
                    name: "TACO_STALE".into(),
                    loc: loc(ENV_FILE, 24),
                },
            ],
            doc_mentions: vec![
                EnvName {
                    name: "TACO_TRACE".into(),
                    loc: loc("README.md", 100),
                },
                EnvName {
                    name: "TACO_DOCONLY".into(),
                    loc: loc("README.md", 101),
                },
            ],
            ..WorkspaceModel::default()
        };
        let mut out = Vec::new();
        check(&model, &mut out);
        assert!(out
            .iter()
            .any(|f| f.message.contains("TACO_STALE") && f.message.contains("never mentioned")));
        assert!(out
            .iter()
            .any(|f| f.message.contains("TACO_DOCONLY") && f.message.contains("docs mention")));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn d9_literals_and_dangling_consts() {
        let model = WorkspaceModel {
            has_phase_file: true,
            phase_consts: vec![
                PhaseConst {
                    name: "ROUND".into(),
                    value: "sim.round".into(),
                    loc: loc(PHASE_FILE, 12),
                },
                PhaseConst {
                    name: "GHOST".into(),
                    value: "sim.ghost".into(),
                    loc: loc(PHASE_FILE, 30),
                },
            ],
            phase_refs: vec!["ROUND".into()],
            span_uses: vec![
                SpanUse {
                    name: "sim.round".into(),
                    loc: loc("crates/sim/src/runner.rs", 355),
                },
                SpanUse {
                    name: "sim.adhoc".into(),
                    loc: loc("crates/sim/src/cost.rs", 123),
                },
            ],
            ..WorkspaceModel::default()
        };
        let mut out = Vec::new();
        check(&model, &mut out);
        assert_eq!(out.len(), 3);
        // Literal that shadows a contract const.
        assert!(out.iter().any(|f| f
            .message
            .contains("duplicates a sim::phase contract constant")));
        // Literal not in the contract at all.
        assert!(out.iter().any(|f| f
            .message
            .contains("`\"sim.adhoc\"` is not in the sim::phase contract")));
        // Dangling const.
        assert!(out
            .iter()
            .any(|f| f.message.contains("`GHOST`") && f.message.contains("no use site")));
    }
}
