//! Machine-readable JSON report, hand-serialized (the crate is
//! zero-dependency by design). The schema is consumed by the CI
//! artifact step and any dashboard that wants to chart burn-down.

use crate::baseline::BaselineEntry;
use crate::rules::Finding;

/// The outcome of one checker run over a tree.
#[derive(Debug)]
pub struct Report {
    /// Root the scan ran over (workspace-relative paths hang off it).
    pub root: String,
    /// Unsuppressed, non-baselined findings. Non-empty ⇒ exit 1.
    pub findings: Vec<Finding>,
    /// Findings silenced by inline pragmas.
    pub suppressed_by_pragma: usize,
    /// Findings silenced by the baseline file.
    pub suppressed_by_baseline: usize,
    /// Baseline entries that matched nothing (candidates for removal).
    pub stale_baseline: Vec<BaselineEntry>,
    /// Baseline lines that failed to parse.
    pub malformed_baseline: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Files that could not be read (`path: error`). Non-empty ⇒ the
    /// scan was incomplete ⇒ exit 2, never a silent pass.
    pub unreadable: Vec<String>,
}

impl Report {
    /// True when the run should exit non-zero.
    pub fn failed(&self) -> bool {
        !self.findings.is_empty()
    }

    /// True when the scan itself was incomplete (unreadable files):
    /// the CLI exits 2, distinct from "findings exist".
    pub fn incomplete(&self) -> bool {
        !self.unreadable.is_empty()
    }

    /// Renders the JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str("  \"version\": 2,\n");
        s.push_str(&format!("  \"root\": {},\n", json_str(&self.root)));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"suppressed_by_pragma\": {},\n",
            self.suppressed_by_pragma
        ));
        s.push_str(&format!(
            "  \"suppressed_by_baseline\": {},\n",
            self.suppressed_by_baseline
        ));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let related = match &f.related {
                Some((file, line)) => format!(
                    ", \"related\": {{\"file\": {}, \"line\": {line}}}",
                    json_str(file)
                ),
                None => String::new(),
            };
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"slug\": {}, \"file\": {}, \"line\": {}, \"message\": {}{related}}}",
                json_str(f.rule.id()),
                json_str(f.rule.slug()),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str("  \"stale_baseline\": [");
        for (i, e) in self.stale_baseline.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(&e.render()));
        }
        s.push_str("],\n");
        s.push_str("  \"malformed_baseline\": [");
        for (i, e) in self.malformed_baseline.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(e));
        }
        s.push_str("],\n");
        s.push_str("  \"unreadable\": [");
        for (i, e) in self.unreadable.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(e));
        }
        s.push_str("]\n}\n");
        s
    }

    /// Renders the human diagnostics, one `file:line: [Dx] message`
    /// per finding, plus baseline hygiene notes.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            s.push_str(&format!(
                "{}:{}: [{}/{}] {}\n",
                f.file,
                f.line,
                f.rule.id(),
                f.rule.slug(),
                f.message
            ));
            if let Some((file, line)) = &f.related {
                s.push_str(&format!("    related: {file}:{line}\n"));
            }
        }
        for e in &self.unreadable {
            s.push_str(&format!("error: could not read {e}\n"));
        }
        for e in &self.stale_baseline {
            s.push_str(&format!(
                "note: stale baseline entry `{}` matches nothing — remove it\n",
                e.render()
            ));
        }
        for e in &self.malformed_baseline {
            s.push_str(&format!("note: unparseable baseline line `{e}`\n"));
        }
        s.push_str(&format!(
            "taco-check: {} finding(s), {} pragma-suppressed, {} baselined, {} file(s) scanned\n",
            self.findings.len(),
            self.suppressed_by_pragma,
            self.suppressed_by_baseline,
            self.files_scanned
        ));
        s
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    #[test]
    fn json_escapes_and_shapes() {
        let report = Report {
            root: "/tmp/ws".to_string(),
            findings: vec![Finding::new(
                RuleId::D2WallClock,
                "crates/sim/src/x.rs",
                7,
                "a \"quoted\"\nmessage".to_string(),
            )],
            suppressed_by_pragma: 2,
            suppressed_by_baseline: 1,
            stale_baseline: vec![],
            malformed_baseline: vec![],
            files_scanned: 3,
            unreadable: vec![],
        };
        let json = report.to_json();
        assert!(json.contains("\"rule\": \"D2\""));
        assert!(json.contains("\\\"quoted\\\"\\nmessage"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"unreadable\": []"));
        assert!(!json.contains("\"related\""));
        assert!(report.failed());
        assert!(!report.incomplete());
    }

    #[test]
    fn related_and_unreadable_render_in_both_formats() {
        let report = Report {
            root: "/tmp/ws".to_string(),
            findings: vec![Finding::new(
                RuleId::D7SaltDiscipline,
                "crates/bench/src/lib.rs",
                40,
                "duplicate salt".to_string(),
            )
            .with_related("crates/sim/src/runner.rs", 23)],
            suppressed_by_pragma: 0,
            suppressed_by_baseline: 0,
            stale_baseline: vec![],
            malformed_baseline: vec![],
            files_scanned: 2,
            unreadable: vec!["crates/sim/src/bad.rs: stream did not contain valid UTF-8".into()],
        };
        let json = report.to_json();
        assert!(
            json.contains("\"related\": {\"file\": \"crates/sim/src/runner.rs\", \"line\": 23}")
        );
        assert!(json.contains("\"unreadable\": [\"crates/sim/src/bad.rs"));
        let text = report.render_text();
        assert!(text.contains("related: crates/sim/src/runner.rs:23"));
        assert!(text.contains("error: could not read crates/sim/src/bad.rs"));
        assert!(report.incomplete());
    }
}
