//! The collection pass: builds the cross-file [`WorkspaceModel`] that
//! the workspace rules (D7–D9, [`crate::workspace_rules`]) run over.
//!
//! While [`crate::run`] walks the tree for the per-file rules, it
//! feeds every file's token index through [`ModelBuilder::add_file`],
//! which extracts the determinism-relevant facts:
//!
//! * declared `*_SALT`/`*_TAG` constants and their numeric values
//!   (salt discipline, D7),
//! * raw hex literals mixed into seeds inline (`seed ^ 0x…`,
//!   `rng.split(0x…)`, `seed_from_u64(0x…)`, `seed_tag: 0x…`) (D7),
//! * `env::var("TACO_*")` / `var_os` read sites and the entries of the
//!   central registry in [`ENV_FILE`] (D8),
//! * span-name string literals at span-creation sites in `sim`/`bench`
//!   and the contract constants exported by [`PHASE_FILE`] (D9), plus
//!   `phase::NAME` references so dangling constants can be detected.
//!
//! Doc files (README/EXPERIMENTS) are scanned separately via
//! [`ModelBuilder::add_doc`] for `TACO_*` mentions, so the registry
//! can be cross-checked against what users are told exists.
//!
//! Partial trees (the seeded fixture workspaces) are handled by
//! presence flags: rules needing the registry, the phase contract, or
//! the docs only run when the respective anchor file was scanned.

use crate::lexer::TokenKind;
use crate::walker::{FileCtx, FileIndex, FileKind};

/// The central env registry + accessor module: the only file allowed
/// to read `TACO_*` variables, and the place their names are declared.
pub const ENV_FILE: &str = "crates/trace/src/env.rs";
/// The span-name contract file exporting the phase constants.
pub const PHASE_FILE: &str = "crates/sim/src/phase.rs";
/// Doc files cross-checked against the env registry, relative to the
/// workspace root.
pub const DOC_FILES: [&str; 2] = ["README.md", "EXPERIMENTS.md"];

/// A code location: workspace-relative path + 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loc {
    pub file: String,
    pub line: u32,
}

/// A declared `*_SALT`/`*_TAG` constant with its parsed value.
#[derive(Debug, Clone)]
pub struct SaltDecl {
    pub name: String,
    pub value: u128,
    pub loc: Loc,
}

/// A raw hex literal mixed into a seed outside any named constant.
#[derive(Debug, Clone)]
pub struct RawSeedHex {
    /// The literal as written (`0x9A97`).
    pub text: String,
    /// What it was doing (`^`, `split`, `seed_from_u64`, `seed_tag:`).
    pub context: &'static str,
    pub loc: Loc,
}

/// An env read site `var("TACO_X")` / `var_os("TACO_X")`, or a
/// registry declaration `name: "TACO_X"` inside [`ENV_FILE`], or a
/// `TACO_X` mention in a doc file.
#[derive(Debug, Clone)]
pub struct EnvName {
    pub name: String,
    pub loc: Loc,
}

/// A span-name string literal at a span-creation site.
#[derive(Debug, Clone)]
pub struct SpanUse {
    pub name: String,
    pub loc: Loc,
}

/// A `const NAME: &str = "…"` contract constant in [`PHASE_FILE`].
#[derive(Debug, Clone)]
pub struct PhaseConst {
    pub name: String,
    pub value: String,
    pub loc: Loc,
}

/// Everything the workspace rules need, collected in one pass.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    pub salts: Vec<SaltDecl>,
    pub raw_seed_hex: Vec<RawSeedHex>,
    /// Read sites anywhere in the tree (including [`ENV_FILE`] itself;
    /// the rule exempts that file).
    pub env_reads: Vec<EnvName>,
    /// Registry declarations inside [`ENV_FILE`], in order.
    pub env_decls: Vec<EnvName>,
    /// `TACO_*` mentions in [`DOC_FILES`].
    pub doc_mentions: Vec<EnvName>,
    /// Span-name literals at span-creation sites in `sim`/`bench`.
    pub span_uses: Vec<SpanUse>,
    /// Contract constants exported by [`PHASE_FILE`].
    pub phase_consts: Vec<PhaseConst>,
    /// Names referenced as `phase::NAME` outside [`PHASE_FILE`].
    pub phase_refs: Vec<String>,
    /// Anchor-file presence flags gating the respective rules.
    pub has_env_file: bool,
    pub has_phase_file: bool,
    pub has_docs: bool,
}

/// Accumulates the model file by file.
#[derive(Debug, Default)]
pub struct ModelBuilder {
    model: WorkspaceModel,
}

impl ModelBuilder {
    pub fn new() -> ModelBuilder {
        ModelBuilder::default()
    }

    /// Finishes the pass and returns the model.
    pub fn finish(self) -> WorkspaceModel {
        self.model
    }

    /// Collects one `.rs` file's facts from its token index.
    pub fn add_file(&mut self, ctx: &FileCtx, idx: &FileIndex) {
        if ctx.rel_path == ENV_FILE {
            self.model.has_env_file = true;
            self.collect_env_decls(ctx, idx);
        }
        if ctx.rel_path == PHASE_FILE {
            self.model.has_phase_file = true;
            self.collect_phase_consts(ctx, idx);
        }
        self.collect_env_reads(ctx, idx);
        if runtime_file(ctx) {
            self.collect_salts(ctx, idx);
            self.collect_raw_seed_hex(ctx, idx);
        }
        if matches!(ctx.crate_name.as_str(), "sim" | "bench") {
            if ctx.rel_path != PHASE_FILE {
                self.collect_phase_refs(idx);
            }
            if runtime_file(ctx) {
                self.collect_span_uses(ctx, idx);
            }
        }
    }

    /// Scans a doc file's text for `TACO_*` mentions.
    pub fn add_doc(&mut self, rel_path: &str, text: &str) {
        self.model.has_docs = true;
        for (lineno, line) in text.lines().enumerate() {
            for name in taco_names_in(line) {
                self.model.doc_mentions.push(EnvName {
                    name,
                    loc: Loc {
                        file: rel_path.to_string(),
                        line: lineno as u32 + 1,
                    },
                });
            }
        }
    }

    /// `const NAME_SALT: u64 = 0x…;` — a named salt/tag declaration.
    fn collect_salts(&mut self, ctx: &FileCtx, idx: &FileIndex) {
        let code = &idx.code;
        for i in 0..code.len() {
            let TokenKind::Ident(kw) = &code[i].kind else {
                continue;
            };
            if kw != "const" {
                continue;
            }
            let Some(TokenKind::Ident(name)) = code.get(i + 1).map(|t| &t.kind) else {
                continue;
            };
            if !(name.ends_with("_SALT") || name.ends_with("_TAG")) {
                continue;
            }
            if idx.in_test_region(code[i].line) {
                continue;
            }
            // Value: the first numeric literal within the declaration
            // (`const N: u64 = 0x1234;` — type tokens never lex as
            // numbers, so the first NumLit is the value).
            let value = code[i + 2..].iter().take(8).find_map(|t| match &t.kind {
                TokenKind::NumLit(text) => parse_int(text),
                _ => None,
            });
            if let Some(value) = value {
                self.model.salts.push(SaltDecl {
                    name: name.clone(),
                    value,
                    loc: Loc {
                        file: ctx.rel_path.clone(),
                        line: code[i + 1].line,
                    },
                });
            }
        }
    }

    /// Hex literals mixed into seeds inline: `^ 0x…`, `0x… ^`,
    /// `split(0x…`, `seed_from_u64(0x…`, `seed_tag: 0x…`.
    fn collect_raw_seed_hex(&mut self, ctx: &FileCtx, idx: &FileIndex) {
        let code = &idx.code;
        let mut push = |text: &str, context: &'static str, line: u32| {
            if !idx.in_test_region(line) {
                self.model.raw_seed_hex.push(RawSeedHex {
                    text: text.to_string(),
                    context,
                    loc: Loc {
                        file: ctx.rel_path.clone(),
                        line,
                    },
                });
            }
        };
        for i in 0..code.len() {
            match &code[i].kind {
                // seed ^ 0xHEX  /  0xHEX ^ seed
                TokenKind::Punct('^') => {
                    if let Some(TokenKind::NumLit(t)) = code.get(i + 1).map(|t| &t.kind) {
                        if is_hex(t) {
                            push(t, "^", code[i + 1].line);
                        }
                    }
                    if i > 0 {
                        if let TokenKind::NumLit(t) = &code[i - 1].kind {
                            if is_hex(t) {
                                push(t, "^", code[i - 1].line);
                            }
                        }
                    }
                }
                // rng.split(0xHEX…)  /  Prng::seed_from_u64(0xHEX…)
                TokenKind::Ident(name) if name == "split" || name == "seed_from_u64" => {
                    if matches!(code.get(i + 1), Some(t) if t.kind == TokenKind::Punct('(')) {
                        if let Some(TokenKind::NumLit(t)) = code.get(i + 2).map(|t| &t.kind) {
                            if is_hex(t) {
                                let ctx_name: &'static str = if name == "split" {
                                    "split"
                                } else {
                                    "seed_from_u64"
                                };
                                push(t, ctx_name, code[i + 2].line);
                            }
                        }
                    }
                }
                // seed_tag: 0xHEX (struct literal field)
                TokenKind::Ident(name) if name == "seed_tag" => {
                    if matches!(code.get(i + 1), Some(t) if t.kind == TokenKind::Punct(':')) {
                        if let Some(TokenKind::NumLit(t)) = code.get(i + 2).map(|t| &t.kind) {
                            if is_hex(t) {
                                push(t, "seed_tag:", code[i + 2].line);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// `var("TACO_X")` / `var_os("TACO_X")` read sites, anywhere.
    fn collect_env_reads(&mut self, ctx: &FileCtx, idx: &FileIndex) {
        let code = &idx.code;
        for i in 0..code.len() {
            let TokenKind::Ident(name) = &code[i].kind else {
                continue;
            };
            if name != "var" && name != "var_os" {
                continue;
            }
            if !matches!(code.get(i + 1), Some(t) if t.kind == TokenKind::Punct('(')) {
                continue;
            }
            let Some(TokenKind::StrLit(s)) = code.get(i + 2).map(|t| &t.kind) else {
                continue;
            };
            if is_taco_name(s) {
                self.model.env_reads.push(EnvName {
                    name: s.clone(),
                    loc: Loc {
                        file: ctx.rel_path.clone(),
                        line: code[i + 2].line,
                    },
                });
            }
        }
    }

    /// `name: "TACO_X"` registry entries inside [`ENV_FILE`].
    fn collect_env_decls(&mut self, ctx: &FileCtx, idx: &FileIndex) {
        let code = &idx.code;
        for i in 0..code.len() {
            let TokenKind::Ident(field) = &code[i].kind else {
                continue;
            };
            if field != "name" {
                continue;
            }
            if !matches!(code.get(i + 1), Some(t) if t.kind == TokenKind::Punct(':')) {
                continue;
            }
            let Some(TokenKind::StrLit(s)) = code.get(i + 2).map(|t| &t.kind) else {
                continue;
            };
            if is_taco_name(s) && !idx.in_test_region(code[i].line) {
                self.model.env_decls.push(EnvName {
                    name: s.clone(),
                    loc: Loc {
                        file: ctx.rel_path.clone(),
                        line: code[i + 2].line,
                    },
                });
            }
        }
    }

    /// Span-creation sites whose name argument is a string literal:
    /// `span!("…")`, `quiet_span!("…")`, `Span::quiet("…")`,
    /// `Span::new("…")`.
    fn collect_span_uses(&mut self, ctx: &FileCtx, idx: &FileIndex) {
        let code = &idx.code;
        let mut sites: Vec<(usize, u32)> = Vec::new(); // index of the StrLit token
        for i in 0..code.len() {
            match &code[i].kind {
                // span!("…") / quiet_span!("…")
                TokenKind::Ident(name)
                    if (name == "span" || name == "quiet_span")
                        && matches!(code.get(i + 1), Some(t) if t.kind == TokenKind::Punct('!'))
                        && matches!(code.get(i + 2), Some(t) if t.kind == TokenKind::Punct('(')) =>
                {
                    sites.push((i + 3, code[i].line));
                }
                // Span::quiet("…") / Span::new("…")
                TokenKind::Ident(name)
                    if name == "Span"
                        && matches!(code.get(i + 1), Some(t) if t.kind == TokenKind::Punct(':'))
                        && matches!(code.get(i + 2), Some(t) if t.kind == TokenKind::Punct(':'))
                        && matches!(
                            code.get(i + 3),
                            Some(t) if matches!(&t.kind, TokenKind::Ident(m) if m == "quiet" || m == "new")
                        )
                        && matches!(code.get(i + 4), Some(t) if t.kind == TokenKind::Punct('(')) =>
                {
                    sites.push((i + 5, code[i].line));
                }
                _ => {}
            }
        }
        for (lit_idx, line) in sites {
            if idx.in_test_region(line) {
                continue;
            }
            if let Some(TokenKind::StrLit(s)) = code.get(lit_idx).map(|t| &t.kind) {
                self.model.span_uses.push(SpanUse {
                    name: s.clone(),
                    loc: Loc {
                        file: ctx.rel_path.clone(),
                        line: code[lit_idx].line,
                    },
                });
            }
        }
    }

    /// `const NAME: &str = "…";` inside [`PHASE_FILE`].
    fn collect_phase_consts(&mut self, ctx: &FileCtx, idx: &FileIndex) {
        let code = &idx.code;
        for i in 0..code.len() {
            let TokenKind::Ident(kw) = &code[i].kind else {
                continue;
            };
            if kw != "const" || idx.in_test_region(code[i].line) {
                continue;
            }
            let Some(TokenKind::Ident(name)) = code.get(i + 1).map(|t| &t.kind) else {
                continue;
            };
            // The value: the first string literal within the next few
            // tokens (`const ROUND: &str = "sim.round";`). Array
            // constants like `ALL` hit an `[` first and have no
            // adjacent literal, so they are skipped by the window.
            let value = code[i + 2..].iter().take(6).find_map(|t| match &t.kind {
                TokenKind::StrLit(s) => Some((s.clone(), t.line)),
                TokenKind::Punct('[') => None,
                _ => None,
            });
            if let Some((value, line)) = value {
                self.model.phase_consts.push(PhaseConst {
                    name: name.clone(),
                    value,
                    loc: Loc {
                        file: ctx.rel_path.clone(),
                        line,
                    },
                });
            }
        }
    }

    /// `phase::NAME` references (any path prefix) outside the contract
    /// file — these count as use sites for dangling detection.
    fn collect_phase_refs(&mut self, idx: &FileIndex) {
        let code = &idx.code;
        for i in 0..code.len() {
            let TokenKind::Ident(seg) = &code[i].kind else {
                continue;
            };
            if seg != "phase" {
                continue;
            }
            if matches!(code.get(i + 1), Some(t) if t.kind == TokenKind::Punct(':'))
                && matches!(code.get(i + 2), Some(t) if t.kind == TokenKind::Punct(':'))
            {
                if let Some(TokenKind::Ident(name)) = code.get(i + 3).map(|t| &t.kind) {
                    self.model.phase_refs.push(name.clone());
                }
            }
        }
    }
}

/// Files whose runtime behaviour the workspace rules govern.
fn runtime_file(ctx: &FileCtx) -> bool {
    matches!(ctx.kind, FileKind::Lib | FileKind::Bin | FileKind::Example)
}

/// Is this string a concrete `TACO_*` name (non-empty tail, so the
/// glob `TACO_*` and the bare prefix never match)?
fn is_taco_name(s: &str) -> bool {
    s.strip_prefix("TACO_").is_some_and(|tail| {
        !tail.is_empty()
            && tail
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    })
}

/// Extracts every `TACO_[A-Z0-9_]+` token from a doc line.
fn taco_names_in(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while let Some(pos) = line[i..].find("TACO_") {
        let start = i + pos;
        // Must not continue a larger identifier (e.g. `MY_TACO_X`).
        if start > 0 {
            let prev = bytes[start - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                i = start + 5;
                continue;
            }
        }
        let tail = &line[start + 5..];
        let len = tail
            .chars()
            .take_while(|&c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
            .count();
        if len > 0 {
            out.push(
                line[start..start + 5 + len]
                    .trim_end_matches('_')
                    .to_string(),
            );
        }
        i = start + 5 + len;
    }
    out
}

/// Parses an integer literal as the lexer spelled it: `0x`/`0o`/`0b`
/// prefixes, `_` separators, and an alphabetic type suffix.
fn parse_int(text: &str) -> Option<u128> {
    let t = text.replace('_', "");
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(o) = t.strip_prefix("0o") {
        (o, 8)
    } else if let Some(b) = t.strip_prefix("0b") {
        (b, 2)
    } else {
        (t.as_str(), 10)
    };
    // Strip a type suffix (`u64`, `i32`, …): cut at the first char
    // that is not a digit of the radix.
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map_or(digits.len(), |(i, _)| i);
    if end == 0 {
        return None;
    }
    u128::from_str_radix(&digits[..end], radix).ok()
}

/// Is this numeric literal hex-spelled (`0x…`)? The raw-seed scan only
/// flags hex: decimal seeds (`seed_from_u64(42)`) are experiment
/// configuration, hex is the workspace's salt idiom.
fn is_hex(text: &str) -> bool {
    text.starts_with("0x") || text.starts_with("0X")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::walker::classify;

    fn collect(path: &str, src: &str) -> WorkspaceModel {
        let mut b = ModelBuilder::new();
        let ctx = classify(path);
        let idx = FileIndex::build(&lex(src));
        b.add_file(&ctx, &idx);
        b.finish()
    }

    #[test]
    fn salt_decls_are_collected_with_values() {
        let m = collect(
            "crates/sim/src/runner.rs",
            "const DRIFT_SALT: u64 = 0xD81F;\nconst MEAN_STREAM_TAG: u64 = 0xAD;\nconst OTHER: u64 = 7;\n",
        );
        assert_eq!(m.salts.len(), 2);
        assert_eq!(m.salts[0].name, "DRIFT_SALT");
        assert_eq!(m.salts[0].value, 0xD81F);
        assert_eq!(m.salts[1].value, 0xAD);
    }

    #[test]
    fn raw_seed_hex_patterns_fire_outside_tests_only() {
        let src = "fn f(seed: u64) {\n    let a = seed ^ 0x9A97;\n    let b = rng.split(0x7E);\n    let c = Prng::seed_from_u64(0xDA7A);\n}\n#[cfg(test)]\nmod tests {\n    fn t(seed: u64) { let _ = seed ^ 0xBEEF; }\n}\n";
        let m = collect("crates/sim/src/x.rs", src);
        let texts: Vec<&str> = m.raw_seed_hex.iter().map(|r| r.text.as_str()).collect();
        assert_eq!(texts, vec!["0x9A97", "0x7E", "0xDA7A"]);
    }

    #[test]
    fn decimal_literals_are_not_raw_salts() {
        let m = collect(
            "crates/bench/src/bin/x.rs",
            "fn f() { let r = Prng::seed_from_u64(42); let s = rng.split(3); }\n",
        );
        assert!(m.raw_seed_hex.is_empty());
    }

    #[test]
    fn env_reads_and_registry_decls() {
        let m = collect(
            "crates/bench/src/lib.rs",
            "fn f() { let v = std::env::var(\"TACO_SCALE\"); let w = std::env::var_os(\"TACO_BENCH_OUT\"); let x = std::env::var(\"HOME\"); }\n",
        );
        let names: Vec<&str> = m.env_reads.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["TACO_SCALE", "TACO_BENCH_OUT"]);
        let m = collect(
            ENV_FILE,
            "pub const REGISTRY: [EnvVar; 2] = [\n    EnvVar { name: \"TACO_TRACE\", doc: \"x\" },\n    EnvVar { name: \"TACO_SEEDS\", doc: \"y\" },\n];\n",
        );
        assert!(m.has_env_file);
        let names: Vec<&str> = m.env_decls.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["TACO_TRACE", "TACO_SEEDS"]);
    }

    #[test]
    fn span_sites_collect_literals_but_not_consts() {
        let src = "fn f() {\n    let a = trace::span!(\"client_step\", round = 1);\n    let b = trace::Span::quiet(crate::phase::LOCAL);\n    let c = taco_trace::Span::quiet(\"sim.adhoc\");\n}\n";
        let m = collect("crates/sim/src/x.rs", src);
        let names: Vec<&str> = m.span_uses.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["client_step", "sim.adhoc"]);
        // The const reference registers a phase use, not a literal.
        assert_eq!(m.phase_refs, vec!["LOCAL".to_string()]);
    }

    #[test]
    fn phase_consts_and_doc_mentions() {
        let m = collect(
            PHASE_FILE,
            "pub const ROUND: &str = \"sim.round\";\npub const ALL: [&str; 1] = [ROUND];\n",
        );
        assert!(m.has_phase_file);
        assert_eq!(m.phase_consts.len(), 1);
        assert_eq!(m.phase_consts[0].name, "ROUND");
        assert_eq!(m.phase_consts[0].value, "sim.round");

        let mut b = ModelBuilder::new();
        b.add_doc(
            "README.md",
            "Set `TACO_THREADS=4` (all TACO_* knobs; not MY_TACO_X).\n",
        );
        let m = b.finish();
        let names: Vec<&str> = m.doc_mentions.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["TACO_THREADS"]);
    }

    #[test]
    fn int_parsing_handles_prefixes_suffixes_separators() {
        assert_eq!(parse_int("0x9A97"), Some(0x9A97));
        assert_eq!(parse_int("0xDEAD_BEEF"), Some(0xDEAD_BEEF));
        assert_eq!(parse_int("0x11u64"), Some(0x11));
        assert_eq!(parse_int("42"), Some(42));
        assert_eq!(parse_int("0b101"), Some(5));
        assert_eq!(parse_int("0x"), None);
    }
}
