//! taco-check: the workspace invariant linter.
//!
//! TACO's evaluation depends on bit-identical trajectories for a fixed
//! seed at any `TACO_THREADS`. The golden-trajectory fixtures catch
//! drift *after* it happens; this crate enforces the source invariants
//! that prevent it, statically:
//!
//! | rule | slug            | invariant                                            |
//! |------|-----------------|------------------------------------------------------|
//! | D1   | thread-spawn    | threading only via `tensor::pool`                    |
//! | D2   | wall-clock      | no `Instant::now`/`SystemTime::now` outside trace/bench |
//! | D3   | hash-iteration  | no `HashMap`/`HashSet` in core/sim/nn library code   |
//! | D4   | unwrap          | no `.unwrap()`/`.expect()` in core/sim/nn/data library code |
//! | D5   | safety-comment  | every `unsafe` carries a `// SAFETY:` justification  |
//! | D6   | float-reduction | no ad-hoc `.sum()`/`.fold()` in core aggregation     |
//! | D7   | salt-discipline | named seed salts, pairwise-distinct workspace-wide   |
//! | D8   | env-registry    | `TACO_*` reads via `taco_trace::env`, declared + documented |
//! | D9   | span-contract   | span names resolve to the `sim::phase` contract      |
//!
//! D1–D6 are per-file lexical rules; D7–D9 are *cross-file* rules: a
//! collection pass ([`model`]) walks every file building a workspace
//! model (salt constants with values, env read sites and the registry,
//! span-name literals and the phase contract), then the workspace pass
//! ([`workspace_rules`]) checks the model's global invariants. Both
//! passes share one tree walk.
//!
//! Escape hatches: an inline `// taco-check: allow(rule, reason)`
//! pragma on the finding's line (or the line above) — for a cross-file
//! finding, a pragma at either anchor suppresses it — and a committed
//! baseline file (`taco-check.baseline`) for legacy findings being
//! burned down (the baseline matches a finding's primary location).
//! Run as `cargo run -p taco-check` or via the workspace test;
//! diagnostics print `file:line` and a JSON report is available with
//! `--json`.
//!
//! The crate has zero dependencies and a hand-rolled lexer
//! ([`lexer`]), so it builds instantly anywhere the workspace builds.

pub mod baseline;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;
pub mod walker;
pub mod workspace_rules;

use report::Report;
use std::path::{Path, PathBuf};

/// Configuration for one checker run.
pub struct Config {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Baseline text (already read; empty string = empty baseline).
    pub baseline: String,
}

/// Directory names never descended into. `fixtures` keeps seeded-
/// violation test fixtures (and golden-trajectory JSON) out of the
/// real scan; the fixture tests point the checker *at* a fixture tree
/// instead.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "fixtures", "results", "node_modules"];

/// Scans every `.rs` file under `config.root` (plus the README/
/// EXPERIMENTS docs for the env cross-check) and returns the report.
///
/// Phase 1 walks each file once: the per-file rules run and the
/// collection pass feeds the workspace model. Phase 2 runs the
/// cross-file rules over the model, re-using each file's pragmas so
/// a workspace finding can be suppressed at either of its anchors.
/// Files that cannot be read (I/O error, non-UTF-8) are never
/// silently skipped: they are reported and fail the run.
pub fn run(config: &Config) -> Report {
    let mut files = Vec::new();
    collect_rs_files(&config.root, &mut files);
    files.sort();

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    let mut unreadable = Vec::new();
    let mut builder = model::ModelBuilder::new();
    let mut pragmas_by_file: Vec<(String, std::collections::BTreeMap<u32, Vec<rules::Pragma>>)> =
        Vec::new();

    for path in &files {
        let rel = rel_path(&config.root, path);
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(e) => {
                unreadable.push(format!("{rel}: {e}"));
                continue;
            }
        };
        let ctx = walker::classify(&rel);
        let idx = walker::FileIndex::build(&lexer::lex(&src));
        findings.extend(rules::check_file(&ctx, &idx, &mut suppressed));
        builder.add_file(&ctx, &idx);
        pragmas_by_file.push((rel, rules::collect_pragmas(&idx)));
    }

    for doc in model::DOC_FILES {
        if let Ok(text) = std::fs::read_to_string(config.root.join(doc)) {
            builder.add_doc(doc, &text);
        }
    }

    let ws_model = builder.finish();
    let mut ws_findings = Vec::new();
    workspace_rules::check(&ws_model, &mut ws_findings);
    let pragma_at = |file: &str, rule: rules::RuleId, line: u32| {
        pragmas_by_file
            .iter()
            .find(|(f, _)| f == file)
            .is_some_and(|(_, p)| rules::pragma_allows(p, rule, line))
    };
    ws_findings.retain(|f| {
        let hit = pragma_at(&f.file, f.rule, f.line)
            || f.related
                .as_ref()
                .is_some_and(|(file, line)| pragma_at(file, f.rule, *line));
        if hit {
            suppressed += 1;
        }
        !hit
    });
    findings.extend(ws_findings);

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let (entries, malformed) = baseline::parse(&config.baseline);
    let (kept, baselined, stale) = baseline::apply(findings, &entries);
    Report {
        root: config.root.display().to_string(),
        findings: kept,
        suppressed_by_pragma: suppressed,
        suppressed_by_baseline: baselined,
        stale_baseline: stale,
        malformed_baseline: malformed,
        files_scanned: files.len(),
        unreadable,
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The workspace root when running under cargo (`cargo run -p
/// taco-check`, or the workspace test): two levels up from this
/// crate's manifest.
pub fn workspace_root_from_manifest(manifest_dir: &str) -> PathBuf {
    Path::new(manifest_dir)
        .ancestors()
        .nth(2)
        .unwrap_or(Path::new("."))
        .to_path_buf()
}

/// Reads the baseline file at the conventional location
/// (`<root>/taco-check.baseline`); a missing file is an empty
/// baseline.
pub fn read_baseline(root: &Path) -> String {
    std::fs::read_to_string(root.join("taco-check.baseline")).unwrap_or_default()
}
