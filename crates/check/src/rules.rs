//! The rule engine: six per-file invariant lints (D1–D6) over the
//! lexed token stream, plus the `// taco-check: allow(rule, reason)`
//! pragma that suppresses a finding at its own line or the line below.
//! The cross-file rules D7–D9 live in [`crate::workspace_rules`] and
//! run over the model built by [`crate::model`]; their identifiers and
//! the [`Finding`] type are defined here so pragmas, baselines, and
//! reports treat all nine rules uniformly.
//!
//! Per-file rules pattern-match on code-token sequences, so
//! occurrences inside strings, raw strings, and comments never fire
//! (the lexer guarantees this), and multi-line call chains still match
//! (token matching is layout-insensitive).

use crate::lexer::TokenKind;
use crate::walker::{FileCtx, FileIndex, FileKind};
use std::collections::BTreeMap;

/// The rule identifiers. Stable: baselines and pragmas refer to these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No `std::thread::{spawn, scope, Builder}` outside the tensor
    /// worker pool — all parallelism must flow through `tensor::pool`
    /// so `TACO_THREADS` stays the single thread budget and result
    /// partitioning stays deterministic.
    D1ThreadSpawn,
    /// No `Instant::now`/`SystemTime::now` outside the `bench` crate
    /// and the trace clock edge (`trace::span`, `trace::event`) — the
    /// simulation's cost model must consume injected timings, so
    /// wall-clock never leaks into simulated time. Other justified
    /// readings (kernel timers, the trace perf module) carry explicit
    /// pragmas.
    D2WallClock,
    /// No `HashMap`/`HashSet` in `core`/`sim`/`nn` library code —
    /// their iteration order is nondeterministic; use `BTreeMap`/
    /// `BTreeSet` or indexed `Vec`s.
    D3HashIteration,
    /// No `.unwrap()`/`.expect()` in library code of `core`/`sim`/
    /// `nn`/`data` — return `Result` or document the invariant with an
    /// allow pragma.
    D4Unwrap,
    /// Every `unsafe` keyword must carry an adjacent `SAFETY:`
    /// justification comment (or `# Safety` doc section).
    D5SafetyComment,
    /// No ad-hoc `.sum()`/`.fold()` accumulation in `core` aggregation
    /// paths — use the order-fixed reduction helpers in
    /// `taco_tensor::ops` so reductions can never be silently
    /// reordered or parallelized.
    D6FloatReduction,
    /// Salt discipline (workspace rule): every constant salted into a
    /// seed must be a named `*_SALT`/`*_TAG` constant, the declared
    /// values must be pairwise distinct workspace-wide (two streams
    /// sharing a salt silently correlate), and raw hex literals must
    /// not be XOR'd or split into seeds inline outside tests.
    D7SaltDiscipline,
    /// Env registry (workspace rule): every `TACO_*` environment
    /// variable is read through the `taco_trace::env` accessor module,
    /// declared exactly once in its registry, and documented in
    /// README/EXPERIMENTS — typos and undocumented knobs are findings.
    D8EnvRegistry,
    /// Span contract (workspace rule): span-name string literals in
    /// `sim`/`bench` runtime code must resolve to the `sim::phase`
    /// contract constants (the telemetry schema), and contract
    /// constants with zero use sites are dangling.
    D9SpanContract,
}

/// All rules, in report order.
pub const ALL_RULES: [RuleId; 9] = [
    RuleId::D1ThreadSpawn,
    RuleId::D2WallClock,
    RuleId::D3HashIteration,
    RuleId::D4Unwrap,
    RuleId::D5SafetyComment,
    RuleId::D6FloatReduction,
    RuleId::D7SaltDiscipline,
    RuleId::D8EnvRegistry,
    RuleId::D9SpanContract,
];

impl RuleId {
    /// Short stable id used in terminal output and baselines.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::D1ThreadSpawn => "D1",
            RuleId::D2WallClock => "D2",
            RuleId::D3HashIteration => "D3",
            RuleId::D4Unwrap => "D4",
            RuleId::D5SafetyComment => "D5",
            RuleId::D6FloatReduction => "D6",
            RuleId::D7SaltDiscipline => "D7",
            RuleId::D8EnvRegistry => "D8",
            RuleId::D9SpanContract => "D9",
        }
    }

    /// Human-readable slug accepted in pragmas alongside the id.
    pub fn slug(self) -> &'static str {
        match self {
            RuleId::D1ThreadSpawn => "thread-spawn",
            RuleId::D2WallClock => "wall-clock",
            RuleId::D3HashIteration => "hash-iteration",
            RuleId::D4Unwrap => "unwrap",
            RuleId::D5SafetyComment => "safety-comment",
            RuleId::D6FloatReduction => "float-reduction",
            RuleId::D7SaltDiscipline => "salt-discipline",
            RuleId::D8EnvRegistry => "env-registry",
            RuleId::D9SpanContract => "span-contract",
        }
    }

    /// Parses an id (`D4`) or slug (`unwrap`) as written in pragmas
    /// and baselines.
    pub fn parse(s: &str) -> Option<RuleId> {
        ALL_RULES
            .iter()
            .copied()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.slug() == s)
    }
}

/// One diagnostic. `file` is workspace-relative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: RuleId,
    pub file: String,
    pub line: u32,
    pub message: String,
    /// Second anchor for cross-file findings (e.g. the *other* salt
    /// declaration sharing the value, or the registry the env var is
    /// missing from). A pragma at either anchor suppresses the
    /// finding; the baseline matches the primary location only.
    pub related: Option<(String, u32)>,
}

impl Finding {
    /// A single-location finding.
    pub fn new(rule: RuleId, file: impl Into<String>, line: u32, message: String) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line,
            message,
            related: None,
        }
    }

    /// Attaches the secondary anchor (builder style).
    pub fn with_related(mut self, file: impl Into<String>, line: u32) -> Finding {
        self.related = Some((file.into(), line));
        self
    }
}

/// Crates whose library code must be order-deterministic (D3).
const DETERMINISTIC_CRATES: [&str; 3] = ["core", "sim", "nn"];
/// Crates whose library code must be panic-free (D4).
const PANIC_FREE_CRATES: [&str; 4] = ["core", "sim", "nn", "data"];
/// Crates allowed to read the wall clock wholesale (D2): the bench
/// harness measures wall time by design.
const WALL_CLOCK_CRATES: [&str; 1] = ["bench"];
/// The trace files that *define* the clock edge (span timers, event
/// timestamps). The rest of the trace crate is held to D2 like
/// everyone else and must pragma each justified reading — e.g. the
/// perf-suite repeat timer in `trace::perf`.
const WALL_CLOCK_FILES: [&str; 2] = ["crates/trace/src/span.rs", "crates/trace/src/event.rs"];
/// The one file allowed to create threads (D1).
const POOL_FILE: &str = "crates/tensor/src/pool.rs";

/// Runs every rule over one lexed file and returns *unsuppressed*
/// findings: pragma suppression is applied here, baseline suppression
/// later (the baseline is a workspace-level artifact). `suppressed`
/// counts findings silenced by a pragma.
pub fn check_file(ctx: &FileCtx, idx: &FileIndex, suppressed: &mut usize) -> Vec<Finding> {
    let pragmas = collect_pragmas(idx);
    let mut raw = Vec::new();
    rule_d1(ctx, idx, &mut raw);
    rule_d2(ctx, idx, &mut raw);
    rule_d3(ctx, idx, &mut raw);
    rule_d4(ctx, idx, &mut raw);
    rule_d5(ctx, idx, &mut raw);
    rule_d6(ctx, idx, &mut raw);
    pragma_diagnostics(ctx, &pragmas, &mut raw);
    raw.retain(|f| {
        let hit = pragma_allows(&pragmas, f.rule, f.line);
        if hit {
            *suppressed += 1;
        }
        !hit
    });
    raw.sort_by_key(|f| (f.line, f.rule));
    raw
}

/// A parsed pragma: which rules it allows, and whether it carried a
/// reason (pragmas without reasons are themselves diagnosed).
pub struct Pragma {
    rules: Vec<RuleId>,
    has_reason: bool,
    raw: String,
}

/// Pragmas by line. Public so the workspace pass in [`crate::run`] can
/// re-check cross-file findings against each anchor file's pragmas.
pub fn collect_pragmas(idx: &FileIndex) -> BTreeMap<u32, Vec<Pragma>> {
    let mut out: BTreeMap<u32, Vec<Pragma>> = BTreeMap::new();
    for (&line, texts) in &idx.comments {
        for text in texts {
            let Some(rest) = text.trim().strip_prefix("taco-check:") else {
                continue;
            };
            let rest = rest.trim();
            let Some(body) = rest
                .strip_prefix("allow(")
                .and_then(|b| b.rfind(')').map(|end| &b[..end]))
            else {
                out.entry(line).or_default().push(Pragma {
                    rules: Vec::new(),
                    has_reason: false,
                    raw: text.trim().to_string(),
                });
                continue;
            };
            // allow(rule, reason...) — rule up to the first comma, the
            // remainder is the mandatory reason.
            let (rule_part, reason) = match body.split_once(',') {
                Some((r, why)) => (r.trim(), why.trim()),
                None => (body.trim(), ""),
            };
            out.entry(line).or_default().push(Pragma {
                rules: RuleId::parse(rule_part).into_iter().collect(),
                has_reason: !reason.is_empty(),
                raw: text.trim().to_string(),
            });
        }
    }
    out
}

/// A finding at `line` is suppressed by a well-formed pragma on the
/// same line (trailing comment) or the line directly above.
pub fn pragma_allows(pragmas: &BTreeMap<u32, Vec<Pragma>>, rule: RuleId, line: u32) -> bool {
    [line, line.saturating_sub(1)].iter().any(|l| {
        pragmas
            .get(l)
            .is_some_and(|ps| ps.iter().any(|p| p.has_reason && p.rules.contains(&rule)))
    })
}

/// Malformed pragmas are findings too: a pragma that names no valid
/// rule or omits the reason would otherwise silently fail to suppress.
fn pragma_diagnostics(ctx: &FileCtx, pragmas: &BTreeMap<u32, Vec<Pragma>>, out: &mut Vec<Finding>) {
    for (&line, ps) in pragmas {
        for p in ps {
            if p.rules.is_empty() {
                out.push(Finding::new(
                    RuleId::D5SafetyComment, // nearest "hygiene" bucket
                    ctx.rel_path.clone(),
                    line,
                    format!(
                        "malformed taco-check pragma `{}`: expected `taco-check: allow(rule, reason)` with rule one of D1-D9 or its slug",
                        p.raw
                    ),
                ));
            } else if !p.has_reason {
                out.push(Finding::new(
                    p.rules[0],
                    ctx.rel_path.clone(),
                    line,
                    format!(
                        "pragma `{}` is missing its reason: write `taco-check: allow({}, why this is sound)`",
                        p.raw,
                        p.rules[0].slug()
                    ),
                ));
            }
        }
    }
}

/// Does the code token at `i` start the `::`-joined path segment
/// `first::second`?
fn path_pair(idx: &FileIndex, i: usize, first: &str, seconds: &[&str]) -> Option<(u32, String)> {
    let code = &idx.code;
    match (
        &code[i].kind,
        code.get(i + 1),
        code.get(i + 2),
        code.get(i + 3),
    ) {
        (TokenKind::Ident(a), Some(c1), Some(c2), Some(b))
            if a == first
                && c1.kind == TokenKind::Punct(':')
                && c2.kind == TokenKind::Punct(':') =>
        {
            if let TokenKind::Ident(second) = &b.kind {
                if seconds.contains(&second.as_str()) {
                    return Some((code[i].line, format!("{first}::{second}")));
                }
            }
            None
        }
        _ => None,
    }
}

/// Shared scope gate: rules that guard *runtime* determinism apply to
/// library, binary, and example code, and never to test regions.
fn in_runtime_scope(ctx: &FileCtx, idx: &FileIndex, line: u32) -> bool {
    matches!(ctx.kind, FileKind::Lib | FileKind::Bin | FileKind::Example)
        && !idx.in_test_region(line)
}

fn rule_d1(ctx: &FileCtx, idx: &FileIndex, out: &mut Vec<Finding>) {
    if ctx.rel_path == POOL_FILE {
        return;
    }
    for i in 0..idx.code.len() {
        if let Some((line, what)) = path_pair(idx, i, "thread", &["spawn", "scope", "Builder"]) {
            if in_runtime_scope(ctx, idx, line) {
                out.push(Finding::new(
                    RuleId::D1ThreadSpawn,
                    ctx.rel_path.clone(),
                    line,
                    format!(
                        "`{what}` outside tensor::pool: route parallelism through the shared worker pool so TACO_THREADS stays the single thread budget"
                    ),
                ));
            }
        }
    }
}

fn rule_d2(ctx: &FileCtx, idx: &FileIndex, out: &mut Vec<Finding>) {
    if WALL_CLOCK_CRATES.contains(&ctx.crate_name.as_str())
        || WALL_CLOCK_FILES.contains(&ctx.rel_path.as_str())
    {
        return;
    }
    for i in 0..idx.code.len() {
        let hit = path_pair(idx, i, "Instant", &["now"])
            .or_else(|| path_pair(idx, i, "SystemTime", &["now"]));
        if let Some((line, what)) = hit {
            if in_runtime_scope(ctx, idx, line) {
                out.push(Finding::new(
                    RuleId::D2WallClock,
                    ctx.rel_path.clone(),
                    line,
                    format!(
                        "`{what}` outside trace/bench: simulated time must come from the cost model or taco-trace spans, never the wall clock"
                    ),
                ));
            }
        }
    }
}

fn rule_d3(ctx: &FileCtx, idx: &FileIndex, out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib || !DETERMINISTIC_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for t in &idx.code {
        if let TokenKind::Ident(name) = &t.kind {
            if (name == "HashMap" || name == "HashSet") && !idx.in_test_region(t.line) {
                out.push(Finding::new(
                    RuleId::D3HashIteration,
                    ctx.rel_path.clone(),
                    t.line,
                    format!(
                        "`{name}` in deterministic crate `{}`: iteration order is nondeterministic; use BTreeMap/BTreeSet or an indexed Vec",
                        ctx.crate_name
                    ),
                ));
            }
        }
    }
}

fn rule_d4(ctx: &FileCtx, idx: &FileIndex, out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib || !PANIC_FREE_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let code = &idx.code;
    for i in 0..code.len() {
        let TokenKind::Ident(name) = &code[i].kind else {
            continue;
        };
        if name != "unwrap" && name != "expect" {
            continue;
        }
        let preceded_by_dot = i > 0 && code[i - 1].kind == TokenKind::Punct('.');
        let followed_by_paren =
            matches!(code.get(i + 1), Some(t) if t.kind == TokenKind::Punct('('));
        if preceded_by_dot && followed_by_paren && !idx.in_test_region(code[i].line) {
            out.push(Finding::new(
                RuleId::D4Unwrap,
                ctx.rel_path.clone(),
                code[i].line,
                format!(
                    "`.{name}()` in library code of `{}`: return a Result, or annotate the invariant with `taco-check: allow(unwrap, reason)`",
                    ctx.crate_name
                ),
            ));
        }
    }
}

fn rule_d5(ctx: &FileCtx, idx: &FileIndex, out: &mut Vec<Finding>) {
    for t in &idx.code {
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        if name != "unsafe" {
            continue;
        }
        if !has_safety_comment(idx, t.line) {
            out.push(Finding::new(
                RuleId::D5SafetyComment,
                ctx.rel_path.clone(),
                t.line,
                "`unsafe` without an adjacent `// SAFETY:` comment justifying why the invariants hold".to_string(),
            ));
        }
    }
}

/// Looks for a `SAFETY`/`# Safety` comment adjacent to the `unsafe`
/// keyword at `line`: on the line itself, or walking upward through
/// comment lines, attribute lines, statement-continuation lines, and
/// stacked `unsafe` items, stopping at the previous statement boundary
/// (a line ending in `;`, `{`, or `}`).
fn has_safety_comment(idx: &FileIndex, line: u32) -> bool {
    let marker = |l: u32| {
        idx.comments_on(l)
            .iter()
            .any(|t| t.contains("SAFETY") || t.contains("# Safety"))
    };
    if marker(line) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    for _ in 0..25 {
        if l == 0 {
            return false;
        }
        if marker(l) {
            return true;
        }
        match idx.line_edges.get(&l) {
            // Blank or comment-only line: keep walking.
            None => {}
            Some((first, last)) => {
                let is_attr = *first == TokenKind::Punct('#');
                let stacked_unsafe = idx.unsafe_impl_lines.contains(&l);
                let boundary = matches!(
                    last,
                    TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}')
                );
                if !is_attr && !stacked_unsafe && boundary {
                    return false;
                }
            }
        }
        l -= 1;
    }
    false
}

fn rule_d6(ctx: &FileCtx, idx: &FileIndex, out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib || ctx.crate_name != "core" {
        return;
    }
    let code = &idx.code;
    for i in 0..code.len() {
        let TokenKind::Ident(name) = &code[i].kind else {
            continue;
        };
        if name != "sum" && name != "fold" {
            continue;
        }
        let preceded_by_dot = i > 0 && code[i - 1].kind == TokenKind::Punct('.');
        // `.sum()`, `.sum::<f64>()`, `.fold(`.
        let followed = matches!(
            code.get(i + 1),
            Some(t) if t.kind == TokenKind::Punct('(') || t.kind == TokenKind::Punct(':')
        );
        if preceded_by_dot && followed && !idx.in_test_region(code[i].line) {
            out.push(Finding::new(
                RuleId::D6FloatReduction,
                ctx.rel_path.clone(),
                code[i].line,
                format!(
                    "ad-hoc `.{name}` accumulation in core aggregation: use the order-fixed helpers in taco_tensor::ops (sum/sum_f64/dot_f64/min_max)"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::walker::classify;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let ctx = classify(path);
        let idx = FileIndex::build(&lex(src));
        let mut suppressed = 0;
        check_file(&ctx, &idx, &mut suppressed)
    }

    #[test]
    fn d1_fires_outside_pool_only() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            run("crates/sim/src/x.rs", src)[0].rule,
            RuleId::D1ThreadSpawn
        );
        assert!(run("crates/tensor/src/pool.rs", src).is_empty());
        assert!(run("crates/sim/tests/x.rs", src).is_empty());
    }

    #[test]
    fn d2_exempts_bench_and_only_the_trace_clock_edge() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(run("crates/sim/src/x.rs", src)[0].rule, RuleId::D2WallClock);
        assert!(run("crates/bench/src/x.rs", src).is_empty());
        // Only span.rs/event.rs define the clock edge; the rest of the
        // trace crate needs a pragma per reading.
        assert!(run("crates/trace/src/span.rs", src).is_empty());
        assert!(run("crates/trace/src/event.rs", src).is_empty());
        assert_eq!(
            run("crates/trace/src/perf.rs", src)[0].rule,
            RuleId::D2WallClock
        );
        let pragmad = "fn f() {\n    // taco-check: allow(wall-clock, perf timing only)\n    let t = Instant::now();\n}\n";
        assert!(run("crates/trace/src/perf.rs", pragmad).is_empty());
    }

    #[test]
    fn d4_matches_method_calls_not_idents() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        assert_eq!(run("crates/core/src/x.rs", src)[0].rule, RuleId::D4Unwrap);
        // A function *named* unwrap, not a method call, is fine.
        assert!(run("crates/core/src/x.rs", "fn unwrap() {}\n").is_empty());
        // Out-of-scope crate.
        assert!(run("crates/tensor/src/x.rs", src).is_empty());
    }

    #[test]
    fn d5_accepts_adjacent_and_doc_safety() {
        let bad = "fn f() { unsafe { g(); } }\n";
        assert_eq!(
            run("crates/tensor/src/x.rs", bad)[0].rule,
            RuleId::D5SafetyComment
        );
        let good = "fn f() {\n    // SAFETY: g has no invariants.\n    unsafe { g(); }\n}\n";
        assert!(run("crates/tensor/src/x.rs", good).is_empty());
        let doc = "/// # Safety\n/// Caller must own the pointer.\n#[inline]\nunsafe fn g() {}\n";
        assert!(run("crates/tensor/src/x.rs", doc).is_empty());
    }

    #[test]
    fn d5_stops_at_statement_boundaries() {
        let src = "fn f() {\n    // SAFETY: only covers the next statement.\n    unsafe { a(); }\n    unsafe { b(); }\n}\n";
        let f = run("crates/tensor/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn d5_one_comment_covers_stacked_unsafe_impls() {
        let src = "// SAFETY: disjoint index ranges only.\nunsafe impl<T> Send for P<T> {}\nunsafe impl<T> Sync for P<T> {}\n";
        assert!(run("crates/tensor/src/x.rs", src).is_empty());
    }

    #[test]
    fn d6_matches_sum_and_fold_in_core_only() {
        let src = "fn f(v: &[f64]) -> f64 { v.iter().sum() }\n";
        assert_eq!(
            run("crates/core/src/x.rs", src)[0].rule,
            RuleId::D6FloatReduction
        );
        assert!(run("crates/sim/src/x.rs", src).is_empty());
        let turbo = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n";
        assert_eq!(run("crates/core/src/x.rs", turbo).len(), 1);
        let fold = "fn f(v: &[f32]) -> f32 { v.iter().fold(0.0, |a, b| a + b) }\n";
        assert_eq!(run("crates/core/src/x.rs", fold).len(), 1);
    }

    #[test]
    fn pragma_suppresses_with_reason_only() {
        let with = "fn f(x: Option<u8>) {\n    // taco-check: allow(unwrap, invariant documented here)\n    x.unwrap();\n}\n";
        assert!(run("crates/core/src/x.rs", with).is_empty());
        let trailing =
            "fn f(x: Option<u8>) {\n    x.unwrap(); // taco-check: allow(D4, same line works)\n}\n";
        assert!(run("crates/core/src/x.rs", trailing).is_empty());
        let without =
            "fn f(x: Option<u8>) {\n    // taco-check: allow(unwrap)\n    x.unwrap();\n}\n";
        let f = run("crates/core/src/x.rs", without);
        // Both the unsuppressed finding and the missing-reason pragma fire.
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn pragma_inside_string_is_inert() {
        let src = "fn f(x: Option<u8>) {\n    let _s = \"taco-check: allow(unwrap, fake)\";\n    x.unwrap();\n}\n";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::D4Unwrap);
    }

    #[test]
    fn malformed_pragma_is_reported() {
        let src = "// taco-check: allow(D42, no such rule)\nfn f() {}\n";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("malformed"));
    }

    #[test]
    fn test_regions_are_exempt_from_runtime_rules() {
        let src = "fn lib(x: Option<u8>) -> Option<u8> { x }\n#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
