//! Lightweight item/scope walker over the token stream.
//!
//! Rules need three pieces of context the raw token stream doesn't
//! carry: what *kind* of file this is (library, binary, test, bench,
//! example — derived from its workspace-relative path), which lines
//! fall inside *test regions* (`#[cfg(test)]` modules and `#[test]`
//! functions, which most rules exempt), and a per-line index of code
//! and comment tokens (used by the `SAFETY:` rule and by pragma
//! resolution). This module computes all three.

use crate::lexer::{Token, TokenKind};
use std::collections::BTreeMap;

/// What a file is, derived from its path relative to the workspace
/// root. Determinism/panic rules apply to `Lib` (and sometimes `Bin`
/// and `Example`) code; `Test` and `Bench` code is exempt from all but
/// unsafe-hygiene.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    Lib,
    Bin,
    Test,
    Bench,
    Example,
}

/// Per-file context handed to every rule.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Crate directory name (`core`, `sim`, …); the root package is
    /// `taco`.
    pub crate_name: String,
    pub kind: FileKind,
}

/// Classifies a workspace-relative path (`/`-separated).
pub fn classify(rel_path: &str) -> FileCtx {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, rest): (String, &[&str]) =
        if parts.first() == Some(&"crates") && parts.len() > 2 {
            (parts[1].to_string(), &parts[2..])
        } else {
            ("taco".to_string(), &parts[..])
        };
    let kind = match rest.first().copied() {
        Some("src") => {
            if rest.get(1) == Some(&"bin") {
                FileKind::Bin
            } else {
                FileKind::Lib
            }
        }
        Some("tests") => FileKind::Test,
        Some("benches") => FileKind::Bench,
        Some("examples") => FileKind::Example,
        _ => FileKind::Lib,
    };
    FileCtx {
        rel_path: rel_path.to_string(),
        crate_name,
        kind,
    }
}

/// Token-index view of one file: code tokens (comments stripped) plus
/// per-line indexes for the comment-adjacency and pragma machinery.
pub struct FileIndex {
    /// Tokens with comments removed, in order. Rules pattern-match on
    /// this.
    pub code: Vec<Token>,
    /// Comment texts per line (a line can hold several).
    pub comments: BTreeMap<u32, Vec<String>>,
    /// For each line with code: (first, last) token kinds on that
    /// line. Used by the SAFETY walk to recognize attribute lines and
    /// statement boundaries.
    pub line_edges: BTreeMap<u32, (TokenKind, TokenKind)>,
    /// Inclusive line ranges lying inside `#[cfg(test)]` modules or
    /// `#[test]` functions.
    pub test_regions: Vec<(u32, u32)>,
    /// Lines whose first two code tokens are `unsafe impl`. The SAFETY
    /// walk treats these as transparent so one comment can cover a
    /// stacked `unsafe impl Send`/`unsafe impl Sync` pair.
    pub unsafe_impl_lines: std::collections::BTreeSet<u32>,
}

impl FileIndex {
    pub fn build(tokens: &[Token]) -> FileIndex {
        let mut code = Vec::new();
        let mut comments: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for t in tokens {
            if let Some(text) = t.kind.comment_text() {
                comments.entry(t.line).or_default().push(text.to_string());
            } else {
                code.push(t.clone());
            }
        }
        let mut line_edges: BTreeMap<u32, (TokenKind, TokenKind)> = BTreeMap::new();
        let mut unsafe_impl_lines = std::collections::BTreeSet::new();
        for (i, t) in code.iter().enumerate() {
            if !line_edges.contains_key(&t.line) {
                let second_is_impl = matches!(
                    code.get(i + 1),
                    Some(n) if n.line == t.line && n.kind == TokenKind::Ident("impl".into())
                );
                if t.kind == TokenKind::Ident("unsafe".into()) && second_is_impl {
                    unsafe_impl_lines.insert(t.line);
                }
            }
            line_edges
                .entry(t.line)
                .and_modify(|e| e.1 = t.kind.clone())
                .or_insert_with(|| (t.kind.clone(), t.kind.clone()));
        }
        let test_regions = find_test_regions(&code);
        FileIndex {
            code,
            comments,
            line_edges,
            test_regions,
            unsafe_impl_lines,
        }
    }

    /// True if `line` lies inside a `#[cfg(test)]` module or `#[test]`
    /// function body.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Comment texts on `line`.
    pub fn comments_on(&self, line: u32) -> &[String] {
        self.comments.get(&line).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Scans the code token stream for `#[cfg(test)]`/`#[test]`-attributed
/// items and returns the line spans of their brace-delimited bodies.
///
/// The walk is a single pass: on seeing `#` `[`, the attribute's
/// bracket group is parsed; if it mentions `test` under `cfg(...)` (or
/// is exactly `#[test]`), the next item body — the first `{` at
/// bracket/paren depth zero before a depth-zero `;` — is brace-matched
/// and its line span recorded. A `;` first means an item without a
/// body (`#[cfg(test)] use …;`), which has no region.
fn find_test_regions(code: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !is_punct(code, i, '#') || !is_punct(code, i + 1, '[') {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let attr_start = i + 2;
        let mut depth = 1usize;
        let mut j = attr_start;
        while j < code.len() && depth > 0 {
            match &code[j].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let attr = &code[attr_start..j.saturating_sub(1)];
        i = j;
        if !attr_marks_test(attr) {
            continue;
        }
        // Find the item's body: first `{` at delimiter depth 0 before
        // a depth-0 `;`. Skip over any further attributes.
        let mut paren = 0isize;
        let mut k = i;
        while k < code.len() {
            match &code[k].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => paren += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => paren -= 1,
                TokenKind::Punct(';') if paren == 0 => {
                    k += 1;
                    break; // bodyless item
                }
                TokenKind::Punct('{') if paren == 0 => {
                    let open_line = code[k].line;
                    let mut braces = 1usize;
                    let mut m = k + 1;
                    while m < code.len() && braces > 0 {
                        match &code[m].kind {
                            TokenKind::Punct('{') => braces += 1,
                            TokenKind::Punct('}') => braces -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    let close_line = code.get(m.saturating_sub(1)).map(|t| t.line);
                    regions.push((open_line, close_line.unwrap_or(u32::MAX)));
                    k = m;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        i = k;
    }
    regions
}

/// Does this attribute body mark test-only code? Matches `test` (the
/// bare `#[test]` attribute) and any `cfg` list mentioning `test`
/// (`cfg(test)`, `cfg(all(test, feature = "x"))`).
fn attr_marks_test(attr: &[Token]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    match idents.as_slice() {
        ["test"] => true,
        _ => idents.first() == Some(&"cfg") && idents.contains(&"test"),
    }
}

fn is_punct(code: &[Token], i: usize, c: char) -> bool {
    matches!(code.get(i), Some(t) if t.kind == TokenKind::Punct(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classifies_workspace_paths() {
        let c = classify("crates/core/src/taco.rs");
        assert_eq!(c.crate_name, "core");
        assert_eq!(c.kind, FileKind::Lib);
        assert_eq!(classify("crates/bench/src/bin/fig2.rs").kind, FileKind::Bin);
        assert_eq!(classify("crates/nn/tests/grad.rs").kind, FileKind::Test);
        assert_eq!(classify("tests/end_to_end.rs").crate_name, "taco");
        assert_eq!(classify("tests/end_to_end.rs").kind, FileKind::Test);
        assert_eq!(classify("examples/quickstart.rs").kind, FileKind::Example);
        assert_eq!(classify("src/lib.rs").kind, FileKind::Lib);
    }

    #[test]
    fn cfg_test_module_region() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let idx = FileIndex::build(&lex(src));
        assert!(!idx.in_test_region(1));
        assert!(idx.in_test_region(3));
        assert!(idx.in_test_region(4));
        assert!(idx.in_test_region(5));
        assert!(!idx.in_test_region(6));
    }

    #[test]
    fn test_fn_region_and_bodyless_attr() {
        let src = "#[cfg(test)]\nuse foo::bar;\n#[test]\nfn t() {\n    body();\n}\nfn lib() {}\n";
        let idx = FileIndex::build(&lex(src));
        // The `use` has no body: line 2 is not a region.
        assert!(!idx.in_test_region(2));
        assert!(idx.in_test_region(5));
        assert!(!idx.in_test_region(7));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod m {\n    fn f() {}\n}\n";
        let idx = FileIndex::build(&lex(src));
        assert!(idx.in_test_region(3));
    }

    #[test]
    fn cfg_not_test_irrelevant_attrs_ignored() {
        let src = "#[derive(Debug)]\nstruct S {\n    x: u32,\n}\n";
        let idx = FileIndex::build(&lex(src));
        assert!(!idx.in_test_region(3));
    }
}
