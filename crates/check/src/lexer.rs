//! A hand-rolled Rust lexer, precise enough for lint rules.
//!
//! The rules in [`crate::rules`] match on *code* token sequences
//! (identifiers and punctuation) and separately inspect *comment*
//! tokens (for `SAFETY:` justifications and `taco-check:` pragmas), so
//! the lexer's one job is to never confuse the two: text inside string
//! literals must not look like code or pragmas, `'a` must lex as a
//! lifetime while `'a'` lexes as a char literal, and `/* /* */ */`
//! must nest. Numeric literals and identifiers are consumed but their
//! exact sub-grammar (suffixes, exponents) is deliberately loose —
//! rules never look inside them.

/// One lexed token. Line numbers are 1-based and refer to the line the
/// token *starts* on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// Token classes. String and number contents ARE retained (char
/// literals are not): the workspace model in [`crate::model`] reads
/// salt values out of `NumLit`s and env/span names out of `StrLit`s.
/// Lexical rules in [`crate::rules`] still never match literal text
/// against code patterns — a literal token is opaque to them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword. Raw identifiers (`r#fn`) are unescaped
    /// to their plain spelling.
    Ident(String),
    /// `'a`, `'static`, `'_` — a quote followed by an identifier with
    /// no closing quote.
    Lifetime(String),
    /// `'x'`, `'\n'`, `'\u{1F600}'`, and byte chars `b'x'`.
    CharLit,
    /// `"..."` and `b"..."`. The text is the body between the quotes
    /// with escape sequences kept verbatim (`\n` stays two chars) —
    /// exact enough for the ASCII identifier-like names the model
    /// cares about.
    StrLit(String),
    /// `r"..."`, `r#"..."#` (any number of hashes), and `br`/`rb`
    /// byte variants; text is the body between the delimiters.
    RawStrLit(String),
    /// Integer or float literal, including prefixes/suffixes, with
    /// the source spelling retained (`0x9A97`, `1.5e-3f64`).
    NumLit(String),
    /// A single punctuation character. Multi-char operators (`::`,
    /// `->`) appear as consecutive `Punct` tokens; rules match the
    /// sequence.
    Punct(char),
    /// `// ...` including doc comments; text excludes the slashes.
    LineComment(String),
    /// `/* ... */` with nesting; text excludes the delimiters.
    BlockComment(String),
}

impl TokenKind {
    /// True for comment tokens (never matched by code-sequence rules).
    pub fn is_comment(&self) -> bool {
        matches!(self, TokenKind::LineComment(_) | TokenKind::BlockComment(_))
    }

    /// The comment text, if this is a comment.
    pub fn comment_text(&self) -> Option<&str> {
        match self {
            TokenKind::LineComment(t) | TokenKind::BlockComment(t) => Some(t),
            _ => None,
        }
    }

    /// The string-literal body, if this is a (raw) string literal.
    pub fn str_text(&self) -> Option<&str> {
        match self {
            TokenKind::StrLit(t) | TokenKind::RawStrLit(t) => Some(t),
            _ => None,
        }
    }
}

/// Lexes `src` into tokens. Unknown bytes lex as `Punct` — the lexer
/// never fails, so a syntactically broken file still gets best-effort
/// linting.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.out.push(Token { kind, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' => self.slash(line),
                '"' => {
                    self.bump();
                    let text = self.string_body();
                    self.push(TokenKind::StrLit(text), line);
                }
                '\'' => self.quote(line),
                c if c.is_ascii_digit() => self.number(line),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(line),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    /// `/` — line comment, (nested) block comment, or plain punct.
    fn slash(&mut self, line: u32) {
        match self.peek(1) {
            Some('/') => {
                self.bump();
                self.bump();
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokenKind::LineComment(text), line);
            }
            Some('*') => {
                self.bump();
                self.bump();
                let mut text = String::new();
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(0), self.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            text.push_str("/*");
                            self.bump();
                            self.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            self.bump();
                            self.bump();
                            if depth > 0 {
                                text.push_str("*/");
                            }
                        }
                        (Some(c), _) => {
                            text.push(c);
                            self.bump();
                        }
                        (None, _) => break, // unterminated: EOF closes
                    }
                }
                self.push(TokenKind::BlockComment(text), line);
            }
            _ => {
                self.bump();
                self.push(TokenKind::Punct('/'), line);
            }
        }
    }

    /// Body of a `"` string, opening quote already consumed. Returns
    /// the body text with escape sequences kept verbatim.
    fn string_body(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e); // the escaped char, whatever it is
                    }
                }
                '"' => return text,
                _ => text.push(c),
            }
        }
        text // unterminated: EOF closes
    }

    /// `'` — char literal or lifetime. The ambiguity: `'a'` is a char,
    /// `'a` (no closing quote) is a lifetime, `'\''` is a char, and
    /// `'static` is a lifetime whose identifier is several chars long
    /// (so `'st…` can only be decided after scanning the identifier).
    fn quote(&mut self, line: u32) {
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => {
                // Escape ⇒ definitely a char literal; consume to the
                // closing quote.
                self.bump();
                self.bump(); // char named by the escape (or `u`/`x`…)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::CharLit, line);
            }
            Some(c) if is_ident_start(c) => {
                // Scan the identifier; a closing quote right after a
                // *single* ident char means char literal ('a'), and
                // after a longer run it is still a char only if the
                // run was length 1 — 'abc' is not valid Rust, so a
                // multi-char run is always a lifetime.
                let mut len = 0usize;
                while let Some(k) = self.peek(len) {
                    if is_ident_continue(k) {
                        len += 1;
                    } else {
                        break;
                    }
                }
                if len == 1 && self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::CharLit, line);
                } else {
                    let mut name = String::new();
                    for _ in 0..len {
                        name.push(self.bump().unwrap_or('_'));
                    }
                    self.push(TokenKind::Lifetime(name), line);
                }
            }
            Some(c) => {
                // Non-ident char: 'é' style literal or punctuation
                // literal like '+'.
                self.bump();
                let _ = c;
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::CharLit, line);
            }
            None => self.push(TokenKind::Punct('\''), line),
        }
    }

    /// Numeric literal: prefixes (0x/0o/0b), underscores, a fraction
    /// part only when `.` is followed by a digit (so `0..10` lexes as
    /// `0` `.` `.` `10`), exponents, and alphanumeric suffixes.
    fn number(&mut self, line: u32) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                // Exponent sign: 1e-3 / 1E+3.
                if (c == 'e' || c == 'E')
                    && matches!(self.peek(1), Some('+') | Some('-'))
                    && matches!(self.peek(2), Some(d) if d.is_ascii_digit())
                {
                    self.bump();
                    self.bump();
                }
                self.bump();
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::NumLit(text), line);
    }

    /// Identifier, keyword, raw identifier, or a string literal with
    /// an `r`/`b`/`br`/`rb` prefix.
    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let c = self.peek(0).unwrap_or('_');
        // r"..."  r#"..."#  r#ident
        if c == 'r' {
            let mut hashes = 0usize;
            while self.peek(1 + hashes) == Some('#') {
                hashes += 1;
            }
            match self.peek(1 + hashes) {
                Some('"') => {
                    self.bump(); // r
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.bump(); // "
                    let text = self.raw_string_body(hashes);
                    self.push(TokenKind::RawStrLit(text), line);
                    return;
                }
                Some(k) if hashes == 1 && is_ident_start(k) => {
                    // Raw identifier r#foo: unescape to foo.
                    self.bump();
                    self.bump();
                    let name = self.ident_text();
                    self.push(TokenKind::Ident(name), line);
                    return;
                }
                _ => {}
            }
        }
        // b'x'  b"..."  br"..."  br#"..."#
        if c == 'b' {
            match self.peek(1) {
                Some('\'') => {
                    self.bump(); // b
                    self.quote(line);
                    return;
                }
                Some('"') => {
                    self.bump();
                    self.bump();
                    let text = self.string_body();
                    self.push(TokenKind::StrLit(text), line);
                    return;
                }
                Some('r') => {
                    let mut hashes = 0usize;
                    while self.peek(2 + hashes) == Some('#') {
                        hashes += 1;
                    }
                    if self.peek(2 + hashes) == Some('"') {
                        self.bump(); // b
                        self.bump(); // r
                        for _ in 0..hashes {
                            self.bump();
                        }
                        self.bump(); // "
                        let text = self.raw_string_body(hashes);
                        self.push(TokenKind::RawStrLit(text), line);
                        return;
                    }
                }
                _ => {}
            }
        }
        let name = self.ident_text();
        self.push(TokenKind::Ident(name), line);
    }

    fn ident_text(&mut self) -> String {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        name
    }

    /// Body of a raw string opened with `hashes` hashes; the opening
    /// `"` is already consumed. Ends at `"` followed by that many
    /// hashes — quotes and backslashes inside are plain text. Returns
    /// the body text.
    fn raw_string_body(&mut self, hashes: usize) -> String {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut n = 0usize;
                while n < hashes && self.peek(n) == Some('#') {
                    n += 1;
                }
                if n == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return text;
                }
            }
            text.push(c);
        }
        text // unterminated: EOF closes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("foo::bar"),
            vec![
                TokenKind::Ident("foo".into()),
                TokenKind::Punct(':'),
                TokenKind::Punct(':'),
                TokenKind::Ident("bar".into()),
            ]
        );
    }

    #[test]
    fn lifetime_vs_char() {
        assert_eq!(
            kinds("&'a str"),
            vec![
                TokenKind::Punct('&'),
                TokenKind::Lifetime("a".into()),
                TokenKind::Ident("str".into()),
            ]
        );
        assert_eq!(kinds("'a'"), vec![TokenKind::CharLit]);
        assert_eq!(kinds("'\\''"), vec![TokenKind::CharLit]);
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime("static".into())]);
    }

    #[test]
    fn raw_strings_hide_code() {
        // No Ident tokens may leak out of the raw string body.
        let toks = kinds(r##"let x = r#"thread::spawn("quoted")"#;"##);
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("let".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct('='),
                TokenKind::RawStrLit(r#"thread::spawn("quoted")"#.into()),
                TokenKind::Punct(';'),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still-outer */ b");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::BlockComment(" outer /* inner */ still-outer ".into()),
                TokenKind::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline\"\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1); // a
        assert_eq!(toks[1].line, 2); // string starts on line 2
        assert_eq!(toks[2].line, 4); // b — string spanned a newline
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        assert_eq!(
            kinds("0..10"),
            vec![
                TokenKind::NumLit("0".into()),
                TokenKind::Punct('.'),
                TokenKind::Punct('.'),
                TokenKind::NumLit("10".into()),
            ]
        );
        assert_eq!(
            kinds("1.5e-3f64"),
            vec![TokenKind::NumLit("1.5e-3f64".into())]
        );
    }

    #[test]
    fn raw_identifiers_unescape() {
        assert_eq!(
            kinds("r#fn r#try"),
            vec![
                TokenKind::Ident("fn".into()),
                TokenKind::Ident("try".into()),
            ]
        );
    }

    #[test]
    fn byte_literals() {
        assert_eq!(kinds("b'x'"), vec![TokenKind::CharLit]);
        assert_eq!(kinds("b\"bytes\""), vec![TokenKind::StrLit("bytes".into())]);
        assert_eq!(
            kinds("br#\"raw \" bytes\"#"),
            vec![TokenKind::RawStrLit("raw \" bytes".into())]
        );
    }

    #[test]
    fn literal_text_is_retained() {
        assert_eq!(
            kinds(r#"env::var("TACO_TRACE")"#),
            vec![
                TokenKind::Ident("env".into()),
                TokenKind::Punct(':'),
                TokenKind::Punct(':'),
                TokenKind::Ident("var".into()),
                TokenKind::Punct('('),
                TokenKind::StrLit("TACO_TRACE".into()),
                TokenKind::Punct(')'),
            ]
        );
        assert_eq!(kinds("0x9A97"), vec![TokenKind::NumLit("0x9A97".into())]);
        // Escapes stay verbatim — good enough for identifier-like names.
        assert_eq!(kinds("\"a\\nb\""), vec![TokenKind::StrLit("a\\nb".into())]);
    }
}
