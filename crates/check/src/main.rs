//! CLI entry point: `cargo run -p taco-check [-- flags]`.
//!
//! Flags:
//! * `--root <dir>`      — tree to scan (default: the workspace root)
//! * `--baseline <file>` — baseline file (default: `<root>/taco-check.baseline`)
//! * `--json <file>`     — also write the machine-readable report
//! * `--quiet`           — suppress per-finding lines, print the summary only
//!
//! Exit status: 0 when no unsuppressed findings remain, 1 otherwise,
//! 2 on usage errors or when any workspace file could not be read
//! (I/O error, non-UTF-8) — an incomplete scan never passes silently.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--json" => json_path = args.next().map(PathBuf::from),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: taco-check [--root DIR] [--baseline FILE] [--json FILE] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("taco-check: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = root
        .unwrap_or_else(|| taco_check::workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR")));
    let baseline = match &baseline_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("taco-check: cannot read baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => taco_check::read_baseline(&root),
    };

    let report = taco_check::run(&taco_check::Config { root, baseline });

    if let Some(p) = &json_path {
        if let Err(e) = std::fs::write(p, report.to_json()) {
            eprintln!("taco-check: cannot write JSON report {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    let text = report.render_text();
    if quiet {
        if let Some(summary) = text.lines().last() {
            println!("{summary}");
        }
    } else {
        print!("{text}");
    }
    if report.incomplete() {
        // The findings list may be misleadingly short when files were
        // skipped, so this outranks plain failure.
        ExitCode::from(2)
    } else if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
