//! Cross-model gradient checks: every model family's full
//! loss-and-grad path is verified against central finite differences
//! on randomly chosen coordinates, and against basic sanity
//! invariants (finiteness, layout stability under clone).

use taco_nn::{Batch, CharLstm, Mlp, Model, PaperCnn, TinyResNet};
use taco_tensor::pool::{self, Pool};
use taco_tensor::{ops, Prng, Tensor};

fn check_gradient(model: &mut dyn Model, batch: &Batch, coords: usize, tol: f32) {
    let (_, grad) = model.loss_and_grad(batch);
    assert!(ops::all_finite(&grad), "non-finite gradient");
    let base = model.params();
    let n = base.len();
    let mut rng = Prng::seed_from_u64(0xC0FFEE);
    // Small eps: larger perturbations cross ReLU kinks in the deeper
    // models and bias the central difference (verified to converge to
    // the analytic value as eps shrinks).
    let eps = 1.5e-3f32;
    for _ in 0..coords {
        let i = rng.below(n);
        let mut p = base.clone();
        p[i] += eps;
        model.set_params(&p);
        let (up, _) = model.loss_and_accuracy(batch);
        p[i] -= 2.0 * eps;
        model.set_params(&p);
        let (dn, _) = model.loss_and_accuracy(batch);
        let fd = (up - dn) / (2.0 * eps);
        assert!(
            (fd - grad[i]).abs() < tol + 0.05 * grad[i].abs(),
            "coordinate {i}: finite-diff {fd} vs analytic {}",
            grad[i]
        );
    }
    model.set_params(&base);
}

#[test]
fn mlp_gradcheck() {
    let mut rng = Prng::seed_from_u64(1);
    let mut m = Mlp::new(6, &[10, 5], 4, &mut rng);
    let x = Tensor::randn([3, 6], 1.0, &mut rng);
    let batch = Batch::new(x, vec![0, 2, 3]);
    check_gradient(&mut m, &batch, 25, 2e-2);
}

#[test]
fn cnn_gradcheck() {
    let mut rng = Prng::seed_from_u64(2);
    let mut m = PaperCnn::new(1, 16, 3, 2, 8, &mut rng);
    let x = Tensor::randn([2, 1, 16, 16], 1.0, &mut rng);
    let batch = Batch::new(x, vec![1, 0]);
    check_gradient(&mut m, &batch, 15, 3e-2);
}

#[test]
fn resnet_gradcheck() {
    let mut rng = Prng::seed_from_u64(3);
    let mut m = TinyResNet::new(1, 8, 3, 4, &mut rng);
    let x = Tensor::randn([2, 1, 8, 8], 1.0, &mut rng);
    let batch = Batch::new(x, vec![2, 0]);
    check_gradient(&mut m, &batch, 15, 3e-2);
}

#[test]
fn resnet_wide_gradcheck() {
    // Wider stem (8 -> 8/16/32 stage channels), larger side and two
    // input channels: exercises the blocked matmul/conv paths with
    // non-trivial panel tails rather than the minimal 8x8 config.
    let mut rng = Prng::seed_from_u64(7);
    let mut m = TinyResNet::new(2, 12, 5, 8, &mut rng);
    let x = Tensor::randn([2, 2, 12, 12], 1.0, &mut rng);
    let batch = Batch::new(x, vec![4, 1]);
    check_gradient(&mut m, &batch, 10, 3e-2);
}

#[test]
fn lstm_gradcheck() {
    let mut rng = Prng::seed_from_u64(4);
    let mut m = CharLstm::new(8, 5, 6, &mut rng);
    let x = Tensor::from_vec(vec![0.0, 3.0, 7.0, 1.0, 2.0, 5.0], [2, 3]);
    let batch = Batch::new(x, vec![4, 6]);
    check_gradient(&mut m, &batch, 25, 2e-2);
}

#[test]
fn lstm_wide_gradcheck() {
    // Bigger vocab/embedding/hidden and a longer sequence: the
    // recurrence unrolls through more steps, so errors in the blocked
    // gate matmuls would compound and show up in the finite diff.
    let mut rng = Prng::seed_from_u64(8);
    let mut m = CharLstm::new(12, 8, 16, &mut rng);
    let x = Tensor::from_vec(
        vec![0.0, 3.0, 11.0, 1.0, 2.0, 5.0, 7.0, 9.0, 4.0, 10.0],
        [2, 5],
    );
    let batch = Batch::new(x, vec![6, 2]);
    check_gradient(&mut m, &batch, 20, 2e-2);
}

/// Runs `loss_and_grad` on clones of the same model under a
/// single-thread pool and an 8-thread pool and demands bit-equal
/// results — the worker pool's deterministic row partitioning must
/// make thread count invisible to training.
fn assert_grads_thread_count_invariant(m: &dyn Model, batch: &Batch) {
    let mut m1 = m.clone_model();
    let mut m8 = m.clone_model();
    let p1 = Pool::new(1);
    let p8 = Pool::new(8);
    let (l1, g1) = pool::with_pool(&p1, || m1.loss_and_grad(batch));
    let (l8, g8) = pool::with_pool(&p8, || m8.loss_and_grad(batch));
    assert_eq!(
        l1.to_bits(),
        l8.to_bits(),
        "loss differs across thread counts: {l1} vs {l8}"
    );
    assert_eq!(g1.len(), g8.len());
    for (i, (a, b)) in g1.iter().zip(&g8).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "grad[{i}] differs across thread counts: {a} vs {b}"
        );
    }
}

#[test]
fn mlp_gradients_are_thread_count_invariant() {
    // Sized so the hidden-layer matmuls cross the pool's parallel
    // threshold: 64x128 batch activations actually fan out to workers.
    let mut rng = Prng::seed_from_u64(9);
    let m = Mlp::new(64, &[128, 64], 10, &mut rng);
    let x = Tensor::randn([64, 64], 1.0, &mut rng);
    let targets = (0..64).map(|i| i % 10).collect();
    assert_grads_thread_count_invariant(&m, &Batch::new(x, targets));
}

#[test]
fn cnn_gradients_are_thread_count_invariant() {
    let mut rng = Prng::seed_from_u64(10);
    let m = PaperCnn::new(1, 16, 10, 8, 32, &mut rng);
    let x = Tensor::randn([8, 1, 16, 16], 1.0, &mut rng);
    let targets = (0..8).map(|i| i % 10).collect();
    assert_grads_thread_count_invariant(&m, &Batch::new(x, targets));
}

#[test]
fn resnet_gradients_are_thread_count_invariant() {
    let mut rng = Prng::seed_from_u64(11);
    let m = TinyResNet::new(1, 16, 10, 8, &mut rng);
    let x = Tensor::randn([4, 1, 16, 16], 1.0, &mut rng);
    let targets = (0..4).map(|i| i % 10).collect();
    assert_grads_thread_count_invariant(&m, &Batch::new(x, targets));
}

#[test]
fn lstm_gradients_are_thread_count_invariant() {
    let mut rng = Prng::seed_from_u64(12);
    let m = CharLstm::new(16, 12, 24, &mut rng);
    let seq: Vec<f32> = (0..32).map(|i| f32::from(i as u8 % 16)).collect();
    let x = Tensor::from_vec(seq, [4, 8]);
    assert_grads_thread_count_invariant(&m, &Batch::new(x, vec![3, 7, 11, 15]));
}

#[test]
fn param_layout_is_stable_across_clones() {
    let mut rng = Prng::seed_from_u64(5);
    let models: Vec<Box<dyn Model>> = vec![
        Box::new(Mlp::new(4, &[6], 3, &mut rng)),
        Box::new(PaperCnn::new(1, 16, 3, 2, 8, &mut rng)),
        Box::new(TinyResNet::new(1, 8, 3, 4, &mut rng)),
        Box::new(CharLstm::new(6, 4, 5, &mut rng)),
    ];
    for mut m in models {
        let p = m.params();
        let mut c = m.clone_model();
        assert_eq!(c.params(), p, "clone changed the flat layout");
        // Round-trip through set_params keeps the exact bytes.
        c.set_params(&p);
        assert_eq!(c.params(), p);
    }
}

#[test]
fn gradient_of_zero_loss_region_is_zero_for_bias_only_path() {
    // All-zero inputs through the MLP: only biases influence logits;
    // weight gradients through dead ReLUs must not be NaN.
    let mut rng = Prng::seed_from_u64(6);
    let mut m = Mlp::new(3, &[4], 2, &mut rng);
    let batch = Batch::new(Tensor::zeros([2, 3]), vec![0, 1]);
    let (loss, grad) = m.loss_and_grad(&batch);
    assert!(loss.is_finite());
    assert!(ops::all_finite(&grad));
}
