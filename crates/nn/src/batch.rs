//! Mini-batch containers.

use taco_tensor::Tensor;

/// A supervised mini-batch: inputs plus one class label per sample.
///
/// The first input dimension is always the batch dimension. For image
/// models the remaining dimensions are `[channels, height, width]`;
/// for the LSTM the inputs are `[batch, seq_len]` symbol ids stored as
/// `f32` (exact for ids below 2²⁴).
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    inputs: Tensor,
    targets: Vec<usize>,
}

impl Batch {
    /// Creates a batch.
    ///
    /// # Panics
    ///
    /// Panics if the number of targets differs from the leading input
    /// dimension, or the inputs have no batch dimension.
    pub fn new(inputs: Tensor, targets: Vec<usize>) -> Self {
        assert!(
            inputs.shape().ndim() >= 1,
            "batch inputs need a batch dimension"
        );
        assert_eq!(
            inputs.dims()[0],
            targets.len(),
            "batch size mismatch: {} inputs vs {} targets",
            inputs.dims()[0],
            targets.len()
        );
        Batch { inputs, targets }
    }

    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` if the batch has no samples.
    ///
    /// Cannot happen for batches built through [`Batch::new`] with a
    /// positive batch dimension; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The input tensor (`[batch, ...]`).
    pub fn inputs(&self) -> &Tensor {
        &self.inputs
    }

    /// The class labels, one per sample.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// Number of input features per sample.
    pub fn sample_len(&self) -> usize {
        self.inputs.len() / self.len()
    }

    /// The flat input features of sample `i`.
    pub fn sample(&self, i: usize) -> &[f32] {
        let n = self.sample_len();
        &self.inputs.data()[i * n..(i + 1) * n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let b = Batch::new(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]),
            vec![0, 1],
        );
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.sample_len(), 3);
        assert_eq!(b.sample(1), &[4.0, 5.0, 6.0]);
        assert_eq!(b.targets(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn target_count_mismatch_panics() {
        let _ = Batch::new(Tensor::zeros([2, 3]), vec![0]);
    }
}
