//! The paper's tabular MLP (hidden layers 32-16-8 on `adult`).

use crate::activation::Relu;
use crate::batch::Batch;
use crate::dense::Dense;
use crate::loss::{count_correct, softmax_cross_entropy};
use crate::model::Model;
use crate::params::{self, HasParams, ParamBlock};
use taco_tensor::{Prng, Tensor};

/// A multi-layer perceptron with ReLU activations.
///
/// The paper's `adult` model uses hidden layers `(32, 16, 8)`; see
/// [`Mlp::paper_adult`]. Any hidden-layer list is supported.
pub struct Mlp {
    layers: Vec<Dense>,
    relus: Vec<Relu>,
    in_features: usize,
    classes: usize,
    hidden: Vec<usize>,
}

impl Mlp {
    /// Creates an MLP `in → hidden[0] → ... → classes`.
    ///
    /// # Panics
    ///
    /// Panics if `in_features` or `classes` is zero.
    pub fn new(in_features: usize, hidden: &[usize], classes: usize, rng: &mut Prng) -> Self {
        assert!(in_features > 0 && classes > 0, "degenerate MLP shape");
        let mut layers = Vec::new();
        let mut relus = Vec::new();
        let mut prev = in_features;
        for &h in hidden {
            layers.push(Dense::new(prev, h, rng));
            relus.push(Relu::new());
            prev = h;
        }
        layers.push(Dense::new(prev, classes, rng));
        Mlp {
            layers,
            relus,
            in_features,
            classes,
            hidden: hidden.to_vec(),
        }
    }

    /// The paper's three-hidden-layer (32, 16, 8) MLP.
    pub fn paper_adult(in_features: usize, classes: usize, rng: &mut Prng) -> Self {
        Mlp::new(in_features, &[32, 16, 8], classes, rng)
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output class count.
    pub fn classes(&self) -> usize {
        self.classes
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        let n = self.layers.len();
        for i in 0..n - 1 {
            h = self.layers[i].forward(&h);
            h = self.relus[i].forward(&h);
        }
        self.layers[n - 1].forward(&h)
    }

    fn backward(&mut self, grad_logits: &Tensor) {
        let n = self.layers.len();
        let mut g = self.layers[n - 1].backward(grad_logits);
        for i in (0..n - 1).rev() {
            g = self.relus[i].backward(&g);
            g = self.layers[i].backward(&g);
        }
    }
}

impl HasParams for Mlp {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

impl Model for Mlp {
    fn param_count(&mut self) -> usize {
        params::param_count(self)
    }

    fn params(&mut self) -> Vec<f32> {
        params::flatten_params(self)
    }

    fn set_params(&mut self, p: &[f32]) {
        params::unflatten_params(self, p);
    }

    fn loss_and_grad(&mut self, batch: &Batch) -> (f32, Vec<f32>) {
        params::zero_grads(self);
        let fwd = taco_trace::quiet_span!("nn.forward");
        let logits = self.forward(batch.inputs());
        fwd.finish();
        let (loss, grad_logits) = softmax_cross_entropy(&logits, batch.targets());
        let bwd = taco_trace::quiet_span!("nn.backward");
        self.backward(&grad_logits);
        bwd.finish();
        (loss, params::flatten_grads(self))
    }

    fn loss_and_accuracy(&mut self, batch: &Batch) -> (f32, f32) {
        let logits = self.forward(batch.inputs());
        let (loss, _) = softmax_cross_entropy(&logits, batch.targets());
        let acc = count_correct(&logits, batch.targets()) as f32 / batch.len() as f32;
        (loss, acc)
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone_mlp())
    }
}

impl Mlp {
    fn clone_mlp(&self) -> Mlp {
        Mlp {
            layers: self.layers.clone(),
            relus: self.relus.clone(),
            in_features: self.in_features,
            classes: self.classes,
            hidden: self.hidden.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Mlp, Batch) {
        let mut rng = Prng::seed_from_u64(7);
        let m = Mlp::new(3, &[5, 4], 2, &mut rng);
        let x = Tensor::randn([4, 3], 1.0, &mut rng);
        (m, Batch::new(x, vec![0, 1, 1, 0]))
    }

    #[test]
    fn param_roundtrip() {
        let (mut m, _) = tiny();
        let p = m.params();
        assert_eq!(p.len(), m.param_count());
        let doubled: Vec<f32> = p.iter().map(|x| x * 2.0).collect();
        m.set_params(&doubled);
        assert_eq!(m.params(), doubled);
    }

    #[test]
    fn paper_adult_shape() {
        let mut rng = Prng::seed_from_u64(1);
        let mut m = Mlp::paper_adult(14, 2, &mut rng);
        // 14*32+32 + 32*16+16 + 16*8+8 + 8*2+2 = 480+528+136+18
        assert_eq!(m.param_count(), 480 + 528 + 136 + 18);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (mut m, batch) = tiny();
        let (_, grad) = m.loss_and_grad(&batch);
        let base = m.params();
        let eps = 1e-2f32;
        // Spot-check a spread of parameter coordinates.
        let n = base.len();
        for &i in &[0, n / 3, n / 2, 2 * n / 3, n - 1] {
            let mut p = base.clone();
            p[i] += eps;
            m.set_params(&p);
            let (up, _) = m.loss_and_accuracy(&batch);
            p[i] -= 2.0 * eps;
            m.set_params(&p);
            let (dn, _) = m.loss_and_accuracy(&batch);
            let fd = (up - dn) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 2e-2,
                "param {i}: fd {fd} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn sgd_reduces_loss() {
        let (mut m, batch) = tiny();
        let (l0, _) = m.loss_and_accuracy(&batch);
        for _ in 0..50 {
            let (_, g) = m.loss_and_grad(&batch);
            let mut p = m.params();
            taco_tensor::ops::axpy(&mut p, -0.5, &g);
            m.set_params(&p);
        }
        let (l1, _) = m.loss_and_accuracy(&batch);
        assert!(l1 < l0 * 0.5, "loss did not drop: {l0} -> {l1}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = Prng::seed_from_u64(9);
        let mut r2 = Prng::seed_from_u64(9);
        let mut a = Mlp::new(4, &[6], 3, &mut r1);
        let mut b = Mlp::new(4, &[6], 3, &mut r2);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn clone_model_is_independent() {
        let (mut m, batch) = tiny();
        let mut c = m.clone_model();
        assert_eq!(c.params(), m.params());
        let zeros = vec![0.0; c.param_count()];
        c.set_params(&zeros);
        assert_ne!(c.params(), m.params());
        let (_, acc) = c.loss_and_accuracy(&batch);
        assert!(acc >= 0.0);
    }
}
