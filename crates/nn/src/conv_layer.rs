//! A single 2-D convolution layer applied per sample.

use crate::params::{HasParams, ParamBlock};
use taco_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dSpec};
use taco_tensor::{Prng, Tensor};

/// One convolutional layer (weights `[out_ch, in_ch·k·k]`) applied to
/// NCHW samples one at a time, caching each sample's `im2col` matrix
/// for the backward pass.
///
/// The owning model drives the per-sample loop: call
/// [`ConvLayer::begin_batch`], then `forward_sample` for each sample in
/// order, then `backward_sample` with matching indices.
#[derive(Debug, Clone)]
pub struct ConvLayer {
    weight: ParamBlock,
    bias: ParamBlock,
    spec: Conv2dSpec,
    cols: Vec<Tensor>,
}

impl ConvLayer {
    /// Creates the layer with Kaiming-uniform initialization.
    pub fn new(spec: Conv2dSpec, rng: &mut Prng) -> Self {
        let fan_in = spec.in_channels * spec.kernel * spec.kernel;
        let limit = (1.0 / fan_in as f32).sqrt();
        ConvLayer {
            weight: ParamBlock::new(Tensor::rand_uniform(
                [spec.out_channels, fan_in],
                limit,
                rng,
            )),
            bias: ParamBlock::new(Tensor::rand_uniform([spec.out_channels], limit, rng)),
            spec,
            cols: Vec::new(),
        }
    }

    /// The layer's geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// Clears per-sample caches; call once before each batch.
    pub fn begin_batch(&mut self) {
        self.cols.clear();
    }

    /// Convolves one `[in_ch, h, w]` sample, caching its patch matrix.
    pub fn forward_sample(&mut self, input: &[f32], h: usize, w: usize) -> Vec<f32> {
        let (out, cols) = conv2d_forward(
            input,
            h,
            w,
            &self.weight.value,
            self.bias.value.data(),
            &self.spec,
        );
        self.cols.push(cols);
        out
    }

    /// Backward pass for forward sample `idx`; accumulates weight/bias
    /// gradients and returns the input gradient. Each index may be used
    /// once per batch (the cached patch matrix is consumed).
    ///
    /// # Panics
    ///
    /// Panics if `idx` was not forwarded this batch.
    pub fn backward_sample(
        &mut self,
        idx: usize,
        grad_out: &[f32],
        h: usize,
        w: usize,
    ) -> Vec<f32> {
        let cols = std::mem::take(&mut self.cols[idx]);
        conv2d_backward(
            grad_out,
            h,
            w,
            &self.weight.value,
            &cols,
            &self.spec,
            &mut self.weight.grad,
            self.bias.grad.data_mut(),
        )
    }
}

impl HasParams for ConvLayer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{flatten_grads, param_count};

    #[test]
    fn forward_backward_shapes() {
        let mut rng = Prng::seed_from_u64(1);
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 3,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut layer = ConvLayer::new(spec, &mut rng);
        assert_eq!(param_count(&mut layer), 3 * 2 * 9 + 3);
        layer.begin_batch();
        let x = vec![0.5f32; 2 * 4 * 4];
        let y = layer.forward_sample(&x, 4, 4);
        assert_eq!(y.len(), 3 * 4 * 4);
        let gin = layer.backward_sample(0, &vec![1.0; y.len()], 4, 4);
        assert_eq!(gin.len(), x.len());
        assert!(flatten_grads(&mut layer).iter().any(|&g| g != 0.0));
    }
}
