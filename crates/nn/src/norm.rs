//! Group normalization.
//!
//! `TinyResNet` uses GroupNorm rather than BatchNorm: it is
//! batch-size-independent, which matters in federated learning where
//! clients train on small, skewed mini-batches (BatchNorm's running
//! statistics are themselves a known source of client drift, which
//! would confound the over-correction effect the paper studies).

use crate::params::{HasParams, ParamBlock};
use taco_tensor::Tensor;

const EPS: f32 = 1e-5;

/// Group normalization over `[channels, spatial]` feature maps with a
/// learnable per-channel affine transform.
#[derive(Debug, Clone)]
pub struct GroupNorm {
    gamma: ParamBlock,
    beta: ParamBlock,
    groups: usize,
    channels: usize,
    // Per-sample caches from the last forward pass.
    cache: Vec<SampleCache>,
}

#[derive(Debug, Clone)]
struct SampleCache {
    normalized: Vec<f32>,
    inv_std: Vec<f32>,
}

impl GroupNorm {
    /// Creates a GroupNorm layer.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is not divisible by `groups`.
    pub fn new(channels: usize, groups: usize) -> Self {
        assert!(groups > 0, "groups must be positive");
        assert_eq!(
            channels % groups,
            0,
            "channels {channels} not divisible by groups {groups}"
        );
        GroupNorm {
            gamma: ParamBlock::new(Tensor::full([channels], 1.0)),
            beta: ParamBlock::new(Tensor::zeros([channels])),
            groups,
            channels,
            cache: Vec::new(),
        }
    }

    /// Clears cached activations (start of a new forward pass).
    pub fn reset_cache(&mut self) {
        self.cache.clear();
    }

    /// Normalizes one sample's `[channels, hw]` feature map in place
    /// and appends its cache entry.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not a multiple of the channel count.
    pub fn forward_sample(&mut self, x: &mut [f32]) {
        assert_eq!(x.len() % self.channels, 0, "feature map size mismatch");
        let hw = x.len() / self.channels;
        let group_ch = self.channels / self.groups;
        let group_len = group_ch * hw;
        let mut normalized = vec![0.0f32; x.len()];
        let mut inv_std = vec![0.0f32; self.groups];
        for g in 0..self.groups {
            let span = &x[g * group_len..(g + 1) * group_len];
            let mean = span.iter().sum::<f32>() / group_len as f32;
            let var = span.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / group_len as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std[g] = istd;
            for (i, &v) in span.iter().enumerate() {
                normalized[g * group_len + i] = (v - mean) * istd;
            }
        }
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();
        for c in 0..self.channels {
            for s in 0..hw {
                let i = c * hw + s;
                x[i] = gamma[c] * normalized[i] + beta[c];
            }
        }
        self.cache.push(SampleCache {
            normalized,
            inv_std,
        });
    }

    /// Backward pass for sample `idx` (in forward order): transforms
    /// `grad` (gradient w.r.t. the layer output) into the gradient
    /// w.r.t. the layer input, in place, and accumulates γ/β gradients.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has no cache entry or sizes mismatch.
    pub fn backward_sample(&mut self, idx: usize, grad: &mut [f32]) {
        let cache = &self.cache[idx];
        assert_eq!(grad.len(), cache.normalized.len(), "gradient size mismatch");
        let hw = grad.len() / self.channels;
        let group_ch = self.channels / self.groups;
        let group_len = group_ch * hw;
        let gamma = self.gamma.value.data().to_vec();
        // Accumulate per-channel affine gradients.
        {
            let ggamma = self.gamma.grad.data_mut();
            for c in 0..self.channels {
                let mut s = 0.0;
                for sp in 0..hw {
                    s += grad[c * hw + sp] * cache.normalized[c * hw + sp];
                }
                ggamma[c] += s;
            }
        }
        {
            let gbeta = self.beta.grad.data_mut();
            for c in 0..self.channels {
                gbeta[c] += grad[c * hw..(c + 1) * hw].iter().sum::<f32>();
            }
        }
        // Gradient w.r.t. normalized values.
        let mut gnorm = vec![0.0f32; grad.len()];
        for c in 0..self.channels {
            for sp in 0..hw {
                gnorm[c * hw + sp] = grad[c * hw + sp] * gamma[c];
            }
        }
        // Within-group whitening backward.
        for g in 0..self.groups {
            let lo = g * group_len;
            let hi = lo + group_len;
            let gn = &gnorm[lo..hi];
            let xn = &cache.normalized[lo..hi];
            let mean_g = gn.iter().sum::<f32>() / group_len as f32;
            let mean_gx = gn.iter().zip(xn).map(|(a, b)| a * b).sum::<f32>() / group_len as f32;
            let istd = cache.inv_std[g];
            for i in 0..group_len {
                grad[lo + i] = istd * (gn[i] - mean_g - xn[i] * mean_gx);
            }
        }
    }
}

impl HasParams for GroupNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_tensor::Prng;

    #[test]
    fn forward_normalizes_groups() {
        let mut gn = GroupNorm::new(4, 2);
        let mut rng = Prng::seed_from_u64(1);
        let mut x: Vec<f32> = (0..4 * 9).map(|_| rng.normal_f32() * 3.0 + 1.0).collect();
        gn.forward_sample(&mut x);
        // After the identity affine (γ=1, β=0) each group has ~zero
        // mean and ~unit variance.
        for g in 0..2 {
            let span = &x[g * 18..(g + 1) * 18];
            let mean = span.iter().sum::<f32>() / 18.0;
            let var = span.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 18.0;
            assert!(mean.abs() < 1e-4, "group {g} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "group {g} var {var}");
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let channels = 4;
        let hw = 3;
        let mut rng = Prng::seed_from_u64(2);
        let x0: Vec<f32> = (0..channels * hw).map(|_| rng.normal_f32()).collect();
        // Random (fixed) downstream gradient for a general test.
        let gout: Vec<f32> = (0..channels * hw).map(|_| rng.normal_f32()).collect();
        let loss = |gn: &mut GroupNorm, x: &[f32]| -> f32 {
            gn.reset_cache();
            let mut y = x.to_vec();
            gn.forward_sample(&mut y);
            y.iter().zip(&gout).map(|(a, b)| a * b).sum()
        };
        let mut gn = GroupNorm::new(channels, 2);
        // Non-trivial affine parameters.
        gn.gamma
            .value
            .data_mut()
            .copy_from_slice(&[1.5, 0.5, 2.0, 1.0]);
        gn.beta
            .value
            .data_mut()
            .copy_from_slice(&[0.1, -0.2, 0.0, 0.3]);
        let _ = loss(&mut gn, &x0);
        let mut grad = gout.clone();
        gn.backward_sample(0, &mut grad);

        let eps = 1e-2f32;
        for i in 0..x0.len() {
            let mut p = x0.clone();
            p[i] += eps;
            let up = loss(&mut gn, &p);
            p[i] -= 2.0 * eps;
            let dn = loss(&mut gn, &p);
            let fd = (up - dn) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 2e-2,
                "input {i}: fd {fd} vs {}",
                grad[i]
            );
        }
    }

    #[test]
    fn affine_param_gradients_match_finite_differences() {
        let channels = 2;
        let hw = 4;
        let mut rng = Prng::seed_from_u64(3);
        let x0: Vec<f32> = (0..channels * hw).map(|_| rng.normal_f32()).collect();
        let mut gn = GroupNorm::new(channels, 1);
        gn.reset_cache();
        let mut y = x0.clone();
        gn.forward_sample(&mut y);
        let mut grad = vec![1.0f32; x0.len()];
        gn.backward_sample(0, &mut grad);
        let ggamma = gn.gamma.grad.data().to_vec();
        let eps = 1e-3f32;
        #[allow(clippy::needless_range_loop)] // c indexes three parallel structures
        for c in 0..channels {
            let mut up_gn = gn.clone();
            up_gn.gamma.value.data_mut()[c] += eps;
            up_gn.reset_cache();
            let mut yu = x0.clone();
            up_gn.forward_sample(&mut yu);
            let mut dn_gn = gn.clone();
            dn_gn.gamma.value.data_mut()[c] -= eps;
            dn_gn.reset_cache();
            let mut yd = x0.clone();
            dn_gn.forward_sample(&mut yd);
            let fd = (yu.iter().sum::<f32>() - yd.iter().sum::<f32>()) / (2.0 * eps);
            assert!(
                (fd - ggamma[c]).abs() < 1e-2,
                "gamma {c}: {fd} vs {}",
                ggamma[c]
            );
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_group_count_panics() {
        let _ = GroupNorm::new(6, 4);
    }
}
