//! The paper's image CNN: two 5×5 convolutions and three
//! fully-connected layers with ReLU activations (Table IV cites the
//! CNN of Li et al., "Federated learning on non-IID data silos").

use crate::activation::Relu;
use crate::batch::Batch;
use crate::conv_layer::ConvLayer;
use crate::dense::Dense;
use crate::loss::{count_correct, softmax_cross_entropy};
use crate::model::Model;
use crate::params::{self, HasParams, ParamBlock};
use taco_tensor::conv::{maxpool2d_backward, maxpool2d_forward, Conv2dSpec};
use taco_tensor::{Prng, Tensor};

/// The paper's CNN: `conv(5×5) → ReLU → maxpool(2) → conv(5×5) → ReLU →
/// maxpool(2) → fc → ReLU → fc → ReLU → fc`.
///
/// Works on square inputs with any channel count; see
/// [`PaperCnn::for_image`] for the constructor used by the experiment
/// harness.
pub struct PaperCnn {
    conv1: ConvLayer,
    conv2: ConvLayer,
    fc1: Dense,
    fc2: Dense,
    fc3: Dense,
    relu_fc1: Relu,
    relu_fc2: Relu,
    image: ImageGeom,
    classes: usize,
    // Per-sample activation caches.
    sample_caches: Vec<SampleCache>,
}

#[derive(Debug, Clone, Copy)]
struct ImageGeom {
    side: usize,
    c1_out: usize,
    c1_side: usize,
    p1_side: usize,
    c2_out: usize,
    c2_side: usize,
    p2_side: usize,
}

struct SampleCache {
    relu1_mask: Vec<bool>,
    pool1_arg: Vec<usize>,
    relu2_mask: Vec<bool>,
    pool2_arg: Vec<usize>,
}

impl PaperCnn {
    /// Creates the CNN for square `side × side` images with `channels`
    /// input channels and `classes` output classes, using `filters`
    /// feature maps in the first conv (doubled in the second) and
    /// `hidden` units in the first FC layer (halved in the second).
    ///
    /// # Panics
    ///
    /// Panics if the image is too small for two 5×5 convs + 2×2 pools
    /// (side must be at least 16).
    pub fn new(
        channels: usize,
        side: usize,
        classes: usize,
        filters: usize,
        hidden: usize,
        rng: &mut Prng,
    ) -> Self {
        assert!(side >= 16, "PaperCnn needs side >= 16, got {side}");
        let c1_spec = Conv2dSpec {
            in_channels: channels,
            out_channels: filters,
            kernel: 5,
            stride: 1,
            padding: 0,
        };
        let c1_side = side - 4;
        let p1_side = c1_side / 2;
        let c2_spec = Conv2dSpec {
            in_channels: filters,
            out_channels: filters * 2,
            kernel: 5,
            stride: 1,
            padding: 0,
        };
        let c2_side = p1_side - 4;
        let p2_side = c2_side / 2;
        let flat = filters * 2 * p2_side * p2_side;
        let image = ImageGeom {
            side,
            c1_out: filters,
            c1_side,
            p1_side,
            c2_out: filters * 2,
            c2_side,
            p2_side,
        };
        PaperCnn {
            conv1: ConvLayer::new(c1_spec, rng),
            conv2: ConvLayer::new(c2_spec, rng),
            fc1: Dense::new(flat, hidden, rng),
            fc2: Dense::new(hidden, hidden / 2, rng),
            fc3: Dense::new(hidden / 2, classes, rng),
            relu_fc1: Relu::new(),
            relu_fc2: Relu::new(),
            image,
            classes,
            sample_caches: Vec::new(),
        }
    }

    /// Convenience constructor with the default widths used by the
    /// experiment harness (8 filters, 64 hidden units).
    pub fn for_image(channels: usize, side: usize, classes: usize, rng: &mut Prng) -> Self {
        PaperCnn::new(channels, side, classes, 8, 64, rng)
    }

    /// Output class count.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Runs the convolutional trunk for every sample and returns the
    /// flattened features `[batch, flat]`, populating per-sample caches.
    fn forward_trunk(&mut self, batch: &Batch) -> Tensor {
        let g = self.image;
        let b = batch.len();
        let flat = g.c2_out * g.p2_side * g.p2_side;
        self.sample_caches.clear();
        self.conv1.begin_batch();
        self.conv2.begin_batch();
        let mut features = Tensor::zeros([b, flat]);
        for i in 0..b {
            let x = batch.sample(i);
            let mut a1 = self.conv1.forward_sample(x, g.side, g.side);
            let relu1_mask: Vec<bool> = a1.iter().map(|&v| v > 0.0).collect();
            for v in &mut a1 {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            let (p1, pool1_arg) = maxpool2d_forward(&a1, g.c1_out, g.c1_side, g.c1_side, 2, 2);
            let mut a2 = self.conv2.forward_sample(&p1, g.p1_side, g.p1_side);
            let relu2_mask: Vec<bool> = a2.iter().map(|&v| v > 0.0).collect();
            for v in &mut a2 {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            let (p2, pool2_arg) = maxpool2d_forward(&a2, g.c2_out, g.c2_side, g.c2_side, 2, 2);
            features.row_mut(i).copy_from_slice(&p2);
            self.sample_caches.push(SampleCache {
                relu1_mask,
                pool1_arg,
                relu2_mask,
                pool2_arg,
            });
        }
        features
    }

    fn forward_logits(&mut self, batch: &Batch) -> Tensor {
        let features = self.forward_trunk(batch);
        let h1 = self.fc1.forward(&features);
        let h1 = self.relu_fc1.forward(&h1);
        let h2 = self.fc2.forward(&h1);
        let h2 = self.relu_fc2.forward(&h2);
        self.fc3.forward(&h2)
    }

    fn backward(&mut self, grad_logits: &Tensor) {
        let g = self.image;
        let mut gr = self.fc3.backward(grad_logits);
        gr = self.relu_fc2.backward(&gr);
        gr = self.fc2.backward(&gr);
        gr = self.relu_fc1.backward(&gr);
        let gfeat = self.fc1.backward(&gr);
        let b = gfeat.dims()[0];
        for i in 0..b {
            let cache = &self.sample_caches[i];
            // Unpool 2.
            let a2_len = g.c2_out * g.c2_side * g.c2_side;
            let mut ga2 = maxpool2d_backward(gfeat.row(i), &cache.pool2_arg, g.c2_out, a2_len);
            for (v, &m) in ga2.iter_mut().zip(&cache.relu2_mask) {
                if !m {
                    *v = 0.0;
                }
            }
            let gp1 = self.conv2.backward_sample(i, &ga2, g.p1_side, g.p1_side);
            // Unpool 1.
            let a1_len = g.c1_out * g.c1_side * g.c1_side;
            let mut ga1 = maxpool2d_backward(&gp1, &cache.pool1_arg, g.c1_out, a1_len);
            for (v, &m) in ga1.iter_mut().zip(&cache.relu1_mask) {
                if !m {
                    *v = 0.0;
                }
            }
            let _ = self.conv1.backward_sample(i, &ga1, g.side, g.side);
        }
    }

    fn clone_cnn(&self) -> PaperCnn {
        PaperCnn {
            conv1: self.conv1.clone(),
            conv2: self.conv2.clone(),
            fc1: self.fc1.clone(),
            fc2: self.fc2.clone(),
            fc3: self.fc3.clone(),
            relu_fc1: Relu::new(),
            relu_fc2: Relu::new(),
            image: self.image,
            classes: self.classes,
            sample_caches: Vec::new(),
        }
    }
}

impl HasParams for PaperCnn {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        self.conv1.visit_params(f);
        self.conv2.visit_params(f);
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
        self.fc3.visit_params(f);
    }
}

impl Model for PaperCnn {
    fn param_count(&mut self) -> usize {
        params::param_count(self)
    }

    fn params(&mut self) -> Vec<f32> {
        params::flatten_params(self)
    }

    fn set_params(&mut self, p: &[f32]) {
        params::unflatten_params(self, p);
    }

    fn loss_and_grad(&mut self, batch: &Batch) -> (f32, Vec<f32>) {
        params::zero_grads(self);
        let fwd = taco_trace::quiet_span!("nn.forward");
        let logits = self.forward_logits(batch);
        fwd.finish();
        let (loss, grad_logits) = softmax_cross_entropy(&logits, batch.targets());
        let bwd = taco_trace::quiet_span!("nn.backward");
        self.backward(&grad_logits);
        bwd.finish();
        (loss, params::flatten_grads(self))
    }

    fn loss_and_accuracy(&mut self, batch: &Batch) -> (f32, f32) {
        let logits = self.forward_logits(batch);
        let (loss, _) = softmax_cross_entropy(&logits, batch.targets());
        let acc = count_correct(&logits, batch.targets()) as f32 / batch.len() as f32;
        (loss, acc)
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone_cnn())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (PaperCnn, Batch) {
        let mut rng = Prng::seed_from_u64(5);
        let m = PaperCnn::new(1, 16, 3, 2, 8, &mut rng);
        let x = Tensor::randn([2, 1, 16, 16], 1.0, &mut rng);
        (m, Batch::new(x, vec![0, 2]))
    }

    #[test]
    fn forward_shapes() {
        let (mut m, batch) = tiny();
        let logits = m.forward_logits(&batch);
        assert_eq!(logits.dims(), &[2, 3]);
    }

    #[test]
    fn param_roundtrip() {
        let (mut m, _) = tiny();
        let p = m.params();
        assert_eq!(p.len(), m.param_count());
        let shifted: Vec<f32> = p.iter().map(|x| x + 0.5).collect();
        m.set_params(&shifted);
        assert_eq!(m.params(), shifted);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (mut m, batch) = tiny();
        let (_, grad) = m.loss_and_grad(&batch);
        let base = m.params();
        let eps = 1e-2f32;
        let n = base.len();
        // One coordinate from each layer region.
        for &i in &[0, 30, n / 4, n / 2, 3 * n / 4, n - 1] {
            let mut p = base.clone();
            p[i] += eps;
            m.set_params(&p);
            let (up, _) = m.loss_and_accuracy(&batch);
            p[i] -= 2.0 * eps;
            m.set_params(&p);
            let (dn, _) = m.loss_and_accuracy(&batch);
            let fd = (up - dn) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 3e-2,
                "param {i}: fd {fd} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn sgd_reduces_loss() {
        let (mut m, batch) = tiny();
        let (l0, _) = m.loss_and_accuracy(&batch);
        for _ in 0..30 {
            let (_, g) = m.loss_and_grad(&batch);
            let mut p = m.params();
            taco_tensor::ops::axpy(&mut p, -0.2, &g);
            m.set_params(&p);
        }
        let (l1, _) = m.loss_and_accuracy(&batch);
        assert!(l1 < l0, "loss did not drop: {l0} -> {l1}");
    }

    #[test]
    fn for_image_28x28_works() {
        let mut rng = Prng::seed_from_u64(6);
        let mut m = PaperCnn::for_image(1, 28, 10, &mut rng);
        let x = Tensor::randn([1, 1, 28, 28], 1.0, &mut rng);
        let b = Batch::new(x, vec![7]);
        let (loss, grad) = m.loss_and_grad(&b);
        assert!(loss.is_finite());
        assert!(taco_tensor::ops::all_finite(&grad));
    }

    #[test]
    #[should_panic(expected = "side >= 16")]
    fn too_small_image_panics() {
        let mut rng = Prng::seed_from_u64(7);
        let _ = PaperCnn::new(1, 10, 2, 2, 8, &mut rng);
    }
}
