//! Neural networks with manual backpropagation for the TACO reproduction.
//!
//! The paper trains four model families (Table IV): an MLP with hidden
//! layers 32-16-8 on tabular data, a CNN with two 5×5 convolutions and
//! three fully-connected layers on image data, ResNet18 on CIFAR-100,
//! and an LSTM on the Shakespeare next-character task. This crate
//! rebuilds all four from scratch on top of [`taco_tensor`]:
//!
//! - [`Mlp`] — the paper's 32-16-8 tabular model.
//! - [`PaperCnn`] — the 2×(5×5 conv) + 3×FC image model.
//! - [`TinyResNet`] — a residual CNN with GroupNorm standing in for
//!   ResNet18 at laptop scale (see DESIGN.md §3 for the substitution
//!   argument).
//! - [`CharLstm`] — an embedding + LSTM + projection next-symbol model.
//!
//! Every model implements [`Model`], whose contract is exactly what a
//! federated-learning algorithm needs: read/write the parameters as a
//! **flat `Vec<f32>`** and compute a mini-batch loss gradient as a flat
//! vector. No autograd tape exists; each layer implements its forward
//! and backward pass explicitly and is verified against finite
//! differences in its unit tests.
//!
//! # Example
//!
//! ```
//! use taco_nn::{Batch, Mlp, Model};
//! use taco_tensor::{Prng, Tensor};
//!
//! let mut rng = Prng::seed_from_u64(0);
//! let mut model = Mlp::new(4, &[8], 3, &mut rng);
//! let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
//! let batch = Batch::new(x, vec![0, 2]);
//! let (loss, grad) = model.loss_and_grad(&batch);
//! assert!(loss > 0.0);
//! assert_eq!(grad.len(), model.param_count());
//! ```

#![deny(missing_docs)]

pub mod activation;
pub mod batch;
pub mod cnn;
pub mod conv_layer;
pub mod dense;
pub mod loss;
pub mod lstm;
pub mod mlp;
pub mod model;
pub mod norm;
pub mod params;
pub mod resnet;

pub use batch::Batch;
pub use cnn::PaperCnn;
pub use lstm::CharLstm;
pub use mlp::Mlp;
pub use model::{evaluate, Model};
pub use params::ParamBlock;
pub use resnet::TinyResNet;
