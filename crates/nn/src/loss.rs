//! Softmax cross-entropy loss.

use taco_tensor::Tensor;

/// Computes mean softmax cross-entropy loss over a batch of logits and
/// the gradient with respect to the logits.
///
/// `logits` is `[batch, classes]`; `targets` holds one class index per
/// row. Returns `(loss, grad_logits)` where the gradient is already
/// divided by the batch size (so the model's flat gradient is the
/// gradient of the *mean* loss, matching Eq. 3 of the paper).
///
/// # Panics
///
/// Panics if shapes disagree or a target index is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().ndim(), 2, "logits must be 2-D");
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(b, targets.len(), "target count mismatch");
    let mut grad = Tensor::zeros(logits.shape().clone());
    let mut loss = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        let row = logits.row(i);
        assert!(t < c, "target {t} out of range for {c} classes");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for &x in row {
            denom += ((x - max) as f64).exp();
        }
        let log_denom = denom.ln();
        loss += log_denom - (row[t] - max) as f64;
        let grow = grad.row_mut(i);
        for (j, &x) in row.iter().enumerate() {
            let p = (((x - max) as f64).exp() / denom) as f32;
            grow[j] = (p - if j == t { 1.0 } else { 0.0 }) / b as f32;
        }
    }
    ((loss / b as f64) as f32, grad)
}

/// Softmax probabilities per row (used for inspection and tests).
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().ndim(), 2, "logits must be 2-D");
    let b = logits.dims()[0];
    let mut out = Tensor::zeros(logits.shape().clone());
    for i in 0..b {
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for &x in row {
            denom += ((x - max) as f64).exp();
        }
        for (o, &x) in out.row_mut(i).iter_mut().zip(row) {
            *o = (((x - max) as f64).exp() / denom) as f32;
        }
    }
    out
}

/// Counts correct argmax predictions.
pub fn count_correct(logits: &Tensor, targets: &[usize]) -> usize {
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    let mut correct = 0;
    for (i, &t) in targets.iter().enumerate().take(b) {
        let row = &logits.data()[i * c..(i + 1) * c];
        let mut best = 0;
        for (j, &x) in row.iter().enumerate() {
            if x > row[best] {
                best = j;
            }
        }
        if best == t {
            correct += 1;
        }
    }
    correct
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_tensor::Prng;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros([2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_loss_near_zero() {
        let mut logits = Tensor::zeros([1, 3]);
        logits.set(&[0, 1], 50.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-4);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = Prng::seed_from_u64(1);
        let logits = Tensor::randn([3, 5], 2.0, &mut rng);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 2, 4]);
        for i in 0..3 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6, "row {i} sums to {s}");
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = Prng::seed_from_u64(2);
        let logits = Tensor::randn([2, 3], 1.0, &mut rng);
        let targets = [1usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut p = logits.clone();
            p.data_mut()[i] += eps;
            let (up, _) = softmax_cross_entropy(&p, &targets);
            p.data_mut()[i] -= 2.0 * eps;
            let (dn, _) = softmax_cross_entropy(&p, &targets);
            let fd = (up - dn) / (2.0 * eps);
            assert!(
                (fd - grad.data()[i]).abs() < 1e-3,
                "logit {i}: fd {fd} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let mut rng = Prng::seed_from_u64(3);
        let logits = Tensor::randn([4, 6], 3.0, &mut rng);
        let p = softmax(&logits);
        for i in 0..4 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(i).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn extreme_logits_are_stable() {
        let logits = Tensor::from_vec(vec![1000.0, -1000.0], [1, 2]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn count_correct_counts() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, 0.0, 9.0, 1.0], [2, 3]);
        assert_eq!(count_correct(&logits, &[2, 1]), 2);
        assert_eq!(count_correct(&logits, &[0, 1]), 1);
    }
}
