//! Fully-connected (dense) layer.

use crate::params::{HasParams, ParamBlock};
use taco_tensor::{linalg, Prng, Tensor};

/// A fully-connected layer `y = x · Wᵀ + b`.
///
/// Weights are `[out, in]`, inputs `[batch, in]`, outputs
/// `[batch, out]`. The forward pass caches the input for the backward
/// pass; gradients accumulate into the layer's [`ParamBlock`]s.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: ParamBlock,
    bias: ParamBlock,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-uniform initialization
    /// (`U(-√(1/in), √(1/in))`), the PyTorch default the paper's models
    /// would have used.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Prng) -> Self {
        let limit = (1.0 / in_features as f32).sqrt();
        Dense {
            weight: ParamBlock::new(Tensor::rand_uniform(
                [out_features, in_features],
                limit,
                rng,
            )),
            bias: ParamBlock::new(Tensor::rand_uniform([out_features], limit, rng)),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Forward pass. Caches the input for [`Dense::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[batch, in_features]`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.dims().len(), 2, "dense input must be 2-D");
        assert_eq!(
            x.dims()[1],
            self.in_features(),
            "dense input width mismatch"
        );
        let mut y = linalg::matmul_nt(x, &self.weight.value);
        let (b, out) = (x.dims()[0], self.out_features());
        let bias = self.bias.value.data();
        for i in 0..b {
            let row = &mut y.data_mut()[i * out..(i + 1) * out];
            for (v, &bj) in row.iter_mut().zip(bias) {
                *v += bj;
            }
        }
        self.cached_input = Some(x.clone());
        y
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// input gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Dense::forward`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            // taco-check: allow(unwrap, documented `# Panics` contract — backward before forward is a caller bug the message names)
            .expect("Dense::backward called before forward");
        // dW = gᵀ · x, dB = column sums of g, dX = g · W.
        let dw = linalg::matmul_tn(grad_out, x);
        self.weight.grad += &dw;
        let (b, out) = (grad_out.dims()[0], self.out_features());
        for j in 0..out {
            let mut s = 0.0;
            for i in 0..b {
                s += grad_out.data()[i * out + j];
            }
            self.bias.grad.data_mut()[j] += s;
        }
        linalg::matmul(grad_out, &self.weight.value)
    }
}

impl HasParams for Dense {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{flatten_grads, flatten_params, param_count, unflatten_params};

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = Prng::seed_from_u64(1);
        let mut d = Dense::new(3, 2, &mut rng);
        // Zero the weights, keep bias, so output equals bias.
        let n = param_count(&mut d);
        let mut p = vec![0.0f32; n];
        p[6] = 0.5;
        p[7] = -0.5;
        unflatten_params(&mut d, &p);
        let y = d.forward(&Tensor::zeros([4, 3]));
        assert_eq!(y.dims(), &[4, 2]);
        assert_eq!(y.row(2), &[0.5, -0.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Prng::seed_from_u64(2);
        let mut d = Dense::new(4, 3, &mut rng);
        let x = Tensor::randn([2, 4], 1.0, &mut rng);
        // Loss = sum of outputs.
        let y = d.forward(&x);
        let gin = d.backward(&Tensor::full(y.shape().clone(), 1.0));
        let analytic = flatten_grads(&mut d);
        let base = flatten_params(&mut d);
        let eps = 1e-3f32;
        for i in 0..base.len() {
            let mut p = base.clone();
            p[i] += eps;
            unflatten_params(&mut d, &p);
            let up = d.forward(&x).sum();
            p[i] -= 2.0 * eps;
            unflatten_params(&mut d, &p);
            let dn = d.forward(&x).sum();
            let fd = (up - dn) / (2.0 * eps);
            assert!(
                (fd - analytic[i]).abs() < 1e-2,
                "param {i}: fd {fd} vs {}",
                analytic[i]
            );
        }
        // Input gradient: each input sees the column sums of W.
        unflatten_params(&mut d, &base);
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp.data_mut()[r * 4 + c] += eps;
                let up = d.forward(&xp).sum();
                xp.data_mut()[r * 4 + c] -= 2.0 * eps;
                let dn = d.forward(&xp).sum();
                let fd = (up - dn) / (2.0 * eps);
                assert!((fd - gin.at(&[r, c])).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn gradients_accumulate_across_calls() {
        let mut rng = Prng::seed_from_u64(3);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::randn([1, 2], 1.0, &mut rng);
        let g = Tensor::full([1, 2], 1.0);
        d.forward(&x);
        d.backward(&g);
        let once = flatten_grads(&mut d);
        d.forward(&x);
        d.backward(&g);
        let twice = flatten_grads(&mut d);
        for (a, b) in once.iter().zip(&twice) {
            assert!((2.0 * a - b).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_before_forward_panics() {
        let mut rng = Prng::seed_from_u64(4);
        let mut d = Dense::new(2, 2, &mut rng);
        let _ = d.backward(&Tensor::zeros([1, 2]));
    }
}
