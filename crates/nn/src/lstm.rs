//! Character-level LSTM for the Shakespeare-equivalent next-symbol
//! prediction task.
//!
//! Architecture: symbol embedding → single LSTM layer unrolled over the
//! input sequence → linear projection of the final hidden state to
//! next-symbol logits. This mirrors the LEAF Shakespeare model the
//! paper uses (embedding + LSTM + dense head) at reproduction scale.

use crate::batch::Batch;
use crate::loss::{count_correct, softmax_cross_entropy};
use crate::model::Model;
use crate::params::{self, HasParams, ParamBlock};
use taco_tensor::{linalg, Prng, Tensor};

/// Numerically-stable sigmoid on a slice, in place.
fn sigmoid_inplace(xs: &mut [f32]) {
    for x in xs {
        *x = crate::activation::sigmoid(*x);
    }
}

/// Per-timestep cache for backpropagation through time.
struct StepCache {
    /// Gate activations `[b, 4H]` in (i, f, g, o) order, post-nonlinearity.
    gates: Tensor,
    /// Cell state entering the step, `[b, H]`.
    c_prev: Tensor,
    /// Cell state leaving the step, `[b, H]`.
    c: Tensor,
    /// Hidden state entering the step, `[b, H]`.
    h_prev: Tensor,
    /// Embedded inputs for the step, `[b, E]`.
    x: Tensor,
    /// Symbol ids for the step (for embedding gradients).
    ids: Vec<usize>,
}

/// A single-layer character LSTM with an embedding table and a linear
/// output head.
///
/// Inputs are `[batch, seq_len]` symbol ids stored as `f32`; the target
/// is the symbol following the sequence.
#[derive(Clone)]
pub struct CharLstm {
    embed: ParamBlock,
    wx: ParamBlock,
    wh: ParamBlock,
    b: ParamBlock,
    w_out: ParamBlock,
    b_out: ParamBlock,
    vocab: usize,
    embed_dim: usize,
    hidden: usize,
}

impl Clone for StepCache {
    fn clone(&self) -> Self {
        StepCache {
            gates: self.gates.clone(),
            c_prev: self.c_prev.clone(),
            c: self.c.clone(),
            h_prev: self.h_prev.clone(),
            x: self.x.clone(),
            ids: self.ids.clone(),
        }
    }
}

impl CharLstm {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(vocab: usize, embed_dim: usize, hidden: usize, rng: &mut Prng) -> Self {
        assert!(
            vocab > 0 && embed_dim > 0 && hidden > 0,
            "degenerate LSTM shape"
        );
        let lim_e = (1.0 / embed_dim as f32).sqrt();
        let lim_h = (1.0 / hidden as f32).sqrt();
        CharLstm {
            embed: ParamBlock::new(Tensor::rand_uniform([vocab, embed_dim], lim_e, rng)),
            wx: ParamBlock::new(Tensor::rand_uniform([4 * hidden, embed_dim], lim_e, rng)),
            wh: ParamBlock::new(Tensor::rand_uniform([4 * hidden, hidden], lim_h, rng)),
            b: ParamBlock::new(Tensor::zeros([4 * hidden])),
            w_out: ParamBlock::new(Tensor::rand_uniform([vocab, hidden], lim_h, rng)),
            b_out: ParamBlock::new(Tensor::zeros([vocab])),
            vocab,
            embed_dim,
            hidden,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Looks up embeddings for one timestep's ids: `[b, E]`.
    fn embed_step(&self, ids: &[usize]) -> Tensor {
        let e = self.embed_dim;
        let mut out = Tensor::zeros([ids.len(), e]);
        for (i, &id) in ids.iter().enumerate() {
            assert!(
                id < self.vocab,
                "symbol id {id} out of vocab {}",
                self.vocab
            );
            out.row_mut(i)
                .copy_from_slice(&self.embed.value.data()[id * e..(id + 1) * e]);
        }
        out
    }

    /// Full forward pass; returns final logits and the BPTT caches.
    fn forward(&self, batch: &Batch) -> (Tensor, Vec<StepCache>) {
        let bsz = batch.len();
        let seq = batch.sample_len();
        let hid = self.hidden;
        let mut h = Tensor::zeros([bsz, hid]);
        let mut c = Tensor::zeros([bsz, hid]);
        let mut caches = Vec::with_capacity(seq);
        for t in 0..seq {
            let ids: Vec<usize> = (0..bsz)
                .map(|i| batch.sample(i)[t].round() as usize)
                .collect();
            let x = self.embed_step(&ids);
            // Pre-activations: [b, 4H]
            let mut gates = linalg::matmul_nt(&x, &self.wx.value);
            let hh = linalg::matmul_nt(&h, &self.wh.value);
            gates += &hh;
            for i in 0..bsz {
                let row = gates.row_mut(i);
                for (j, v) in row.iter_mut().enumerate() {
                    *v += self.b.value.data()[j];
                }
            }
            // Nonlinearities per gate block (i, f, g, o).
            let c_prev = c.clone();
            let h_prev = h.clone();
            for i in 0..bsz {
                let row = gates.row_mut(i);
                let (ii, rest) = row.split_at_mut(hid);
                let (ff, rest) = rest.split_at_mut(hid);
                let (gg, oo) = rest.split_at_mut(hid);
                sigmoid_inplace(ii);
                sigmoid_inplace(ff);
                for v in gg.iter_mut() {
                    *v = v.tanh();
                }
                sigmoid_inplace(oo);
                let crow = c.row_mut(i);
                for j in 0..hid {
                    crow[j] = ff[j] * crow[j] + ii[j] * gg[j];
                }
                let hrow = h.row_mut(i);
                for j in 0..hid {
                    hrow[j] = oo[j] * crow[j].tanh();
                }
            }
            caches.push(StepCache {
                gates,
                c_prev,
                c: c.clone(),
                h_prev,
                x,
                ids,
            });
        }
        // Output head on the final hidden state.
        let mut logits = linalg::matmul_nt(&h, &self.w_out.value);
        for i in 0..bsz {
            let row = logits.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v += self.b_out.value.data()[j];
            }
        }
        (logits, caches)
    }

    /// Backpropagation through time given the loss gradient w.r.t. the
    /// final logits.
    fn backward(&mut self, grad_logits: &Tensor, caches: &[StepCache]) {
        let bsz = grad_logits.dims()[0];
        let hid = self.hidden;
        let last_h = {
            // Reconstruct final h from the last cache (o * tanh(c)).
            // taco-check: allow(unwrap, forward pushes one cache per timestep and seq_len ≥ 1; an empty cache list is a caller bug named by the message)
            let cache = caches.last().expect("empty sequence");
            let mut h = Tensor::zeros([bsz, hid]);
            for i in 0..bsz {
                let gates = cache.gates.row(i);
                let crow = cache.c.row(i);
                let hrow = h.row_mut(i);
                for j in 0..hid {
                    hrow[j] = gates[3 * hid + j] * crow[j].tanh();
                }
            }
            h
        };
        // Head gradients.
        let dwout = linalg::matmul_tn(grad_logits, &last_h);
        self.w_out.grad += &dwout;
        for j in 0..self.vocab {
            let mut s = 0.0;
            for i in 0..bsz {
                s += grad_logits.data()[i * self.vocab + j];
            }
            self.b_out.grad.data_mut()[j] += s;
        }
        let mut dh = linalg::matmul(grad_logits, &self.w_out.value);
        let mut dc = Tensor::zeros([bsz, hid]);
        // Walk timesteps in reverse.
        for cache in caches.iter().rev() {
            // Gate pre-activation gradients [b, 4H].
            let mut da = Tensor::zeros([bsz, 4 * hid]);
            for i in 0..bsz {
                let gates = cache.gates.row(i);
                let crow = cache.c.row(i);
                let cprev = cache.c_prev.row(i);
                let dhrow = dh.row(i).to_vec();
                let dcrow = dc.row_mut(i);
                let darow = da.row_mut(i);
                for j in 0..hid {
                    let ii = gates[j];
                    let ff = gates[hid + j];
                    let gg = gates[2 * hid + j];
                    let oo = gates[3 * hid + j];
                    let tc = crow[j].tanh();
                    let dxo = dhrow[j] * tc;
                    let dcj = dcrow[j] + dhrow[j] * oo * (1.0 - tc * tc);
                    darow[j] = dcj * gg * ii * (1.0 - ii);
                    darow[hid + j] = dcj * cprev[j] * ff * (1.0 - ff);
                    darow[2 * hid + j] = dcj * ii * (1.0 - gg * gg);
                    darow[3 * hid + j] = dxo * oo * (1.0 - oo);
                    // Cell gradient flowing to the previous step.
                    dcrow[j] = dcj * ff;
                }
            }
            // Parameter gradients.
            let dwx = linalg::matmul_tn(&da, &cache.x);
            self.wx.grad += &dwx;
            let dwh = linalg::matmul_tn(&da, &cache.h_prev);
            self.wh.grad += &dwh;
            for j in 0..4 * hid {
                let mut s = 0.0;
                for i in 0..bsz {
                    s += da.data()[i * 4 * hid + j];
                }
                self.b.grad.data_mut()[j] += s;
            }
            // Input gradients → embedding rows.
            let dx = linalg::matmul(&da, &self.wx.value);
            let e = self.embed_dim;
            for (i, &id) in cache.ids.iter().enumerate() {
                let ge = &mut self.embed.grad.data_mut()[id * e..(id + 1) * e];
                for (gj, &dj) in ge.iter_mut().zip(dx.row(i)) {
                    *gj += dj;
                }
            }
            // Hidden gradient flowing to the previous step.
            dh = linalg::matmul(&da, &self.wh.value);
        }
    }
}

impl HasParams for CharLstm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        f(&mut self.embed);
        f(&mut self.wx);
        f(&mut self.wh);
        f(&mut self.b);
        f(&mut self.w_out);
        f(&mut self.b_out);
    }
}

impl Model for CharLstm {
    fn param_count(&mut self) -> usize {
        params::param_count(self)
    }

    fn params(&mut self) -> Vec<f32> {
        params::flatten_params(self)
    }

    fn set_params(&mut self, p: &[f32]) {
        params::unflatten_params(self, p);
    }

    fn loss_and_grad(&mut self, batch: &Batch) -> (f32, Vec<f32>) {
        params::zero_grads(self);
        let fwd = taco_trace::quiet_span!("nn.forward");
        let (logits, caches) = self.forward(batch);
        fwd.finish();
        let (loss, grad_logits) = softmax_cross_entropy(&logits, batch.targets());
        let bwd = taco_trace::quiet_span!("nn.backward");
        self.backward(&grad_logits, &caches);
        bwd.finish();
        (loss, params::flatten_grads(self))
    }

    fn loss_and_accuracy(&mut self, batch: &Batch) -> (f32, f32) {
        let (logits, _) = self.forward(batch);
        let (loss, _) = softmax_cross_entropy(&logits, batch.targets());
        let acc = count_correct(&logits, batch.targets()) as f32 / batch.len() as f32;
        (loss, acc)
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (CharLstm, Batch) {
        let mut rng = Prng::seed_from_u64(13);
        let m = CharLstm::new(6, 4, 5, &mut rng);
        // Two sequences of length 3.
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], [2, 3]);
        (m, Batch::new(x, vec![3, 0]))
    }

    #[test]
    fn forward_shapes() {
        let (m, batch) = tiny();
        let (logits, caches) = m.forward(&batch);
        assert_eq!(logits.dims(), &[2, 6]);
        assert_eq!(caches.len(), 3);
    }

    #[test]
    fn param_roundtrip() {
        let (mut m, _) = tiny();
        let p = m.params();
        assert_eq!(p.len(), m.param_count());
        let shifted: Vec<f32> = p.iter().map(|x| x - 0.25).collect();
        m.set_params(&shifted);
        assert_eq!(m.params(), shifted);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (mut m, batch) = tiny();
        let (_, grad) = m.loss_and_grad(&batch);
        let base = m.params();
        let eps = 1e-2f32;
        let n = base.len();
        for &i in &[0, n / 6, n / 3, n / 2, 2 * n / 3, 5 * n / 6, n - 1] {
            let mut p = base.clone();
            p[i] += eps;
            m.set_params(&p);
            let (up, _) = m.loss_and_accuracy(&batch);
            p[i] -= 2.0 * eps;
            m.set_params(&p);
            let (dn, _) = m.loss_and_accuracy(&batch);
            let fd = (up - dn) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 2e-2,
                "param {i}: fd {fd} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn sgd_learns_constant_mapping() {
        // Every sequence maps to target symbol 2; the model should fit it.
        let mut rng = Prng::seed_from_u64(17);
        let mut m = CharLstm::new(5, 3, 6, &mut rng);
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 0.0], [2, 3]);
        let batch = Batch::new(x, vec![2, 2]);
        let (l0, _) = m.loss_and_accuracy(&batch);
        for _ in 0..120 {
            let (_, g) = m.loss_and_grad(&batch);
            let mut p = m.params();
            taco_tensor::ops::axpy(&mut p, -0.5, &g);
            m.set_params(&p);
        }
        let (l1, acc) = m.loss_and_accuracy(&batch);
        assert!(l1 < l0 * 0.2, "loss did not drop enough: {l0} -> {l1}");
        assert_eq!(acc, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn out_of_vocab_id_panics() {
        let (m, _) = tiny();
        let x = Tensor::from_vec(vec![9.0], [1, 1]);
        let batch = Batch::new(x, vec![0]);
        let _ = m.forward(&batch);
    }
}
