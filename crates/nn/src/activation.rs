//! Element-wise activation layers.

use taco_tensor::Tensor;

/// ReLU activation with cached mask for the backward pass.
///
/// Stateless apart from the cache, so one instance can be reused across
/// forward/backward pairs but not interleaved.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }

    /// Forward pass: `max(x, 0)` element-wise.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.mask = x.data().iter().map(|&v| v > 0.0).collect();
        x.map(|v| v.max(0.0))
    }

    /// In-place flat-slice variant used by the CNN/ResNet inner loops.
    pub fn forward_flat(&mut self, x: &mut [f32]) {
        self.mask = x.iter().map(|&v| v > 0.0).collect();
        for v in x.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Backward pass: zeroes gradients where the input was negative.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched length.
    pub fn backward(&self, grad_out: &Tensor) -> Tensor {
        assert_eq!(
            grad_out.len(),
            self.mask.len(),
            "Relu::backward length mismatch (was forward called?)"
        );
        let data = grad_out
            .data()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_out.shape().clone())
    }

    /// Flat-slice variant of [`Relu::backward`], in place.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the last forward call.
    pub fn backward_flat(&self, grad: &mut [f32]) {
        assert_eq!(
            grad.len(),
            self.mask.len(),
            "Relu::backward_flat length mismatch"
        );
        for (g, &m) in grad.iter_mut().zip(&self.mask) {
            if !m {
                *g = 0.0;
            }
        }
    }
}

/// Numerically-stable sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Hyperbolic tangent (thin wrapper for symmetry with [`sigmoid`]).
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], [3]);
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = r.backward(&Tensor::from_vec(vec![5.0, 5.0, 5.0], [3]));
        assert_eq!(g.data(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn relu_flat_matches_tensor_path() {
        let mut r1 = Relu::new();
        let mut r2 = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, 3.0, -0.5, 1.0], [4]);
        let y = r1.forward(&x);
        let mut flat = x.data().to_vec();
        r2.forward_flat(&mut flat);
        assert_eq!(y.data(), &flat[..]);
        let mut g = vec![1.0; 4];
        r2.backward_flat(&mut g);
        let gt = r1.backward(&Tensor::full([4], 1.0));
        assert_eq!(gt.data(), &g[..]);
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(50.0) > 0.999);
        assert!(sigmoid(-50.0) < 0.001);
        // Stability at extreme inputs.
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn backward_without_forward_panics() {
        let r = Relu::new();
        let _ = r.backward(&Tensor::zeros([2]));
    }
}
