//! Flat parameter-vector plumbing.
//!
//! Federated-learning algorithms exchange model state as flat `f32`
//! vectors. Every layer in this crate stores its parameters and
//! gradient accumulators as [`ParamBlock`]s and exposes them through
//! [`HasParams::visit_params`]; the helpers here flatten and restore
//! whole models through that single hook.

use taco_tensor::Tensor;

/// One parameter tensor together with its gradient accumulator.
///
/// The gradient has the same shape as the value and is accumulated by
/// the layer's backward pass until [`ParamBlock::zero_grad`] is called.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamBlock {
    /// Current parameter values.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl ParamBlock {
    /// Creates a block from an initial value, with a zero gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        ParamBlock { value, grad }
    }

    /// Number of scalar parameters in the block.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` if the block holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Resets the gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }
}

/// Implemented by every layer and model that owns parameters.
pub trait HasParams {
    /// Calls `f` on each parameter block in a fixed, deterministic
    /// order. The order defines the layout of the flat vectors used by
    /// [`flatten_params`] and friends, so it must never depend on
    /// runtime state.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamBlock));
}

/// Total number of scalar parameters.
pub fn param_count(target: &mut dyn HasParams) -> usize {
    let mut n = 0;
    target.visit_params(&mut |b| n += b.len());
    n
}

/// Flattens all parameter values into one vector.
pub fn flatten_params(target: &mut dyn HasParams) -> Vec<f32> {
    let mut out = Vec::new();
    target.visit_params(&mut |b| out.extend_from_slice(b.value.data()));
    out
}

/// Flattens all accumulated gradients into one vector.
pub fn flatten_grads(target: &mut dyn HasParams) -> Vec<f32> {
    let mut out = Vec::new();
    target.visit_params(&mut |b| out.extend_from_slice(b.grad.data()));
    out
}

/// Writes a flat vector back into the parameter blocks.
///
/// # Panics
///
/// Panics if `flat.len()` differs from the model's parameter count.
pub fn unflatten_params(target: &mut dyn HasParams, flat: &[f32]) {
    let mut offset = 0;
    target.visit_params(&mut |b| {
        let n = b.len();
        assert!(
            offset + n <= flat.len(),
            "flat parameter vector too short: need more than {} values",
            flat.len()
        );
        b.value
            .data_mut()
            .copy_from_slice(&flat[offset..offset + n]);
        offset += n;
    });
    assert_eq!(
        offset,
        flat.len(),
        "flat parameter vector too long: expected {offset} values, got {}",
        flat.len()
    );
}

/// Zeroes every gradient accumulator.
pub fn zero_grads(target: &mut dyn HasParams) {
    target.visit_params(&mut |b| b.zero_grad());
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoBlocks {
        a: ParamBlock,
        b: ParamBlock,
    }

    impl HasParams for TwoBlocks {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    fn fixture() -> TwoBlocks {
        TwoBlocks {
            a: ParamBlock::new(Tensor::from_vec(vec![1.0, 2.0], [2])),
            b: ParamBlock::new(Tensor::from_vec(vec![3.0, 4.0, 5.0], [3])),
        }
    }

    #[test]
    fn count_and_flatten() {
        let mut t = fixture();
        assert_eq!(param_count(&mut t), 5);
        assert_eq!(flatten_params(&mut t), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn unflatten_roundtrip() {
        let mut t = fixture();
        let new = vec![9.0, 8.0, 7.0, 6.0, 5.0];
        unflatten_params(&mut t, &new);
        assert_eq!(flatten_params(&mut t), new);
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn unflatten_too_long_panics() {
        let mut t = fixture();
        unflatten_params(&mut t, &[0.0; 6]);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn unflatten_too_short_panics() {
        let mut t = fixture();
        unflatten_params(&mut t, &[0.0; 3]);
    }

    #[test]
    fn zero_grads_clears_accumulators() {
        let mut t = fixture();
        t.a.grad.data_mut()[0] = 3.0;
        zero_grads(&mut t);
        assert_eq!(flatten_grads(&mut t), vec![0.0; 5]);
    }
}
