//! The `Model` trait: the contract between neural networks and the
//! federated-learning algorithms.

use crate::batch::Batch;

/// A trainable model exposed as a flat parameter vector.
///
/// This is the entire interface `taco-core`'s FL algorithms see. An
/// algorithm reads the current parameters, asks for a mini-batch
/// gradient, applies its own (algorithm-specific) update rule to the
/// flat vector and writes the result back.
///
/// Implementations must be deterministic: the same parameters and the
/// same batch always yield the same loss and gradient. They must also
/// be `Send + Sync` plain data (no interior mutability), so the
/// simulator can clone a shared prototype from worker threads.
pub trait Model: Send + Sync {
    /// Number of scalar parameters.
    ///
    /// Takes `&mut self` because parameter traversal reuses the same
    /// mutable visitor the backward pass uses; no state is changed.
    fn param_count(&mut self) -> usize;

    /// Current parameters, flattened in a fixed layout.
    ///
    /// Takes `&mut self` for the same reason as [`Model::param_count`];
    /// no state is changed.
    fn params(&mut self) -> Vec<f32>;

    /// Overwrites the parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.param_count()`.
    fn set_params(&mut self, params: &[f32]);

    /// Computes the mean mini-batch loss and its gradient with respect
    /// to the parameters, flattened in the same layout as
    /// [`Model::params`].
    fn loss_and_grad(&mut self, batch: &Batch) -> (f32, Vec<f32>);

    /// Computes loss and classification accuracy on a batch without
    /// touching gradients.
    fn loss_and_accuracy(&mut self, batch: &Batch) -> (f32, f32);

    /// Creates a fresh boxed clone of this model (same architecture and
    /// parameters). Used by the simulator to hand each client thread
    /// its own instance.
    fn clone_model(&self) -> Box<dyn Model>;
}

impl Model for Box<dyn Model> {
    fn param_count(&mut self) -> usize {
        (**self).param_count()
    }

    fn params(&mut self) -> Vec<f32> {
        (**self).params()
    }

    fn set_params(&mut self, params: &[f32]) {
        (**self).set_params(params)
    }

    fn loss_and_grad(&mut self, batch: &Batch) -> (f32, Vec<f32>) {
        (**self).loss_and_grad(batch)
    }

    fn loss_and_accuracy(&mut self, batch: &Batch) -> (f32, f32) {
        (**self).loss_and_accuracy(batch)
    }

    fn clone_model(&self) -> Box<dyn Model> {
        (**self).clone_model()
    }
}

/// Evaluates a model over a list of batches, returning `(mean loss,
/// accuracy)` weighted by batch size.
///
/// Returns `(0.0, 0.0)` for an empty batch list.
pub fn evaluate(model: &mut dyn Model, batches: &[Batch]) -> (f32, f32) {
    let mut total = 0usize;
    let mut loss_sum = 0.0f64;
    let mut acc_sum = 0.0f64;
    for b in batches {
        let (loss, acc) = model.loss_and_accuracy(b);
        loss_sum += loss as f64 * b.len() as f64;
        acc_sum += acc as f64 * b.len() as f64;
        total += b.len();
    }
    if total == 0 {
        (0.0, 0.0)
    } else {
        (
            (loss_sum / total as f64) as f32,
            (acc_sum / total as f64) as f32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Mlp;
    use taco_tensor::{Prng, Tensor};

    #[test]
    fn evaluate_weights_by_batch_size() {
        let mut rng = Prng::seed_from_u64(1);
        let mut m = Mlp::new(2, &[4], 2, &mut rng);
        let b1 = Batch::new(Tensor::zeros([1, 2]), vec![0]);
        let b3 = Batch::new(Tensor::zeros([3, 2]), vec![0, 0, 0]);
        let (l1, _) = m.loss_and_accuracy(&b1);
        let (l, _) = evaluate(&mut m, &[b1, b3]);
        // All-zero inputs: every sample has identical loss.
        assert!((l - l1).abs() < 1e-6);
    }

    #[test]
    fn evaluate_empty_is_zero() {
        let mut rng = Prng::seed_from_u64(2);
        let mut m = Mlp::new(2, &[4], 2, &mut rng);
        assert_eq!(evaluate(&mut m, &[]), (0.0, 0.0));
    }
}
