//! A residual CNN with GroupNorm, standing in for the paper's ResNet18.
//!
//! ResNet18 at full CIFAR scale is far beyond what a CPU-only
//! reproduction can train inside the experiment budget, but the paper
//! only relies on two properties of the architecture: it is a deep
//! residual network (skip connections, staged downsampling) and it is
//! markedly more expensive per local update than the plain CNN (which
//! drives the Table III / Fig. 5 overhead comparisons). `TinyResNet`
//! preserves both: a conv stem plus three residual stages with
//! GroupNorm and a global-average-pool head — the same optimization
//! structure at laptop scale. See DESIGN.md §3.

use crate::batch::Batch;
use crate::conv_layer::ConvLayer;
use crate::dense::Dense;
use crate::loss::{count_correct, softmax_cross_entropy};
use crate::model::Model;
use crate::norm::GroupNorm;
use crate::params::{self, HasParams, ParamBlock};
use taco_tensor::conv::{global_avg_pool, global_avg_pool_backward, Conv2dSpec};
use taco_tensor::{Prng, Tensor};

/// One pre-activation residual block:
/// `out = ReLU( GN2(conv2(ReLU(GN1(conv1(x))))) + skip(x) )`
/// where `skip` is the identity (same shape) or a strided 1×1
/// convolution (downsampling blocks).
#[derive(Clone)]
struct ResBlock {
    conv1: ConvLayer,
    gn1: GroupNorm,
    conv2: ConvLayer,
    gn2: GroupNorm,
    skip: Option<ConvLayer>,
    in_side: usize,
    out_side: usize,
    // Per-sample caches.
    relu1_masks: Vec<Vec<bool>>,
    out_masks: Vec<Vec<bool>>,
}

impl ResBlock {
    fn new(
        in_channels: usize,
        out_channels: usize,
        in_side: usize,
        stride: usize,
        groups: usize,
        rng: &mut Prng,
    ) -> Self {
        let conv1 = ConvLayer::new(
            Conv2dSpec {
                in_channels,
                out_channels,
                kernel: 3,
                stride,
                padding: 1,
            },
            rng,
        );
        let out_side = (in_side + 2 - 3) / stride + 1;
        let conv2 = ConvLayer::new(
            Conv2dSpec {
                in_channels: out_channels,
                out_channels,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            rng,
        );
        let skip = if stride != 1 || in_channels != out_channels {
            Some(ConvLayer::new(
                Conv2dSpec {
                    in_channels,
                    out_channels,
                    kernel: 1,
                    stride,
                    padding: 0,
                },
                rng,
            ))
        } else {
            None
        };
        ResBlock {
            conv1,
            gn1: GroupNorm::new(out_channels, groups),
            conv2,
            gn2: GroupNorm::new(out_channels, groups),
            skip,
            in_side,
            out_side,
            relu1_masks: Vec::new(),
            out_masks: Vec::new(),
        }
    }

    fn begin_batch(&mut self) {
        self.conv1.begin_batch();
        self.conv2.begin_batch();
        if let Some(s) = &mut self.skip {
            s.begin_batch();
        }
        self.gn1.reset_cache();
        self.gn2.reset_cache();
        self.relu1_masks.clear();
        self.out_masks.clear();
    }

    fn forward_sample(&mut self, x: &[f32]) -> Vec<f32> {
        let side = self.in_side;
        let mut a = self.conv1.forward_sample(x, side, side);
        self.gn1.forward_sample(&mut a);
        let mask1: Vec<bool> = a.iter().map(|&v| v > 0.0).collect();
        for v in &mut a {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let mut b = self.conv2.forward_sample(&a, self.out_side, self.out_side);
        self.gn2.forward_sample(&mut b);
        let shortcut = match &mut self.skip {
            Some(s) => s.forward_sample(x, side, side),
            None => x.to_vec(),
        };
        for (bv, sv) in b.iter_mut().zip(&shortcut) {
            *bv += sv;
        }
        let mask_out: Vec<bool> = b.iter().map(|&v| v > 0.0).collect();
        for v in &mut b {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        self.relu1_masks.push(mask1);
        self.out_masks.push(mask_out);
        b
    }

    fn backward_sample(&mut self, idx: usize, grad_out: &[f32]) -> Vec<f32> {
        let mut g = grad_out.to_vec();
        for (v, &m) in g.iter_mut().zip(&self.out_masks[idx]) {
            if !m {
                *v = 0.0;
            }
        }
        // Branch gradient through GN2, conv2, ReLU1, GN1, conv1.
        let mut gb = g.clone();
        self.gn2.backward_sample(idx, &mut gb);
        let mut ga = self
            .conv2
            .backward_sample(idx, &gb, self.out_side, self.out_side);
        for (v, &m) in ga.iter_mut().zip(&self.relu1_masks[idx]) {
            if !m {
                *v = 0.0;
            }
        }
        self.gn1.backward_sample(idx, &mut ga);
        let gx_branch = self
            .conv1
            .backward_sample(idx, &ga, self.in_side, self.in_side);
        // Shortcut gradient.
        let gx_skip = match &mut self.skip {
            Some(s) => s.backward_sample(idx, &g, self.in_side, self.in_side),
            None => g,
        };
        gx_branch.iter().zip(&gx_skip).map(|(a, b)| a + b).collect()
    }
}

impl HasParams for ResBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        self.conv1.visit_params(f);
        self.gn1.visit_params(f);
        self.conv2.visit_params(f);
        self.gn2.visit_params(f);
        if let Some(s) = &mut self.skip {
            s.visit_params(f);
        }
    }
}

/// A small residual network: conv stem, three residual stages with
/// doubling widths and spatial downsampling, global average pooling,
/// and a linear classifier head.
#[derive(Clone)]
pub struct TinyResNet {
    stem: ConvLayer,
    stem_gn: GroupNorm,
    blocks: Vec<ResBlock>,
    head: Dense,
    side: usize,
    classes: usize,
    stem_masks: Vec<Vec<bool>>,
    final_side: usize,
    final_channels: usize,
}

impl TinyResNet {
    /// Creates the network for square `side × side` inputs.
    ///
    /// `width` is the stem channel count; stages use `width`,
    /// `2·width`, `4·width` channels. `side` must be divisible by 4
    /// (two stride-2 stages).
    ///
    /// # Panics
    ///
    /// Panics if `side % 4 != 0` or `width < 4`.
    pub fn new(channels: usize, side: usize, classes: usize, width: usize, rng: &mut Prng) -> Self {
        assert_eq!(side % 4, 0, "side must be divisible by 4, got {side}");
        assert!(width >= 4, "width must be at least 4, got {width}");
        let groups = 2;
        let stem = ConvLayer::new(
            Conv2dSpec {
                in_channels: channels,
                out_channels: width,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            rng,
        );
        let blocks = vec![
            ResBlock::new(width, width, side, 1, groups, rng),
            ResBlock::new(width, 2 * width, side, 2, groups, rng),
            ResBlock::new(2 * width, 4 * width, side / 2, 2, groups, rng),
        ];
        let final_side = side / 4;
        let final_channels = 4 * width;
        TinyResNet {
            stem,
            stem_gn: GroupNorm::new(width, groups),
            blocks,
            head: Dense::new(final_channels, classes, rng),
            side,
            classes,
            stem_masks: Vec::new(),
            final_side,
            final_channels,
        }
    }

    /// The default configuration used by the CIFAR-100-equivalent
    /// experiments (width 8).
    pub fn for_image(channels: usize, side: usize, classes: usize, rng: &mut Prng) -> Self {
        TinyResNet::new(channels, side, classes, 8, rng)
    }

    /// Output class count.
    pub fn classes(&self) -> usize {
        self.classes
    }

    fn forward_logits(&mut self, batch: &Batch) -> Tensor {
        let b = batch.len();
        self.stem.begin_batch();
        self.stem_gn.reset_cache();
        self.stem_masks.clear();
        for blk in &mut self.blocks {
            blk.begin_batch();
        }
        let hw = self.final_side * self.final_side;
        let mut pooled = Tensor::zeros([b, self.final_channels]);
        for i in 0..b {
            let x = batch.sample(i);
            let mut a = self.stem.forward_sample(x, self.side, self.side);
            self.stem_gn.forward_sample(&mut a);
            let mask: Vec<bool> = a.iter().map(|&v| v > 0.0).collect();
            for v in &mut a {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            self.stem_masks.push(mask);
            let mut h = a;
            for blk in &mut self.blocks {
                h = blk.forward_sample(&h);
            }
            let p = global_avg_pool(&h, self.final_channels, hw);
            pooled.row_mut(i).copy_from_slice(&p);
        }
        self.head.forward(&pooled)
    }

    fn backward(&mut self, grad_logits: &Tensor) {
        let gpool = self.head.backward(grad_logits);
        let b = gpool.dims()[0];
        let hw = self.final_side * self.final_side;
        for i in 0..b {
            let mut g = global_avg_pool_backward(gpool.row(i), self.final_channels, hw);
            for bi in (0..self.blocks.len()).rev() {
                g = self.blocks[bi].backward_sample(i, &g);
            }
            for (v, &m) in g.iter_mut().zip(&self.stem_masks[i]) {
                if !m {
                    *v = 0.0;
                }
            }
            self.stem_gn.backward_sample(i, &mut g);
            let _ = self.stem.backward_sample(i, &g, self.side, self.side);
        }
    }
}

impl HasParams for TinyResNet {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamBlock)) {
        self.stem.visit_params(f);
        self.stem_gn.visit_params(f);
        for blk in &mut self.blocks {
            blk.visit_params(f);
        }
        self.head.visit_params(f);
    }
}

impl Model for TinyResNet {
    fn param_count(&mut self) -> usize {
        params::param_count(self)
    }

    fn params(&mut self) -> Vec<f32> {
        params::flatten_params(self)
    }

    fn set_params(&mut self, p: &[f32]) {
        params::unflatten_params(self, p);
    }

    fn loss_and_grad(&mut self, batch: &Batch) -> (f32, Vec<f32>) {
        params::zero_grads(self);
        let fwd = taco_trace::quiet_span!("nn.forward");
        let logits = self.forward_logits(batch);
        fwd.finish();
        let (loss, grad_logits) = softmax_cross_entropy(&logits, batch.targets());
        let bwd = taco_trace::quiet_span!("nn.backward");
        self.backward(&grad_logits);
        bwd.finish();
        (loss, params::flatten_grads(self))
    }

    fn loss_and_accuracy(&mut self, batch: &Batch) -> (f32, f32) {
        let logits = self.forward_logits(batch);
        let (loss, _) = softmax_cross_entropy(&logits, batch.targets());
        let acc = count_correct(&logits, batch.targets()) as f32 / batch.len() as f32;
        (loss, acc)
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (TinyResNet, Batch) {
        let mut rng = Prng::seed_from_u64(11);
        let m = TinyResNet::new(1, 8, 4, 4, &mut rng);
        let x = Tensor::randn([2, 1, 8, 8], 1.0, &mut rng);
        (m, Batch::new(x, vec![1, 3]))
    }

    #[test]
    fn forward_shapes() {
        let (mut m, batch) = tiny();
        let logits = m.forward_logits(&batch);
        assert_eq!(logits.dims(), &[2, 4]);
    }

    #[test]
    fn param_roundtrip() {
        let (mut m, _) = tiny();
        let p = m.params();
        assert_eq!(p.len(), m.param_count());
        let shifted: Vec<f32> = p.iter().map(|x| x * 0.9 + 0.01).collect();
        m.set_params(&shifted);
        assert_eq!(m.params(), shifted);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (mut m, batch) = tiny();
        let (_, grad) = m.loss_and_grad(&batch);
        let base = m.params();
        let eps = 1e-2f32;
        let n = base.len();
        for &i in &[0, n / 5, n / 3, n / 2, 4 * n / 5, n - 1] {
            let mut p = base.clone();
            p[i] += eps;
            m.set_params(&p);
            let (up, _) = m.loss_and_accuracy(&batch);
            p[i] -= 2.0 * eps;
            m.set_params(&p);
            let (dn, _) = m.loss_and_accuracy(&batch);
            let fd = (up - dn) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 3e-2,
                "param {i}: fd {fd} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn sgd_reduces_loss() {
        let (mut m, batch) = tiny();
        let (l0, _) = m.loss_and_accuracy(&batch);
        for _ in 0..20 {
            let (_, g) = m.loss_and_grad(&batch);
            let mut p = m.params();
            taco_tensor::ops::axpy(&mut p, -0.3, &g);
            m.set_params(&p);
        }
        let (l1, _) = m.loss_and_accuracy(&batch);
        assert!(l1 < l0, "loss did not drop: {l0} -> {l1}");
    }

    #[test]
    fn clone_model_preserves_params() {
        let (mut m, _) = tiny();
        let mut c = m.clone_model();
        assert_eq!(c.params(), m.params());
    }
}
