//! Synthetic federated datasets and non-IID partitioners.
//!
//! The paper evaluates on eight datasets (Table IV). None of them can
//! be bundled offline, so this crate generates **synthetic equivalents
//! with matching shape and difficulty ordering** (the substitution
//! argument is in DESIGN.md §3: over-correction is driven by
//! label-distribution skew across clients, which the partitioners
//! below reproduce exactly, not by pixel statistics):
//!
//! - [`vision`] — class-prototype image generators standing in for
//!   MNIST, FMNIST, FEMNIST, SVHN, CIFAR-10 and CIFAR-100.
//! - [`tabular`] — a mixture-of-Gaussians binary task standing in for
//!   `adult`.
//! - [`text`] — per-client Markov-chain symbol streams standing in for
//!   the LEAF Shakespeare next-character task (naturally non-IID, like
//!   LEAF's per-role split).
//! - [`partition`] — the paper's partitioners: `Dir(φ)` label skew,
//!   the synthetic Group A/B/C label-diversity split (Table II), and
//!   IID.
//! - [`federated`] — a partitioned dataset bundle: one training shard
//!   per client plus a shared test set.
//!
//! # Example
//!
//! ```
//! use taco_data::{partition, vision, federated::FederatedDataset};
//! use taco_tensor::Prng;
//!
//! let mut rng = Prng::seed_from_u64(1);
//! let spec = vision::VisionSpec::mnist_like().with_sizes(200, 50);
//! let data = vision::generate(&spec, &mut rng);
//! let shards = partition::dirichlet(data.train.labels(), 4, 0.5, &mut rng);
//! let fed = FederatedDataset::from_partition(data.train, data.test, &shards);
//! assert_eq!(fed.num_clients(), 4);
//! ```

#![deny(missing_docs)]

pub mod dataset;
pub mod federated;
pub mod partition;
pub mod tabular;
pub mod text;
pub mod vision;

pub use dataset::{Dataset, TrainTest};
pub use federated::FederatedDataset;
