//! Non-IID partitioners.
//!
//! These implement the paper's three client-data layouts:
//!
//! - [`dirichlet`] — `Dir(φ)` label-distribution skew (Table IV uses
//!   φ ∈ {0.1, 0.2, 0.5}), the standard protocol of Li et al. and many
//!   FL studies: for every class, the class's samples are split across
//!   clients with Dirichlet-distributed proportions.
//! - [`synthetic_groups`] — the Group A/B/C split of Section IV-A /
//!   Table II: Group A clients see 10% of the labels, Group B 20%,
//!   Group C 50%, with the label subsets drawn at random per client.
//! - [`iid`] — uniform shuffle, the control setting.
//!
//! All partitioners return index shards that form a partition of the
//! input (every sample appears in exactly one shard; property-tested),
//! and every client is guaranteed at least one sample.

use taco_tensor::Prng;

/// Describes the paper's synthetic label-diversity groups (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiversityGroup {
    /// 10% of labels per client.
    A,
    /// 20% of labels per client.
    B,
    /// 50% of labels per client.
    C,
}

impl DiversityGroup {
    /// Fraction of the label space a client in this group sees.
    pub fn label_fraction(self) -> f64 {
        match self {
            DiversityGroup::A => 0.10,
            DiversityGroup::B => 0.20,
            DiversityGroup::C => 0.50,
        }
    }
}

fn count_classes(labels: &[usize]) -> usize {
    labels.iter().copied().max().map_or(0, |m| m + 1)
}

fn indices_by_class(labels: &[usize], classes: usize) -> Vec<Vec<usize>> {
    let mut by_class = vec![Vec::new(); classes];
    for (i, &l) in labels.iter().enumerate() {
        by_class[l].push(i);
    }
    by_class
}

/// Moves samples around so no shard is empty (steals one sample from
/// the largest shard for each empty one).
fn fix_empty_shards(shards: &mut [Vec<usize>]) {
    loop {
        let Some(empty) = shards.iter().position(|s| s.is_empty()) else {
            return;
        };
        // `empty` was found above, so `shards` is non-empty and
        // max_by_key must yield a winner; the let-else keeps this
        // panic-free either way.
        let Some(largest) = shards
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.len())
            .map(|(i, _)| i)
        else {
            return;
        };
        if shards[largest].len() <= 1 {
            // Not enough samples to cover all clients; leave remaining
            // shards empty rather than loop forever.
            return;
        }
        let Some(moved) = shards[largest].pop() else {
            return;
        };
        shards[empty].push(moved);
    }
}

/// IID partition: shuffles the indices and deals them round-robin.
///
/// # Panics
///
/// Panics if `n_clients` is zero.
pub fn iid(labels: &[usize], n_clients: usize, rng: &mut Prng) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "need at least one client");
    let mut idx: Vec<usize> = (0..labels.len()).collect();
    rng.shuffle(&mut idx);
    let mut shards = vec![Vec::new(); n_clients];
    for (pos, i) in idx.into_iter().enumerate() {
        shards[pos % n_clients].push(i);
    }
    shards
}

/// `Dir(φ)` label-skew partition.
///
/// For each class, draws client proportions from `Dirichlet(φ·1)` and
/// multinomially assigns that class's samples accordingly. Smaller `φ`
/// ⇒ more skew (each class concentrated on few clients).
///
/// # Panics
///
/// Panics if `n_clients` is zero or `phi <= 0`.
pub fn dirichlet(labels: &[usize], n_clients: usize, phi: f64, rng: &mut Prng) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "need at least one client");
    assert!(phi > 0.0, "phi must be positive, got {phi}");
    let classes = count_classes(labels);
    let mut shards = vec![Vec::new(); n_clients];
    for class_indices in indices_by_class(labels, classes) {
        if class_indices.is_empty() {
            continue;
        }
        let props = rng.dirichlet(phi, n_clients);
        for i in class_indices {
            shards[rng.categorical(&props)].push(i);
        }
    }
    fix_empty_shards(&mut shards);
    shards
}

/// Assigns each of `n_clients` clients to a diversity group, splitting
/// them as evenly as possible across A, B, C in order.
pub fn assign_groups(n_clients: usize) -> Vec<DiversityGroup> {
    (0..n_clients)
        .map(|i| match i * 3 / n_clients.max(1) {
            0 => DiversityGroup::A,
            1 => DiversityGroup::B,
            _ => DiversityGroup::C,
        })
        .collect()
}

/// The paper's synthetic Group A/B/C label-diversity partition
/// (Section IV-A): each client draws a random label subset whose size
/// is its group's fraction of the label space (at least one label);
/// each class's samples are then dealt uniformly among the clients
/// that own that label.
///
/// Returns the shards and the group assignment used.
///
/// # Panics
///
/// Panics if `n_clients` is zero.
pub fn synthetic_groups(
    labels: &[usize],
    n_clients: usize,
    rng: &mut Prng,
) -> (Vec<Vec<usize>>, Vec<DiversityGroup>) {
    assert!(n_clients > 0, "need at least one client");
    let classes = count_classes(labels);
    let groups = assign_groups(n_clients);
    // Draw each client's label subset.
    let mut owners: Vec<Vec<usize>> = vec![Vec::new(); classes]; // class -> clients
    let mut client_labels: Vec<Vec<usize>> = Vec::with_capacity(n_clients);
    for (c, g) in groups.iter().enumerate() {
        let k = ((classes as f64 * g.label_fraction()).round() as usize).max(1);
        let subset = rng.sample_indices(classes, k.min(classes));
        for &label in &subset {
            owners[label].push(c);
        }
        client_labels.push(subset);
    }
    // Every class needs at least one owner; orphaned classes go to a
    // random Group C client (most diverse data, least distortion).
    for (label, o) in owners.iter_mut().enumerate() {
        if o.is_empty() {
            let candidates: Vec<usize> = groups
                .iter()
                .enumerate()
                .filter(|(_, g)| **g == DiversityGroup::C)
                .map(|(i, _)| i)
                .collect();
            let pick = if candidates.is_empty() {
                rng.below(n_clients)
            } else {
                candidates[rng.below(candidates.len())]
            };
            o.push(pick);
            client_labels[pick].push(label);
        }
    }
    // Deal samples.
    let mut shards = vec![Vec::new(); n_clients];
    for (class, class_indices) in indices_by_class(labels, classes).into_iter().enumerate() {
        let o = &owners[class];
        if o.is_empty() {
            continue;
        }
        for i in class_indices {
            shards[o[rng.below(o.len())]].push(i);
        }
    }
    fix_empty_shards(&mut shards);
    (shards, groups)
}

/// A schedule of time-varying non-IID drift: the Dirichlet
/// concentration `φ` interpolates geometrically from `phi_start` to
/// `phi_end` over a run, and every `every` rounds the federation's
/// shards are re-drawn at the current `φ` (temporal label-distribution
/// drift — clients' local data changes character mid-run).
///
/// The schedule is pure data: the simulation runtime calls
/// [`DriftSchedule::repartition_at`] each round and performs the
/// re-partition itself with a seeded RNG, so drift is deterministic
/// and bit-identical at any thread count. `every == 0` makes the
/// schedule inert (no repartition ever fires).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSchedule {
    /// `φ` at round 0.
    pub phi_start: f64,
    /// `φ` at the final round.
    pub phi_end: f64,
    /// Re-partition cadence in rounds; `0` disables the schedule.
    pub every: usize,
    /// Total rounds of the run (fixes the interpolation endpoints).
    pub total_rounds: usize,
}

impl DriftSchedule {
    /// Creates a drift schedule.
    ///
    /// # Panics
    ///
    /// Panics if either `φ` endpoint is not positive and finite.
    pub fn new(phi_start: f64, phi_end: f64, every: usize, total_rounds: usize) -> Self {
        assert!(
            phi_start > 0.0 && phi_start.is_finite(),
            "phi_start must be positive and finite, got {phi_start}"
        );
        assert!(
            phi_end > 0.0 && phi_end.is_finite(),
            "phi_end must be positive and finite, got {phi_end}"
        );
        DriftSchedule {
            phi_start,
            phi_end,
            every,
            total_rounds,
        }
    }

    /// An inert schedule: never re-partitions.
    pub fn inert() -> Self {
        DriftSchedule::new(1.0, 1.0, 0, 0)
    }

    /// `true` when the schedule can never fire.
    pub fn is_inert(&self) -> bool {
        self.every == 0
    }

    /// The interpolated `φ` at `round`: geometric (log-space)
    /// interpolation, since Dirichlet skew responds to `φ`'s order of
    /// magnitude, clamped to the run's endpoints.
    pub fn phi_at(&self, round: usize) -> f64 {
        if self.total_rounds <= 1 {
            return self.phi_start;
        }
        let t = (round as f64 / (self.total_rounds - 1) as f64).clamp(0.0, 1.0);
        (self.phi_start.ln() * (1.0 - t) + self.phi_end.ln() * t).exp()
    }

    /// `Some(φ)` when the shards should be re-drawn at the start of
    /// `round` (never at round 0 — the initial partition stands).
    pub fn repartition_at(&self, round: usize) -> Option<f64> {
        if self.is_inert() || round == 0 || !round.is_multiple_of(self.every) {
            None
        } else {
            Some(self.phi_at(round))
        }
    }
}

/// Measures label-distribution skew of a partition: the mean total
/// variation distance between each shard's label distribution and the
/// global one. 0 = perfectly IID; approaches 1 under extreme skew.
pub fn skew_statistic(labels: &[usize], shards: &[Vec<usize>]) -> f64 {
    let classes = count_classes(labels);
    if classes == 0 || labels.is_empty() {
        return 0.0;
    }
    let mut global = vec![0.0f64; classes];
    for &l in labels {
        global[l] += 1.0;
    }
    for g in &mut global {
        *g /= labels.len() as f64;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for shard in shards {
        if shard.is_empty() {
            continue;
        }
        let mut local = vec![0.0f64; classes];
        for &i in shard {
            local[labels[i]] += 1.0;
        }
        for l in &mut local {
            *l /= shard.len() as f64;
        }
        let tv: f64 = global
            .iter()
            .zip(&local)
            .map(|(g, l)| (g - l).abs())
            .sum::<f64>()
            / 2.0;
        total += tv;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize, classes: usize) -> Vec<usize> {
        (0..n).map(|i| i % classes).collect()
    }

    fn assert_partition(n: usize, shards: &[Vec<usize>]) {
        let mut seen = vec![false; n];
        for s in shards {
            for &i in s {
                assert!(!seen[i], "sample {i} appears twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some sample lost");
    }

    #[test]
    fn iid_is_a_partition_with_even_shards() {
        let l = labels(103, 10);
        let mut rng = Prng::seed_from_u64(1);
        let shards = iid(&l, 5, &mut rng);
        assert_partition(103, &shards);
        for s in &shards {
            assert!(s.len() == 20 || s.len() == 21);
        }
    }

    #[test]
    fn dirichlet_is_a_partition() {
        let l = labels(500, 10);
        let mut rng = Prng::seed_from_u64(2);
        let shards = dirichlet(&l, 20, 0.5, &mut rng);
        assert_partition(500, &shards);
        assert!(shards.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn smaller_phi_is_more_skewed() {
        let l = labels(2000, 10);
        let mut skews = Vec::new();
        for &phi in &[0.1, 0.5, 5.0, 100.0] {
            let mut rng = Prng::seed_from_u64(3);
            let shards = dirichlet(&l, 10, phi, &mut rng);
            skews.push(skew_statistic(&l, &shards));
        }
        assert!(
            skews[0] > skews[1] && skews[1] > skews[2] && skews[2] > skews[3],
            "skew not monotone in phi: {skews:?}"
        );
    }

    #[test]
    fn iid_skew_is_near_zero() {
        let l = labels(2000, 10);
        let mut rng = Prng::seed_from_u64(4);
        let shards = iid(&l, 10, &mut rng);
        assert!(skew_statistic(&l, &shards) < 0.1);
    }

    #[test]
    fn groups_partition_and_diversity_ordering() {
        let l = labels(3000, 10);
        let mut rng = Prng::seed_from_u64(5);
        let (shards, groups) = synthetic_groups(&l, 21, &mut rng);
        assert_partition(3000, &shards);
        // Distinct label counts should increase from group A to C on
        // average.
        let mut avg = [0.0f64; 3];
        let mut cnt = [0usize; 3];
        for (c, g) in groups.iter().enumerate() {
            let mut seen = [false; 10];
            for &i in &shards[c] {
                seen[l[i]] = true;
            }
            let d = seen.iter().filter(|&&s| s).count() as f64;
            let gi = match g {
                DiversityGroup::A => 0,
                DiversityGroup::B => 1,
                DiversityGroup::C => 2,
            };
            avg[gi] += d;
            cnt[gi] += 1;
        }
        for i in 0..3 {
            avg[i] /= cnt[i] as f64;
        }
        assert!(
            avg[0] <= avg[1] && avg[1] < avg[2],
            "label diversity not ordered: {avg:?}"
        );
    }

    #[test]
    fn group_assignment_splits_evenly() {
        let g = assign_groups(21);
        let a = g.iter().filter(|x| **x == DiversityGroup::A).count();
        let b = g.iter().filter(|x| **x == DiversityGroup::B).count();
        let c = g.iter().filter(|x| **x == DiversityGroup::C).count();
        assert_eq!(a + b + c, 21);
        assert!(a.abs_diff(b) <= 1 && b.abs_diff(c) <= 1);
    }

    #[test]
    fn no_client_left_empty_even_under_extreme_skew() {
        let l = labels(60, 2);
        let mut rng = Prng::seed_from_u64(6);
        let shards = dirichlet(&l, 20, 0.05, &mut rng);
        assert!(shards.iter().all(|s| !s.is_empty()));
        assert_partition(60, &shards);
    }

    #[test]
    #[should_panic(expected = "phi must be positive")]
    fn zero_phi_panics() {
        let _ = dirichlet(&[0, 1], 2, 0.0, &mut Prng::seed_from_u64(0));
    }

    #[test]
    fn drift_schedule_interpolates_geometrically() {
        let d = DriftSchedule::new(0.5, 0.05, 4, 21);
        assert!((d.phi_at(0) - 0.5).abs() < 1e-12);
        assert!((d.phi_at(20) - 0.05).abs() < 1e-12);
        // Log-space midpoint: sqrt(0.5 · 0.05).
        let mid = d.phi_at(10);
        assert!((mid - (0.5f64 * 0.05).sqrt()).abs() < 1e-9, "mid {mid}");
        // Monotone toward the endpoint, clamped past it.
        assert!(d.phi_at(5) > d.phi_at(15));
        assert!((d.phi_at(40) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn drift_fires_on_cadence_but_not_round_zero() {
        let d = DriftSchedule::new(0.5, 0.1, 3, 10);
        assert!(!d.is_inert());
        assert_eq!(d.repartition_at(0), None);
        assert!(d.repartition_at(3).is_some());
        assert_eq!(d.repartition_at(4), None);
        assert!(d.repartition_at(6).is_some());
    }

    #[test]
    fn inert_drift_never_fires() {
        let d = DriftSchedule::inert();
        assert!(d.is_inert());
        for r in 0..50 {
            assert_eq!(d.repartition_at(r), None);
        }
    }

    #[test]
    #[should_panic(expected = "phi_end must be positive")]
    fn bad_drift_phi_panics() {
        let _ = DriftSchedule::new(0.5, 0.0, 1, 10);
    }
}
