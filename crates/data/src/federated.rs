//! Federated dataset bundles.

use crate::dataset::Dataset;

/// A federation's data: one training shard per client and a shared,
/// centralized test set (the paper evaluates global-model accuracy on
/// the dataset's standard test split).
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedDataset {
    clients: Vec<Dataset>,
    test: Dataset,
}

impl FederatedDataset {
    /// Creates a federation from per-client datasets and a test set.
    ///
    /// # Panics
    ///
    /// Panics if there are no clients, or any client's sample shape or
    /// class count differs from the test set's.
    pub fn new(clients: Vec<Dataset>, test: Dataset) -> Self {
        assert!(!clients.is_empty(), "federation needs at least one client");
        for (i, c) in clients.iter().enumerate() {
            assert_eq!(
                c.sample_dims(),
                test.sample_dims(),
                "client {i} sample shape differs from test set"
            );
            assert_eq!(
                c.classes(),
                test.classes(),
                "client {i} class count differs from test set"
            );
        }
        FederatedDataset { clients, test }
    }

    /// Creates a federation by slicing `train` according to index
    /// shards (one shard per client).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or indices are out of bounds.
    pub fn from_partition(train: Dataset, test: Dataset, shards: &[Vec<usize>]) -> Self {
        let clients = shards.iter().map(|s| train.subset(s)).collect();
        FederatedDataset::new(clients, test)
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Client `i`'s training shard.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn client(&self, i: usize) -> &Dataset {
        &self.clients[i]
    }

    /// All client shards.
    pub fn clients(&self) -> &[Dataset] {
        &self.clients
    }

    /// The shared test set.
    pub fn test(&self) -> &Dataset {
        &self.test
    }

    /// Total number of training samples across clients (the paper's
    /// `D`).
    pub fn total_train(&self) -> usize {
        self.clients.iter().map(Dataset::len).sum()
    }

    /// Per-client sample counts (the paper's `D_i`).
    pub fn client_sizes(&self) -> Vec<usize> {
        self.clients.iter().map(Dataset::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(n: usize) -> Dataset {
        Dataset::new(vec![0.0; n * 2], (0..n).map(|i| i % 2).collect(), &[2], 2)
    }

    #[test]
    fn from_partition_slices() {
        let train = Dataset::new(
            vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0],
            vec![0, 1, 0, 1],
            &[2],
            2,
        );
        let fed = FederatedDataset::from_partition(train, ds(3), &[vec![0, 2], vec![1, 3]]);
        assert_eq!(fed.num_clients(), 2);
        assert_eq!(fed.client(0).sample(1), &[2.0, 2.0]);
        assert_eq!(fed.total_train(), 4);
        assert_eq!(fed.client_sizes(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_federation_panics() {
        let _ = FederatedDataset::new(Vec::new(), ds(2));
    }

    #[test]
    #[should_panic(expected = "class count differs")]
    fn class_mismatch_panics() {
        let c = Dataset::new(vec![0.0; 4], vec![0, 1], &[2], 2);
        let t = Dataset::new(vec![0.0; 4], vec![0, 1], &[2], 3);
        let _ = FederatedDataset::new(vec![c], t);
    }
}
