//! Synthetic next-symbol text data standing in for LEAF Shakespeare.
//!
//! LEAF's Shakespeare task assigns each speaking role to one client and
//! predicts the next character of that role's lines — clients are
//! non-IID *by construction* because every role has its own style. The
//! equivalent here: every client owns a first-order Markov chain over a
//! shared alphabet, built as a mixture of one global chain and a
//! client-specific random chain. The mixture weight controls how
//! non-IID the federation is. Samples are windows of `seq_len` symbols
//! with the following symbol as the target.

use crate::dataset::Dataset;
use crate::federated::FederatedDataset;
use taco_tensor::Prng;

/// Stream tag splitting the corpus RNG for Markov-chain construction,
/// distinct from the per-client and test-set tags below so adding
/// clients never perturbs the shared global chain.
const CHAIN_STREAM_TAG: u64 = 0x7E;

/// Base stream tag for per-client window emission; client `c` draws
/// from `CLIENT_STREAM_TAG + c`, so tags `0x1000..0x1000+clients` are
/// reserved and must stay clear of every other tag in this crate.
const CLIENT_STREAM_TAG: u64 = 0x1000;

/// Stream tag for global test-set emission, above the per-client range
/// so any federation smaller than 4096 clients cannot collide with it.
const TEST_STREAM_TAG: u64 = 0x2000;

/// Parameters of the synthetic text corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct TextSpec {
    /// Dataset name used in reports.
    pub name: String,
    /// Alphabet size (LEAF Shakespeare uses a small character set).
    pub vocab: usize,
    /// Input window length.
    pub seq_len: usize,
    /// Number of clients (one "role" each).
    pub clients: usize,
    /// Training windows per client.
    pub train_per_client: usize,
    /// Test windows drawn from the global chain.
    pub test_n: usize,
    /// Weight of the client-specific chain in the mixture
    /// (0 = IID across clients, 1 = fully client-specific).
    pub style_weight: f64,
}

impl TextSpec {
    /// The Shakespeare-equivalent preset: 28-symbol alphabet, length-16
    /// windows, strongly client-specific styles.
    pub fn shakespeare_like(clients: usize) -> Self {
        TextSpec {
            name: "shakespeare".into(),
            vocab: 28,
            seq_len: 16,
            clients,
            train_per_client: 100,
            test_n: 400,
            style_weight: 0.6,
        }
    }

    /// Overrides the per-client/test sizes (builder style).
    pub fn with_sizes(mut self, train_per_client: usize, test_n: usize) -> Self {
        self.train_per_client = train_per_client;
        self.test_n = test_n;
        self
    }
}

/// A row-stochastic transition matrix over the alphabet.
fn random_chain(vocab: usize, rng: &mut Prng) -> Vec<Vec<f64>> {
    (0..vocab)
        .map(|_| {
            // Sparse-ish rows: a peaky Dirichlet makes chains distinctive.
            rng.dirichlet(0.3, vocab)
        })
        .collect()
}

fn mix(global: &[Vec<f64>], local: &[Vec<f64>], w: f64) -> Vec<Vec<f64>> {
    global
        .iter()
        .zip(local)
        .map(|(g, l)| {
            g.iter()
                .zip(l)
                .map(|(&gv, &lv)| (1.0 - w) * gv + w * lv)
                .collect()
        })
        .collect()
}

/// Emits `windows` (sequence, next-symbol) pairs from a chain.
fn emit(
    chain: &[Vec<f64>],
    vocab: usize,
    seq_len: usize,
    windows: usize,
    rng: &mut Prng,
) -> Dataset {
    let mut features = Vec::with_capacity(windows * seq_len);
    let mut labels = Vec::with_capacity(windows);
    let mut state = rng.below(vocab);
    for _ in 0..windows {
        for _ in 0..seq_len {
            features.push(state as f32);
            state = rng.categorical(&chain[state]);
        }
        labels.push(state);
        // The next window continues the stream (overlapping text, like
        // sliding windows over a play).
    }
    Dataset::new(features, labels, &[seq_len], vocab)
}

/// Generates a federated text corpus: one shard per client (its own
/// style) plus a global test set drawn from the shared chain.
pub fn generate(spec: &TextSpec, rng: &mut Prng) -> FederatedDataset {
    assert!(spec.vocab > 1, "vocab must exceed 1");
    assert!(spec.clients > 0, "need at least one client");
    let mut chain_rng = rng.split(CHAIN_STREAM_TAG);
    let global = random_chain(spec.vocab, &mut chain_rng);
    let mut shards = Vec::with_capacity(spec.clients);
    for c in 0..spec.clients {
        let local = random_chain(spec.vocab, &mut chain_rng);
        let mixed = mix(&global, &local, spec.style_weight);
        let mut client_rng = rng.split(CLIENT_STREAM_TAG + c as u64);
        shards.push(emit(
            &mixed,
            spec.vocab,
            spec.seq_len,
            spec.train_per_client,
            &mut client_rng,
        ));
    }
    let mut test_rng = rng.split(TEST_STREAM_TAG);
    let test = emit(
        &global,
        spec.vocab,
        spec.seq_len,
        spec.test_n,
        &mut test_rng,
    );
    FederatedDataset::new(shards, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_vocab() {
        let mut rng = Prng::seed_from_u64(1);
        let spec = TextSpec::shakespeare_like(4).with_sizes(30, 50);
        let fed = generate(&spec, &mut rng);
        assert_eq!(fed.num_clients(), 4);
        assert_eq!(fed.client(0).len(), 30);
        assert_eq!(fed.test().len(), 50);
        assert_eq!(fed.client(0).sample_dims(), &[16]);
        // Symbols stay in range.
        for i in 0..fed.client(1).len() {
            for &s in fed.client(1).sample(i) {
                assert!((s as usize) < 28);
            }
        }
    }

    #[test]
    fn chains_are_row_stochastic() {
        let mut rng = Prng::seed_from_u64(2);
        let chain = random_chain(10, &mut rng);
        for row in &chain {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn clients_have_distinct_label_distributions() {
        let mut rng = Prng::seed_from_u64(3);
        let spec = TextSpec::shakespeare_like(3).with_sizes(200, 10);
        let fed = generate(&spec, &mut rng);
        let h0 = fed.client(0).class_histogram();
        let h1 = fed.client(1).class_histogram();
        // Styles differ, so the next-symbol distributions should be
        // well separated in total-variation distance.
        let n0: f64 = h0.iter().sum::<usize>() as f64;
        let n1: f64 = h1.iter().sum::<usize>() as f64;
        let tv: f64 = h0
            .iter()
            .zip(&h1)
            .map(|(&a, &b)| (a as f64 / n0 - b as f64 / n1).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv > 0.15, "client styles too similar: tv {tv}");
        let _ = spec;
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = TextSpec::shakespeare_like(2).with_sizes(20, 10);
        let a = generate(&spec, &mut Prng::seed_from_u64(5));
        let b = generate(&spec, &mut Prng::seed_from_u64(5));
        assert_eq!(a.client(0), b.client(0));
        assert_eq!(a.test(), b.test());
    }
}
