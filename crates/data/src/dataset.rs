//! In-memory labelled datasets.

use taco_nn::Batch;
use taco_tensor::{Prng, Tensor};

/// A labelled classification dataset stored as flat `f32` features.
///
/// Samples all share one `sample_dims` shape (e.g. `[1, 28, 28]` for
/// grayscale images, `[14]` for tabular rows, `[seq_len]` for symbol
/// sequences).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<f32>,
    labels: Vec<usize>,
    sample_dims: Vec<usize>,
    classes: usize,
}

/// A train/test dataset pair produced by the generators.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the feature length is not `labels.len() ·
    /// sample_dims.product()`, if `classes` is zero, or if any label is
    /// out of range.
    pub fn new(
        features: Vec<f32>,
        labels: Vec<usize>,
        sample_dims: &[usize],
        classes: usize,
    ) -> Self {
        let per: usize = sample_dims.iter().product();
        assert!(classes > 0, "dataset needs at least one class");
        assert_eq!(
            features.len(),
            labels.len() * per,
            "feature length {} != {} samples x {} values",
            features.len(),
            labels.len(),
            per
        );
        assert!(
            labels.iter().all(|&l| l < classes),
            "label out of range for {classes} classes"
        );
        Dataset {
            features,
            labels,
            sample_dims: sample_dims.to_vec(),
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Per-sample feature shape.
    pub fn sample_dims(&self) -> &[usize] {
        &self.sample_dims
    }

    /// Scalar feature count per sample.
    pub fn sample_len(&self) -> usize {
        self.sample_dims.iter().product()
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The features of sample `i`.
    pub fn sample(&self, i: usize) -> &[f32] {
        let n = self.sample_len();
        &self.features[i * n..(i + 1) * n]
    }

    /// Builds a [`Batch`] from sample indices.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> Batch {
        assert!(!indices.is_empty(), "empty batch");
        let per = self.sample_len();
        let mut data = Vec::with_capacity(indices.len() * per);
        let mut targets = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.sample(i));
            targets.push(self.labels[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.sample_dims);
        Batch::new(Tensor::from_vec(data, &dims[..]), targets)
    }

    /// Splits the dataset into sequential batches of at most
    /// `batch_size` samples (used for evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn eval_batches(&self, batch_size: usize) -> Vec<Batch> {
        assert!(batch_size > 0, "batch_size must be positive");
        let idx: Vec<usize> = (0..self.len()).collect();
        idx.chunks(batch_size).map(|c| self.batch(c)).collect()
    }

    /// Draws a uniform mini-batch with replacement, matching the
    /// paper's mini-batch SGD setting (Eq. 3).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `batch_size` is zero.
    pub fn sample_batch(&self, batch_size: usize, rng: &mut Prng) -> Batch {
        assert!(!self.is_empty(), "cannot sample from an empty dataset");
        assert!(batch_size > 0, "batch_size must be positive");
        let indices: Vec<usize> = (0..batch_size).map(|_| rng.below(self.len())).collect();
        self.batch(&indices)
    }

    /// Creates a new dataset from a subset of sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let per = self.sample_len();
        let mut features = Vec::with_capacity(indices.len() * per);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            features.extend_from_slice(self.sample(i));
            labels.push(self.labels[i]);
        }
        Dataset {
            features,
            labels,
            sample_dims: self.sample_dims.clone(),
            classes: self.classes,
        }
    }

    /// Concatenates datasets into one, in the given order (used to
    /// re-pool a federation's shards before drift re-partitioning).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or any part's sample shape or class
    /// count differs from the first's.
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "concat needs at least one dataset");
        let first = parts[0];
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut features = Vec::with_capacity(total * first.sample_len());
        let mut labels = Vec::with_capacity(total);
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(
                p.sample_dims, first.sample_dims,
                "part {i} sample shape differs"
            );
            assert_eq!(p.classes, first.classes, "part {i} class count differs");
            features.extend_from_slice(&p.features);
            labels.extend_from_slice(&p.labels);
        }
        Dataset {
            features,
            labels,
            sample_dims: first.sample_dims.clone(),
            classes: first.classes,
        }
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }

    /// Number of distinct labels present.
    pub fn distinct_labels(&self) -> usize {
        self.class_histogram().iter().filter(|&&c| c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_samples() -> Dataset {
        Dataset::new(
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            vec![0, 1, 0, 1],
            &[2],
            2,
        )
    }

    #[test]
    fn concat_rebuilds_a_partitioned_dataset() {
        let d = four_samples();
        let a = d.subset(&[0, 2]);
        let b = d.subset(&[1, 3]);
        let pooled = Dataset::concat(&[&a, &b]);
        assert_eq!(pooled.len(), 4);
        assert_eq!(pooled.classes(), 2);
        assert_eq!(pooled.class_histogram(), d.class_histogram());
        // Order follows the parts: a's samples first.
        assert_eq!(pooled.sample(0), d.sample(0));
        assert_eq!(pooled.sample(2), d.sample(1));
    }

    #[test]
    #[should_panic(expected = "at least one dataset")]
    fn concat_of_nothing_panics() {
        let _ = Dataset::concat(&[]);
    }

    #[test]
    fn accessors() {
        let d = four_samples();
        assert_eq!(d.len(), 4);
        assert_eq!(d.classes(), 2);
        assert_eq!(d.sample(2), &[4.0, 5.0]);
        assert_eq!(d.class_histogram(), vec![2, 2]);
        assert_eq!(d.distinct_labels(), 2);
    }

    #[test]
    fn batch_builds_tensor_with_sample_dims() {
        let d = four_samples();
        let b = d.batch(&[1, 3]);
        assert_eq!(b.inputs().dims(), &[2, 2]);
        assert_eq!(b.targets(), &[1, 1]);
        assert_eq!(b.sample(0), &[2.0, 3.0]);
    }

    #[test]
    fn eval_batches_cover_everything() {
        let d = four_samples();
        let bs = d.eval_batches(3);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0].len() + bs[1].len(), 4);
    }

    #[test]
    fn sample_batch_is_deterministic() {
        let d = four_samples();
        let mut r1 = Prng::seed_from_u64(3);
        let mut r2 = Prng::seed_from_u64(3);
        assert_eq!(d.sample_batch(5, &mut r1), d.sample_batch(5, &mut r2));
    }

    #[test]
    fn subset_selects_rows() {
        let d = four_samples();
        let s = d.subset(&[3, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.sample(0), &[6.0, 7.0]);
        assert_eq!(s.labels(), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let _ = Dataset::new(vec![0.0], vec![5], &[1], 2);
    }

    #[test]
    #[should_panic(expected = "feature length")]
    fn bad_feature_length_panics() {
        let _ = Dataset::new(vec![0.0; 5], vec![0, 1], &[2], 2);
    }
}
