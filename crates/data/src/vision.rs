//! Synthetic image datasets (class-prototype generators).
//!
//! Each class gets a random low-frequency prototype image (a coarse
//! random grid bilinearly upsampled to the target resolution); samples
//! are the prototype scaled by a class-separation factor plus white
//! noise and a small random translation. Lowering the separation (or
//! raising the noise) makes the task harder, which is how the presets
//! reproduce the paper's difficulty ordering MNIST < FMNIST < SVHN ≈
//! CIFAR-10 < CIFAR-100 (see DESIGN.md §3).

use crate::dataset::{Dataset, TrainTest};
use taco_tensor::Prng;

/// Seed tag for the MNIST-equivalent preset's prototype stream.
const MNIST_SEED_TAG: u64 = 0x11;
/// Seed tag for the FMNIST-equivalent preset's prototype stream.
const FMNIST_SEED_TAG: u64 = 0x22;
/// Seed tag for the FEMNIST-equivalent preset's prototype stream.
const FEMNIST_SEED_TAG: u64 = 0x33;
/// Seed tag for the SVHN-equivalent preset's prototype stream.
const SVHN_SEED_TAG: u64 = 0x44;
/// Seed tag for the CIFAR-10-equivalent preset's prototype stream.
const CIFAR10_SEED_TAG: u64 = 0x55;
/// Seed tag for the CIFAR-100-equivalent preset's prototype stream.
const CIFAR100_SEED_TAG: u64 = 0x66;

/// Parameters of a synthetic vision dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct VisionSpec {
    /// Dataset name used in reports.
    pub name: String,
    /// Number of classes.
    pub classes: usize,
    /// Image channels (1 = grayscale, 3 = colour).
    pub channels: usize,
    /// Square image side length.
    pub side: usize,
    /// Training sample count.
    pub train_n: usize,
    /// Test sample count.
    pub test_n: usize,
    /// Prototype scale: larger = easier class separation.
    pub separation: f32,
    /// Additive white-noise standard deviation.
    pub noise: f32,
    /// Maximum random translation in pixels.
    pub max_shift: usize,
    /// Seed component mixed into the generator so two presets with the
    /// same geometry still produce different prototypes.
    pub seed_tag: u64,
}

impl VisionSpec {
    /// MNIST-equivalent: easy 10-class grayscale 28×28.
    pub fn mnist_like() -> Self {
        VisionSpec {
            name: "mnist".into(),
            classes: 10,
            channels: 1,
            side: 28,
            train_n: 2000,
            test_n: 500,
            separation: 2.0,
            noise: 0.6,
            max_shift: 2,
            seed_tag: MNIST_SEED_TAG,
        }
    }

    /// FMNIST-equivalent: harder 10-class grayscale 28×28.
    pub fn fmnist_like() -> Self {
        VisionSpec {
            name: "fmnist".into(),
            classes: 10,
            channels: 1,
            side: 28,
            train_n: 2000,
            test_n: 500,
            separation: 1.3,
            noise: 0.8,
            max_shift: 2,
            seed_tag: FMNIST_SEED_TAG,
        }
    }

    /// FEMNIST-equivalent: 62-class grayscale 28×28.
    pub fn femnist_like() -> Self {
        VisionSpec {
            name: "femnist".into(),
            classes: 62,
            channels: 1,
            side: 28,
            train_n: 4000,
            test_n: 1000,
            separation: 1.6,
            noise: 0.7,
            max_shift: 2,
            seed_tag: FEMNIST_SEED_TAG,
        }
    }

    /// SVHN-equivalent: 10-class colour 32×32, noisy.
    pub fn svhn_like() -> Self {
        VisionSpec {
            name: "svhn".into(),
            classes: 10,
            channels: 3,
            side: 32,
            train_n: 2000,
            test_n: 500,
            separation: 1.1,
            noise: 0.9,
            max_shift: 3,
            seed_tag: SVHN_SEED_TAG,
        }
    }

    /// CIFAR-10-equivalent: 10-class colour 32×32, noisy.
    pub fn cifar10_like() -> Self {
        VisionSpec {
            name: "cifar10".into(),
            classes: 10,
            channels: 3,
            side: 32,
            train_n: 2000,
            test_n: 500,
            separation: 1.0,
            noise: 0.9,
            max_shift: 3,
            seed_tag: CIFAR10_SEED_TAG,
        }
    }

    /// CIFAR-100-equivalent: 100-class colour 32×32, hardest preset.
    pub fn cifar100_like() -> Self {
        VisionSpec {
            name: "cifar100".into(),
            classes: 100,
            channels: 3,
            side: 32,
            train_n: 5000,
            test_n: 1000,
            separation: 1.2,
            noise: 0.8,
            max_shift: 2,
            seed_tag: CIFAR100_SEED_TAG,
        }
    }

    /// Overrides the train/test sizes (builder style).
    pub fn with_sizes(mut self, train_n: usize, test_n: usize) -> Self {
        self.train_n = train_n;
        self.test_n = test_n;
        self
    }

    /// Scalar feature count per sample.
    pub fn sample_len(&self) -> usize {
        self.channels * self.side * self.side
    }
}

/// A low-frequency prototype: a `coarse × coarse` random grid per
/// channel, bilinearly upsampled to `side × side`.
fn prototype(spec: &VisionSpec, rng: &mut Prng) -> Vec<f32> {
    let coarse = 6usize;
    let side = spec.side;
    let mut out = vec![0.0f32; spec.channels * side * side];
    for c in 0..spec.channels {
        let grid: Vec<f32> = (0..coarse * coarse).map(|_| rng.normal_f32()).collect();
        for y in 0..side {
            for x in 0..side {
                // Map pixel to coarse-grid coordinates.
                let gy = y as f32 / side as f32 * (coarse - 1) as f32;
                let gx = x as f32 / side as f32 * (coarse - 1) as f32;
                let y0 = gy.floor() as usize;
                let x0 = gx.floor() as usize;
                let y1 = (y0 + 1).min(coarse - 1);
                let x1 = (x0 + 1).min(coarse - 1);
                let ty = gy - y0 as f32;
                let tx = gx - x0 as f32;
                let v00 = grid[y0 * coarse + x0];
                let v01 = grid[y0 * coarse + x1];
                let v10 = grid[y1 * coarse + x0];
                let v11 = grid[y1 * coarse + x1];
                let v = v00 * (1.0 - ty) * (1.0 - tx)
                    + v01 * (1.0 - ty) * tx
                    + v10 * ty * (1.0 - tx)
                    + v11 * ty * tx;
                out[c * side * side + y * side + x] = v;
            }
        }
    }
    out
}

/// Renders one sample: shifted prototype scaled by `separation`, plus
/// white noise.
fn render(spec: &VisionSpec, proto: &[f32], rng: &mut Prng) -> Vec<f32> {
    let side = spec.side;
    let shift = spec.max_shift as isize;
    let dy = if shift > 0 {
        rng.below(2 * spec.max_shift + 1) as isize - shift
    } else {
        0
    };
    let dx = if shift > 0 {
        rng.below(2 * spec.max_shift + 1) as isize - shift
    } else {
        0
    };
    let mut out = vec![0.0f32; spec.sample_len()];
    for c in 0..spec.channels {
        for y in 0..side {
            for x in 0..side {
                let sy = y as isize + dy;
                let sx = x as isize + dx;
                let base = if sy >= 0 && sy < side as isize && sx >= 0 && sx < side as isize {
                    proto[c * side * side + sy as usize * side + sx as usize]
                } else {
                    0.0
                };
                out[c * side * side + y * side + x] =
                    base * spec.separation + rng.normal_f32() * spec.noise;
            }
        }
    }
    out
}

/// Generates a train/test pair for the given spec.
///
/// Classes are balanced in both splits (round-robin assignment), so all
/// label skew seen by FL clients comes from the partitioner, exactly as
/// in the paper's setup.
pub fn generate(spec: &VisionSpec, rng: &mut Prng) -> TrainTest {
    let mut proto_rng = rng.split(spec.seed_tag);
    let protos: Vec<Vec<f32>> = (0..spec.classes)
        .map(|_| prototype(spec, &mut proto_rng))
        .collect();
    let make = |n: usize, rng: &mut Prng| -> Dataset {
        let mut features = Vec::with_capacity(n * spec.sample_len());
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % spec.classes;
            features.extend_from_slice(&render(spec, &protos[class], rng));
            labels.push(class);
        }
        Dataset::new(
            features,
            labels,
            &[spec.channels, spec.side, spec.side],
            spec.classes,
        )
    };
    let train = make(spec.train_n, rng);
    let test = make(spec.test_n, rng);
    TrainTest { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_balance() {
        let mut rng = Prng::seed_from_u64(1);
        let spec = VisionSpec::mnist_like().with_sizes(100, 20);
        let tt = generate(&spec, &mut rng);
        assert_eq!(tt.train.len(), 100);
        assert_eq!(tt.test.len(), 20);
        assert_eq!(tt.train.sample_dims(), &[1, 28, 28]);
        let h = tt.train.class_histogram();
        assert!(h.iter().all(|&c| c == 10), "unbalanced: {h:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = VisionSpec::svhn_like().with_sizes(20, 5);
        let a = generate(&spec, &mut Prng::seed_from_u64(9));
        let b = generate(&spec, &mut Prng::seed_from_u64(9));
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_presets_have_different_prototypes() {
        let mut rng = Prng::seed_from_u64(4);
        let a = generate(&VisionSpec::mnist_like().with_sizes(10, 2), &mut rng);
        let mut rng = Prng::seed_from_u64(4);
        let b = generate(&VisionSpec::fmnist_like().with_sizes(10, 2), &mut rng);
        assert_ne!(a.train.sample(0), b.train.sample(0));
    }

    #[test]
    fn classes_are_separable_by_nearest_prototype() {
        // A linear probe is overkill here; check that same-class samples
        // correlate more with each other than cross-class ones.
        let mut rng = Prng::seed_from_u64(5);
        let spec = VisionSpec::mnist_like().with_sizes(40, 10);
        let tt = generate(&spec, &mut rng);
        let a0 = tt.train.sample(0); // class 0
        let a10 = tt.train.sample(10); // class 0 again (round robin of 10)
        let b1 = tt.train.sample(1); // class 1
        let same = taco_tensor::ops::cosine_similarity(a0, a10);
        let diff = taco_tensor::ops::cosine_similarity(a0, b1);
        assert!(
            same > diff,
            "same-class cosine {same} not above cross-class {diff}"
        );
    }

    #[test]
    fn cifar100_preset_has_100_classes() {
        let mut rng = Prng::seed_from_u64(6);
        let tt = generate(&VisionSpec::cifar100_like().with_sizes(200, 100), &mut rng);
        assert_eq!(tt.train.classes(), 100);
        assert_eq!(tt.train.distinct_labels(), 100);
    }
}
