//! Synthetic tabular dataset standing in for `adult`.
//!
//! `adult` (census income) is a 14-feature binary-classification task.
//! The equivalent here is a two-component Gaussian mixture: a handful
//! of informative dimensions whose means depend on the label, the rest
//! nuisance noise, plus a nonlinear interaction feature so a linear
//! model cannot saturate the task and the MLP has something to learn.

use crate::dataset::{Dataset, TrainTest};
use taco_tensor::Prng;

/// Stream tag splitting the dataset RNG for class-mean jitter, so the
/// means stay fixed for a given seed regardless of how many samples
/// are later drawn from the parent stream.
const MEAN_STREAM_TAG: u64 = 0xAD;

/// Parameters of the synthetic tabular dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct TabularSpec {
    /// Dataset name used in reports.
    pub name: String,
    /// Total feature count.
    pub features: usize,
    /// Number of informative (label-dependent) features.
    pub informative: usize,
    /// Class count (adult is binary).
    pub classes: usize,
    /// Training sample count.
    pub train_n: usize,
    /// Test sample count.
    pub test_n: usize,
    /// Distance between class means on informative features.
    pub separation: f32,
    /// Fraction of labels flipped uniformly at random (irreducible
    /// error, keeping accuracy away from 100% as with the real
    /// `adult` task).
    pub label_noise: f64,
}

impl TabularSpec {
    /// The `adult`-equivalent preset: 14 features, 2 classes.
    pub fn adult_like() -> Self {
        TabularSpec {
            name: "adult".into(),
            features: 14,
            informative: 6,
            classes: 2,
            train_n: 2000,
            test_n: 500,
            separation: 0.7,
            label_noise: 0.08,
        }
    }

    /// Overrides the train/test sizes (builder style).
    pub fn with_sizes(mut self, train_n: usize, test_n: usize) -> Self {
        self.train_n = train_n;
        self.test_n = test_n;
        self
    }
}

/// Generates a train/test pair for the given spec.
///
/// # Panics
///
/// Panics if `informative > features` or `classes == 0`.
pub fn generate(spec: &TabularSpec, rng: &mut Prng) -> TrainTest {
    assert!(
        spec.informative <= spec.features,
        "informative {} > features {}",
        spec.informative,
        spec.features
    );
    assert!(spec.classes > 0, "need at least one class");
    // Per-class mean vectors on the informative block: a deterministic
    // ±separation sign pattern (so classes are guaranteed separated)
    // plus a small random jitter (so runs with different seeds are not
    // identical tasks).
    let mut mean_rng = rng.split(MEAN_STREAM_TAG);
    let means: Vec<Vec<f32>> = (0..spec.classes)
        .map(|class| {
            (0..spec.informative)
                .map(|j| {
                    let sign = if (class + j) % 2 == 0 { 1.0 } else { -1.0 };
                    sign * spec.separation + 0.2 * mean_rng.normal_f32()
                })
                .collect()
        })
        .collect();
    assert!(
        (0.0..1.0).contains(&spec.label_noise),
        "label_noise must be in [0, 1)"
    );
    let make = |n: usize, rng: &mut Prng| -> Dataset {
        let mut features = Vec::with_capacity(n * spec.features);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % spec.classes;
            let m = &means[class];
            let mut row = Vec::with_capacity(spec.features);
            for &mj in m.iter().take(spec.informative) {
                row.push(mj + rng.normal_f32());
            }
            for _ in spec.informative..spec.features {
                row.push(rng.normal_f32());
            }
            // Nonlinear interaction: product of the first two
            // informative features replaces the last nuisance slot.
            if spec.features > spec.informative && spec.informative >= 2 {
                let last = spec.features - 1;
                row[last] = (row[0] * row[1]).tanh();
            }
            features.extend_from_slice(&row);
            // Irreducible label noise.
            let label = if spec.label_noise > 0.0 && rng.uniform_f64() < spec.label_noise {
                rng.below(spec.classes)
            } else {
                class
            };
            labels.push(label);
        }
        Dataset::new(features, labels, &[spec.features], spec.classes)
    };
    let train = make(spec.train_n, rng);
    let test = make(spec.test_n, rng);
    TrainTest { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let mut rng = Prng::seed_from_u64(1);
        let tt = generate(&TabularSpec::adult_like().with_sizes(100, 40), &mut rng);
        assert_eq!(tt.train.len(), 100);
        assert_eq!(tt.train.sample_dims(), &[14]);
        assert_eq!(tt.train.classes(), 2);
        assert_eq!(tt.test.len(), 40);
    }

    #[test]
    fn informative_features_separate_classes() {
        let mut rng = Prng::seed_from_u64(2);
        let spec = TabularSpec::adult_like().with_sizes(400, 10);
        let tt = generate(&spec, &mut rng);
        // Mean of informative feature 0 should differ between classes.
        let mut sums = [0.0f64; 2];
        let mut counts = [0usize; 2];
        for i in 0..tt.train.len() {
            let l = tt.train.labels()[i];
            sums[l] += tt.train.sample(i)[0] as f64;
            counts[l] += 1;
        }
        let d = (sums[0] / counts[0] as f64 - sums[1] / counts[1] as f64).abs();
        assert!(d > 0.3, "class means too close: {d}");
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = TabularSpec::adult_like().with_sizes(50, 10);
        let a = generate(&spec, &mut Prng::seed_from_u64(7));
        let b = generate(&spec, &mut Prng::seed_from_u64(7));
        assert_eq!(a.train, b.train);
    }

    #[test]
    #[should_panic(expected = "informative")]
    fn bad_spec_panics() {
        let mut spec = TabularSpec::adult_like();
        spec.informative = 99;
        let _ = generate(&spec, &mut Prng::seed_from_u64(0));
    }
}
