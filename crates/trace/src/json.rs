//! A small recursive-descent JSON parser.
//!
//! Exists so tests (and tooling) can validate that every JSONL event
//! and run manifest the tracing stack writes is well-formed JSON,
//! without pulling in an external crate. It parses the full JSON
//! grammar into [`Value`] trees.

use crate::value::Value;

/// Parses a complete JSON document. Trailing whitespace is allowed;
/// trailing garbage is an error.
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the first
/// syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs are accepted but replaced;
                        // trace output never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                Some(c) if c < 0x20 => {
                    return Err(format!("unescaped control char at byte {}", self.pos))
                }
                Some(c) => {
                    // Reassemble UTF-8 multibyte sequences: the input
                    // is a &str so the bytes are valid UTF-8 already.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(c);
                        let end = start + width;
                        let slice = self
                            .bytes
                            .get(start..end)
                            .ok_or("truncated UTF-8 sequence")?;
                        out.push_str(std::str::from_utf8(slice).map_err(|e| e.to_string())?);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or("truncated \\u escape")?;
            let d = (b as char)
                .to_digit(16)
                .ok_or(format!("bad hex digit at byte {}", self.pos))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::U64(42));
        assert_eq!(parse("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse("2.5e-3").unwrap(), Value::F64(0.0025));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Value::Str("hi\n".to_string()));
    }

    #[test]
    fn parses_nested() {
        let v = parse("{\"a\":[1,{\"b\":null}],\"c\":\"x\"}").unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        match v.get("a") {
            Some(Value::Array(items)) => assert_eq!(items.len(), 2),
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn round_trips_serializer_output() {
        let original = Value::object(vec![
            ("s".to_string(), Value::from("uni\u{00e9}code \"q\"")),
            ("n".to_string(), Value::F64(1.25)),
            ("i".to_string(), Value::I64(-9)),
            ("arr".to_string(), Value::array(vec![0.5f64, 2.0])),
        ]);
        let parsed = parse(&original.to_json()).unwrap();
        assert_eq!(parsed, original);
    }
}
