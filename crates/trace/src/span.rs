//! Lightweight spans: RAII timers that feed duration histograms and
//! (optionally) the event stream.

use crate::event::Event;
use crate::value::Value;
use std::time::Instant;

/// A running span. Created by [`crate::span!`] / [`crate::quiet_span!`]
/// or [`Span::new`] / [`Span::quiet`].
///
/// On [`Span::finish`] (or drop) the elapsed wall-clock time is
/// recorded into the global histogram `<name>.seconds`. Non-quiet
/// spans additionally emit a `span` event carrying their fields when a
/// sink is active. Quiet spans are meant for hot paths (per-step
/// forward/backward): metrics only, never an event.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    fields: Vec<(String, Value)>,
    emit_event: bool,
    done: bool,
}

impl Span {
    /// Starts a span that emits a `span` event on completion (when a
    /// sink is active) in addition to the duration histogram.
    pub fn new(name: &'static str, fields: Vec<(String, Value)>) -> Self {
        Span {
            name,
            start: Instant::now(),
            fields,
            emit_event: true,
            done: false,
        }
    }

    /// Starts a metrics-only span (duration histogram, no event).
    pub fn quiet(name: &'static str) -> Self {
        Span {
            name,
            start: Instant::now(),
            fields: Vec::new(),
            emit_event: false,
            done: false,
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Ends the span now and returns the elapsed seconds.
    pub fn finish(mut self) -> f64 {
        self.complete()
    }

    fn complete(&mut self) -> f64 {
        self.done = true;
        let secs = self.start.elapsed().as_secs_f64();
        crate::histogram(&format!("{}.seconds", self.name)).observe(secs);
        if self.emit_event && crate::active() {
            let mut event = Event::new("span")
                .with("name", self.name)
                .with("secs", secs);
            event.fields.append(&mut self.fields);
            crate::emit(&event);
        }
        secs
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            self.complete();
        }
    }
}

/// Starts an event-emitting [`Span`]: `span!(phase::AGGREGATE)` or
/// `span!(phase::CLIENT_STEP, client = 3, steps = k)`. The name is any
/// `&str` expression — by convention a contract constant (the `D9`
/// span-contract lint flags bare literals in `sim`/`bench`). Field
/// values may be any type convertible into [`crate::value::Value`].
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::span::Span::new(
            $name,
            ::std::vec![$((
                ::std::stringify!($key).to_string(),
                $crate::value::Value::from($val)
            )),*],
        )
    };
}

/// Starts a metrics-only [`Span`] for hot paths: records the duration
/// histogram but never emits an event.
#[macro_export]
macro_rules! quiet_span {
    ($name:expr) => {
        $crate::span::Span::quiet($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use std::sync::Arc;

    #[test]
    fn span_records_duration_histogram() {
        let span = Span::quiet("test.span.quiet");
        let secs = span.finish();
        assert!(secs >= 0.0);
        let snap = crate::histogram("test.span.quiet.seconds").snapshot();
        assert!(snap.count >= 1);
    }

    #[test]
    fn span_emits_event_with_fields_when_sink_active() {
        let _guard = crate::test_guard();
        let sink = Arc::new(MemorySink::new());
        let prev = crate::set_sink(sink.clone());
        {
            let _span = crate::span!("test.span.loud", client = 7usize);
        }
        crate::set_sink(prev);
        let events = sink.events_of_kind("span");
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].field("name").and_then(Value::as_str),
            Some("test.span.loud")
        );
        assert_eq!(events[0].field("client").and_then(Value::as_f64), Some(7.0));
        assert!(events[0].field("secs").is_some());
    }

    #[test]
    fn quiet_span_never_emits_events() {
        let _guard = crate::test_guard();
        let sink = Arc::new(MemorySink::new());
        let prev = crate::set_sink(sink.clone());
        {
            let _span = crate::quiet_span!("test.span.silent");
        }
        crate::set_sink(prev);
        assert!(sink.is_empty());
    }
}
