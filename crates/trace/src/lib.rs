//! `taco-trace` — structured tracing, metrics, and JSONL event streams
//! for the TACO reproduction. Zero external dependencies.
//!
//! Three pieces, all process-global and thread-safe:
//!
//! - a **metrics registry** ([`metrics`]) of counters, gauges, and
//!   log-bucket `f64` histograms, always on and lock-free on the hot
//!   path;
//! - **spans** ([`span!`] / [`quiet_span!`]) — RAII wall-clock timers
//!   that feed `<name>.seconds` histograms and, for non-quiet spans,
//!   the event stream;
//! - pluggable **sinks** ([`sink`]) receiving structured [`Event`]s: a
//!   no-op default, an in-memory sink for tests, and a JSONL file sink
//!   enabled by setting the `TACO_TRACE` environment variable to a
//!   file path (see [`init_from_env`]);
//! - **perf helpers** ([`perf`]) — per-span-name timing aggregation
//!   with `p50/p90/p99` quantiles, a zero-dependency peak-RSS probe
//!   (surfaced on every [`Snapshot`]), and the median-of-repeats timer
//!   behind the `BENCH_*.json` perf trajectory;
//! - the **`taco_env` registry** ([`env`]) — the declared `TACO_*`
//!   environment surface with typed accessors; the one place in the
//!   workspace allowed to read `TACO_*` variables (taco-check rule D8).
//!
//! # Example
//!
//! ```
//! use taco_trace as trace;
//!
//! trace::counter("doc.rounds").incr();
//! {
//!     let _span = trace::quiet_span!("doc.phase");
//!     // ... timed work ...
//! }
//! let snapshot = trace::snapshot();
//! assert!(snapshot.counters.iter().any(|(k, v)| k == "doc.rounds" && *v >= 1));
//! ```
//!
//! # Overhead
//!
//! With no sink installed (the default), emitting an event is a single
//! relaxed atomic load; spans cost two `Instant` reads plus one atomic
//! histogram update. The simulation's hot paths (per-step
//! forward/backward) use [`quiet_span!`], which never allocates an
//! event even when a sink is active.

#![deny(missing_docs)]

pub mod env;
pub mod event;
pub mod json;
pub mod metrics;
pub mod perf;
pub mod sink;
pub mod span;
pub mod value;

pub use event::Event;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use perf::{peak_rss_bytes, span_stats, SpanStats};
pub use sink::{JsonlSink, MemorySink, NoopSink, Sink};
pub use span::Span;
pub use value::Value;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static SINK: OnceLock<RwLock<Arc<dyn Sink>>> = OnceLock::new();
/// Fast-path flag: `true` iff a non-noop sink is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static ENV_INIT: AtomicBool = AtomicBool::new(false);

/// The process-global metrics registry.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// The global counter registered under `name` (created on first use).
pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

/// The global gauge registered under `name` (created on first use).
pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// The global histogram registered under `name` (created on first use).
pub fn histogram(name: &str) -> Arc<Histogram> {
    registry().histogram(name)
}

/// A name-sorted copy of every global metric.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// Clears the global registry (tests / run isolation). Live handles
/// keep working but detach from future snapshots.
pub fn reset_metrics() {
    registry().reset();
}

fn sink_cell() -> &'static RwLock<Arc<dyn Sink>> {
    SINK.get_or_init(|| RwLock::new(Arc::new(NoopSink)))
}

/// Installs `sink` as the global event sink and returns the previous
/// one. Passing a [`NoopSink`] disables event emission.
pub fn set_sink(sink: Arc<dyn Sink>) -> Arc<dyn Sink> {
    // `Arc<NoopSink>` coerced to `Arc<dyn Sink>` has no cheap runtime
    // type check; track activity with an explicit flag instead: the
    // only inert sink anyone installs is the one `clear_sink` uses.
    let mut guard = sink_cell()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let prev = std::mem::replace(&mut *guard, sink);
    ACTIVE.store(true, Ordering::Release);
    prev
}

/// Restores the no-op sink and returns the previously installed sink
/// (flushing it first).
pub fn clear_sink() -> Arc<dyn Sink> {
    let mut guard = sink_cell()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    ACTIVE.store(false, Ordering::Release);
    let prev = std::mem::replace(&mut *guard, Arc::new(NoopSink));
    prev.flush();
    prev
}

/// `true` when a sink is installed (events will be recorded). A single
/// relaxed atomic load — safe to call on hot paths.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Sends `event` to the installed sink, if any.
pub fn emit(event: &Event) {
    if active() {
        sink_cell()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .record(event);
    }
}

/// Flushes the installed sink.
pub fn flush() {
    sink_cell()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .flush();
}

/// Installs a [`JsonlSink`] when the `TACO_TRACE` environment variable
/// names a writable file path. Idempotent: only the first call in a
/// process inspects the environment. Returns `true` if a sink was
/// installed by this call.
///
/// An unset or empty `TACO_TRACE` leaves the no-op sink in place; an
/// unwritable path prints one warning to stderr and continues without
/// tracing (observability must never fail a run).
pub fn init_from_env() -> bool {
    if ENV_INIT.swap(true, Ordering::SeqCst) {
        return false;
    }
    match env::trace_path() {
        Some(path) => match JsonlSink::create(&path) {
            Ok(sink) => {
                set_sink(Arc::new(sink));
                emit(&Event::new("run_start").with("trace_path", path.as_str()));
                true
            }
            Err(e) => {
                eprintln!("warning: TACO_TRACE={path}: {e}; tracing disabled");
                false
            }
        },
        _ => false,
    }
}

/// Serializes tests that swap the global sink. Public so downstream
/// crates' tests can share the same exclusion.
#[doc(hidden)]
pub fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        counter("lib.test.counter").add(5);
        assert_eq!(counter("lib.test.counter").get(), 5);
    }

    #[test]
    fn emit_respects_sink_installation() {
        let _guard = test_guard();
        let sink = Arc::new(MemorySink::new());
        let prev = set_sink(sink.clone());
        assert!(active());
        emit(&Event::new("test_kind"));
        clear_sink();
        assert!(!active());
        emit(&Event::new("dropped"));
        // Restore whatever was installed before this test.
        set_sink(prev);
        clear_sink();
        assert_eq!(sink.events_of_kind("test_kind").len(), 1);
        assert!(sink.events_of_kind("dropped").is_empty());
    }

    #[test]
    fn init_from_env_is_idempotent() {
        let _guard = test_guard();
        // First call consumes the env probe; subsequent calls are no-ops
        // regardless of the variable (do not set it in-process: other
        // tests share the environment).
        let _ = init_from_env();
        assert!(!init_from_env());
    }
}
