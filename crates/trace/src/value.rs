//! A minimal JSON value tree with zero-dependency serialization.
//!
//! The whole observability stack (events, metric snapshots, run
//! manifests) serializes through this one type, so the repo needs no
//! external JSON crate.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point. Non-finite values serialize as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered list of `(key, value)` pairs. Key order is
    /// preserved on serialization; duplicate keys are the caller's
    /// responsibility to avoid.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Appends the compact JSON encoding to `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => {
                out.push_str(&n.to_string());
            }
            Value::I64(n) => {
                out.push_str(&n.to_string());
            }
            Value::F64(x) => write_f64(*x, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Convenience: builds an object from `(key, value)` pairs.
    pub fn object(pairs: Vec<(String, Value)>) -> Value {
        Value::Object(pairs)
    }

    /// Convenience: builds an array by converting each element.
    pub fn array<T: Into<Value>>(items: impl IntoIterator<Item = T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }

    /// Looks up a key in an object; `None` for non-objects or missing
    /// keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric content of a `U64`/`I64`/`F64` value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The string content of a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Writes a finite float as a JSON number; non-finite floats become
/// `null` (JSON has no NaN/Inf).
fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // Rust's Display prints the shortest representation that
        // round-trips; always decimal, never exponent notation. Keep
        // integral floats distinguishable as floats ("3.0" rather than
        // "3") so field types stay stable across runs.
        let s = x.to_string();
        let integral = !s.contains('.');
        out.push_str(&s);
        if integral {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Writes `s` as a JSON string literal (quotes + escapes) into `out`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::U64(n)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::U64(n as u64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::U64(n as u64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::I64(n)
    }
}
impl From<i32> for Value {
    fn from(n: i32) -> Value {
        Value::I64(n as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}
impl From<f32> for Value {
    fn from(x: f32) -> Value {
        Value::F64(x as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Value::Null.to_json(), "null");
        assert_eq!(Value::Bool(true).to_json(), "true");
        assert_eq!(Value::U64(7).to_json(), "7");
        assert_eq!(Value::I64(-3).to_json(), "-3");
        assert_eq!(Value::F64(0.5).to_json(), "0.5");
        assert_eq!(Value::F64(3.0).to_json(), "3.0");
        assert_eq!(Value::F64(f64::NAN).to_json(), "null");
        assert_eq!(Value::from("a\"b\n").to_json(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn nested_structures_serialize() {
        let v = Value::object(vec![
            ("name".to_string(), Value::from("taco")),
            ("xs".to_string(), Value::array(vec![1u64, 2, 3])),
        ]);
        assert_eq!(v.to_json(), "{\"name\":\"taco\",\"xs\":[1,2,3]}");
        assert_eq!(v.get("name").and_then(Value::as_str), Some("taco"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn control_chars_are_escaped() {
        let v = Value::from("\u{1}");
        assert_eq!(v.to_json(), "\"\\u0001\"");
    }
}
