//! Perf-trajectory helpers: per-span-name timing aggregation on top of
//! the log-bucket histograms, a zero-dependency peak-RSS probe, and the
//! median-of-repeats timer used by the canonical bench suite.
//!
//! Every span (RAII or kernel-level) feeds a `<name>.seconds`
//! histogram; [`span_stats`] folds a [`Snapshot`] back into one
//! [`SpanStats`] per span name with count, total, mean, and
//! `p50/p90/p99` quantiles. `perf_suite` serializes these under the
//! `spans` key of `BENCH_perf_suite.json`, which makes the span names
//! (see `taco_sim::phase`) a reported contract.
//!
//! The peak-RSS probe reads `VmHWM` from `/proc/self/status` — the
//! kernel-maintained resident-set high-water mark — so it needs no
//! allocator hooks and costs one small file read. On platforms without
//! procfs it degrades to `None` rather than guessing.

use crate::metrics::{HistogramSnapshot, Snapshot};
use crate::value::Value;

/// Suffix every span-duration histogram shares.
pub const SECONDS_SUFFIX: &str = ".seconds";

/// Aggregated timing for one span name, derived from its
/// `<name>.seconds` histogram. Quantiles are exact to bucket
/// resolution (a factor of 2): each is the lower bound of the bucket
/// where the cumulative count crosses the rank.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Span name (histogram name minus the `.seconds` suffix).
    pub name: String,
    /// Completed span count.
    pub count: u64,
    /// Total seconds across all completions.
    pub total_secs: f64,
    /// Mean seconds per completion.
    pub mean_secs: f64,
    /// Median duration.
    pub p50_secs: f64,
    /// 90th-percentile duration.
    pub p90_secs: f64,
    /// 99th-percentile duration.
    pub p99_secs: f64,
}

impl SpanStats {
    /// Builds the aggregate for one span from its histogram snapshot.
    pub fn from_histogram(name: &str, h: &HistogramSnapshot) -> SpanStats {
        SpanStats {
            name: name.to_string(),
            count: h.count,
            total_secs: h.sum,
            mean_secs: h.mean(),
            p50_secs: h.p50(),
            p90_secs: h.p90(),
            p99_secs: h.p99(),
        }
    }

    /// Serializes as a JSON object (count/total/mean/p50/p90/p99).
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("total_secs".to_string(), Value::F64(self.total_secs)),
            ("mean_secs".to_string(), Value::F64(self.mean_secs)),
            ("p50_secs".to_string(), Value::F64(self.p50_secs)),
            ("p90_secs".to_string(), Value::F64(self.p90_secs)),
            ("p99_secs".to_string(), Value::F64(self.p99_secs)),
        ])
    }
}

/// Extracts per-span timing aggregates from `snapshot`: one entry per
/// `<name>.seconds` histogram, name-sorted (the snapshot already is).
pub fn span_stats(snapshot: &Snapshot) -> Vec<SpanStats> {
    snapshot
        .histograms
        .iter()
        .filter_map(|(name, h)| {
            name.strip_suffix(SECONDS_SUFFIX)
                .map(|span| SpanStats::from_histogram(span, h))
        })
        .collect()
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable. The
/// value is a process-lifetime high-water mark: it never decreases.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Parses the `VmHWM:` line of a `/proc/<pid>/status` document into
/// bytes. Factored out of [`peak_rss_bytes`] so the parsing is
/// testable on every platform.
pub fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: `VmHWM:	   123456 kB`.
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .strip_suffix("kB")
        .map(str::trim)?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Wall-clock seconds of the median of `repeats` timed runs of `f`
/// (after one untimed warm-up). The median — not the min or mean —
/// is the canonical perf-suite statistic: it ignores one-off cache or
/// scheduler spikes in either direction without rewarding lucky runs.
///
/// # Panics
///
/// Panics if `repeats` is zero.
pub fn time_median<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    assert!(repeats > 0, "time_median needs at least one repeat");
    f();
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            // taco-check: allow(wall-clock, perf-suite repeat timing: readings feed BENCH reports only, never simulated time)
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    median_of_sorted(&samples)
}

/// Median of an already-sorted, non-empty sample vector (mean of the
/// two middle elements when the count is even).
pub fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn span_stats_pick_up_only_seconds_histograms() {
        let r = Registry::default();
        r.histogram("alpha.seconds").observe(1.0);
        r.histogram("alpha.seconds").observe(2.0);
        r.histogram("bytes_per_round").observe(9.0);
        r.counter("alpha.calls").incr();
        let stats = span_stats(&r.snapshot());
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "alpha");
        assert_eq!(stats[0].count, 2);
        assert!((stats[0].total_secs - 3.0).abs() < 1e-12);
        assert!((stats[0].mean_secs - 1.5).abs() < 1e-12);
    }

    #[test]
    fn span_stats_serialize_with_quantiles() {
        let r = Registry::default();
        for _ in 0..100 {
            r.histogram("s.seconds").observe(1.0);
        }
        r.histogram("s.seconds").observe(1000.0);
        let stats = span_stats(&r.snapshot());
        let v = stats[0].to_value();
        for key in [
            "count",
            "total_secs",
            "mean_secs",
            "p50_secs",
            "p90_secs",
            "p99_secs",
        ] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
        // The single outlier sits past p99 of 101 observations... it is
        // the top 1/101 < 1%, so p99 still lands in the 1.0 bucket.
        assert_eq!(stats[0].p50_secs, 1.0);
        assert_eq!(stats[0].p99_secs, 1.0);
    }

    #[test]
    fn vm_hwm_parses_the_procfs_format() {
        let doc = "Name:\ttaco\nVmPeak:\t  999 kB\nVmHWM:\t    4321 kB\nVmRSS:\t 100 kB\n";
        assert_eq!(parse_vm_hwm(doc), Some(4321 * 1024));
        assert_eq!(parse_vm_hwm("Name:\ttaco\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_nonzero_and_nondecreasing_after_allocation() {
        let before = peak_rss_bytes().expect("procfs available on linux");
        assert!(before > 0, "VmHWM reported zero");
        // Touch 64 MiB so the high-water mark must move past any
        // plausible prior footprint of this small test binary.
        let mut big = vec![0u8; 64 << 20];
        for (i, b) in big.iter_mut().enumerate().step_by(4096) {
            *b = i as u8;
        }
        let after = peak_rss_bytes().expect("procfs available on linux");
        assert!(
            after >= before,
            "peak RSS decreased: {before} -> {after} bytes"
        );
        assert!(
            after >= 32 << 20,
            "peak RSS {after} bytes did not register a 64 MiB allocation"
        );
        // No post-free assertion: some sandboxed kernels report a
        // VmHWM that tracks the current RSS back down, so only the
        // while-allocated reading is portable.
    }

    #[test]
    fn time_median_is_positive_and_median_math_is_exact() {
        let secs = time_median(3, || {
            std::hint::black_box(vec![1u8; 4096]);
        });
        assert!(secs >= 0.0);
        assert_eq!(median_of_sorted(&[1.0, 2.0, 50.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 2.0, 3.0, 50.0]), 2.5);
        assert_eq!(median_of_sorted(&[7.0]), 7.0);
    }
}
