//! Structured events: the unit of the JSONL trace stream.

use crate::value::Value;
use std::time::{SystemTime, UNIX_EPOCH};

/// One structured event. Serialized as a single JSON object per line:
/// `{"kind":...,"unix_ms":...,<fields>}`.
///
/// Field keys are flattened into the top-level object, so callers must
/// not reuse the reserved keys `kind` and `unix_ms`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event category (`round`, `client_step`, `span`, `run_start`, ...).
    pub kind: String,
    /// Wall-clock timestamp in milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Ordered event payload.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Creates an event of the given kind stamped with the current
    /// wall-clock time.
    pub fn new(kind: &str) -> Self {
        Event {
            kind: kind.to_string(),
            unix_ms: unix_ms_now(),
            fields: Vec::new(),
        }
    }

    /// Builder-style field append.
    pub fn with(mut self, key: &str, v: impl Into<Value>) -> Self {
        self.fields.push((key.to_string(), v.into()));
        self
    }

    /// Serializes the event as one compact JSON object.
    pub fn to_json(&self) -> String {
        let mut pairs = Vec::with_capacity(self.fields.len() + 2);
        pairs.push(("kind".to_string(), Value::from(self.kind.as_str())));
        pairs.push(("unix_ms".to_string(), Value::U64(self.unix_ms)));
        pairs.extend(self.fields.iter().cloned());
        Value::Object(pairs).to_json()
    }

    /// The value of a field, if present.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Milliseconds since the Unix epoch right now.
pub fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serializes_to_valid_json() {
        let e = Event::new("round")
            .with("round", 3usize)
            .with("acc", 0.75f64)
            .with("algo", "TACO");
        let json = e.to_json();
        let v = crate::json::parse(&json).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("round"));
        assert_eq!(v.get("round").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("algo").and_then(Value::as_str), Some("TACO"));
        assert!(e.unix_ms > 0);
        assert_eq!(e.field("acc").and_then(Value::as_f64), Some(0.75));
    }
}
