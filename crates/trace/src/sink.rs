//! Pluggable event sinks: no-op (default), in-memory (tests), and a
//! JSONL file stream.

use crate::event::Event;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Receives every emitted [`Event`]. Implementations must be cheap and
/// non-blocking where possible: sinks run inline on the simulation's
/// threads.
pub trait Sink: Send + Sync {
    /// Handles one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&self) {}
}

/// Discards every event (the default when tracing is not configured).
#[derive(Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _event: &Event) {}
}

/// Buffers events in memory; the test-side sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of every event recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.lock().clone()
    }

    /// Copies of the recorded events of one kind.
    pub fn events_of_kind(&self, kind: &str) -> Vec<Event> {
        self.lock()
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.lock().push(event.clone());
    }
}

/// Streams events as one JSON object per line to a file. Created by
/// `TACO_TRACE=path` (see [`crate::init_from_env`]) or directly.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Trace output is best-effort: a full disk must not kill the
        // simulation.
        let _ = writeln!(w, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_records_and_filters() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&Event::new("a"));
        sink.record(&Event::new("b"));
        sink.record(&Event::new("a"));
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.events_of_kind("a").len(), 2);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("taco-trace-test-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(&Event::new("x").with("v", 1usize));
            sink.record(&Event::new("y").with("s", "two"));
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::parse(line).expect("line parses as JSON");
        }
        let _ = std::fs::remove_file(&path);
    }
}
