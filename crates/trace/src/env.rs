//! `taco_env` — the single choke point for the `TACO_*` environment
//! surface.
//!
//! Every `TACO_*` variable the workspace reads is declared exactly once
//! in [`REGISTRY`] and read exactly here, through a typed accessor.
//! This is a **statically enforced contract**: taco-check's D8 rule
//! (`env-registry`) flags any raw `std::env::var("TACO_…")` outside
//! this file, any `TACO_*` name that is not registered (typos), and any
//! registered name missing from the README/EXPERIMENTS documentation —
//! see `crates/check/src/workspace_rules.rs`.
//!
//! Accessors deliberately reproduce the parsing semantics of the call
//! sites they replaced (trimming, empty-string handling, invalid-value
//! fallbacks), so routing a read through this module can never change a
//! trajectory or an artifact byte.

use std::path::PathBuf;

/// One declared `TACO_*` environment variable.
#[derive(Debug, Clone, Copy)]
pub struct EnvVar {
    /// The exact variable name, `TACO_`-prefixed.
    pub name: &'static str,
    /// What it controls, in one line (mirrored in the README registry
    /// table).
    pub doc: &'static str,
}

/// Every `TACO_*` variable the workspace recognizes. taco-check D8
/// cross-checks this registry against all use sites and against the
/// README/EXPERIMENTS docs in both directions.
pub const REGISTRY: [EnvVar; 15] = [
    EnvVar {
        name: "TACO_TRACE",
        doc: "JSONL trace sink file path; unset/empty disables tracing",
    },
    EnvVar {
        name: "TACO_THREADS",
        doc: "worker-pool size (positive integer); default: available parallelism",
    },
    EnvVar {
        name: "TACO_BACKEND",
        doc: "aggregation backend: `sequential` (default) or `sharded`",
    },
    EnvVar {
        name: "TACO_SHARDS",
        doc: "shard count for the sharded backend (positive integer; default 8)",
    },
    EnvVar {
        name: "TACO_CODEC",
        doc: "upload codec for codec-aware tests/benches: `none`, `topk`, `q8`, or `q4`",
    },
    EnvVar {
        name: "TACO_SCALE",
        doc: "experiment scale: `quick` (default) or `paper`",
    },
    EnvVar {
        name: "TACO_SEEDS",
        doc: "number of seeds averaged by fig2/table5 (default 3 / 1)",
    },
    EnvVar {
        name: "TACO_CLIENTS",
        doc: "federation size for table7 (default 100)",
    },
    EnvVar {
        name: "TACO_RESULTS_DIR",
        doc: "artifact directory override for results/ (tests use a scratch dir)",
    },
    EnvVar {
        name: "TACO_BENCH_OUT",
        doc: "perf_suite report path override (default BENCH_perf_suite.json)",
    },
    EnvVar {
        name: "TACO_PERF_REPEATS",
        doc: "timed repetitions per perf_suite metric (default 5)",
    },
    EnvVar {
        name: "TACO_BENCH_SMOKE",
        doc: "truthy: single-pass tensor_ops bench for CI smoke runs",
    },
    EnvVar {
        name: "TACO_SCENARIO_SMOKE",
        doc: "`1`/`true`: scenario_sweep runs the reduced smoke grid",
    },
    EnvVar {
        name: "TACO_REGEN_GOLDEN",
        doc: "truthy: rewrite golden trajectory fixtures instead of comparing",
    },
    EnvVar {
        name: "TACO_GOLDEN_TOL",
        doc: "absolute tolerance for golden comparisons (default 0.0, exact)",
    },
];

/// Is `name` a declared `TACO_*` variable?
pub fn is_registered(name: &str) -> bool {
    REGISTRY.iter().any(|v| v.name == name)
}

/// The one raw read. Debug builds assert the name went through the
/// registry, so a typo in an accessor fails the first test that
/// exercises it rather than silently reading an unset variable.
fn raw(name: &str) -> Option<String> {
    debug_assert!(is_registered(name), "unregistered env var {name}");
    std::env::var(name).ok()
}

fn raw_os(name: &str) -> Option<std::ffi::OsString> {
    debug_assert!(is_registered(name), "unregistered env var {name}");
    std::env::var_os(name)
}

/// `TACO_TRACE`: the JSONL sink path; `None` when unset or empty.
pub fn trace_path() -> Option<String> {
    raw("TACO_TRACE").filter(|p| !p.is_empty())
}

/// `TACO_THREADS`: the worker-pool size. `None` when unset or invalid
/// (an invalid value warns once per read, matching the historical
/// `tensor::pool` behaviour).
pub fn threads() -> Option<usize> {
    let v = raw("TACO_THREADS")?;
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            eprintln!("warning: ignoring invalid TACO_THREADS={v:?}");
            None
        }
    }
}

/// `TACO_BACKEND`: the raw backend name; interpretation (and the
/// unknown-name warning) stays with `sim::backend`.
pub fn backend_name() -> Option<String> {
    raw("TACO_BACKEND")
}

/// `TACO_SHARDS`: shard count for the sharded backend; `None` when
/// unset, unparseable, or zero.
pub fn shards() -> Option<usize> {
    raw("TACO_SHARDS")
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// `TACO_CODEC`: the raw upload-codec name; interpretation (and the
/// unknown-name warning) stays with `core::compress`.
pub fn codec_name() -> Option<String> {
    raw("TACO_CODEC")
}

/// `TACO_SCALE`: the raw scale name (`quick`/`paper`).
pub fn scale_name() -> Option<String> {
    raw("TACO_SCALE")
}

/// `TACO_SEEDS`: seed-count override for the multi-seed experiment
/// binaries; `None` when unset or unparseable.
pub fn seeds() -> Option<u64> {
    raw("TACO_SEEDS").and_then(|s| s.parse().ok())
}

/// `TACO_CLIENTS`: federation-size override; `None` when unset or
/// unparseable.
pub fn clients() -> Option<usize> {
    raw("TACO_CLIENTS").and_then(|s| s.parse().ok())
}

/// `TACO_RESULTS_DIR`: artifact directory override.
pub fn results_dir() -> Option<PathBuf> {
    raw_os("TACO_RESULTS_DIR").map(Into::into)
}

/// `TACO_BENCH_OUT`: perf-suite report path override.
pub fn bench_out() -> Option<PathBuf> {
    raw_os("TACO_BENCH_OUT").map(Into::into)
}

/// `TACO_PERF_REPEATS`: timed repetitions per perf-suite metric;
/// `None` when unset, unparseable, or zero.
pub fn perf_repeats() -> Option<usize> {
    raw("TACO_PERF_REPEATS")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

/// `TACO_BENCH_SMOKE`: truthy when set to anything but `""`/`"0"`.
pub fn bench_smoke() -> bool {
    raw("TACO_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

/// `TACO_SCENARIO_SMOKE`: exactly `1` or `true` shrinks the sweep grid
/// (the historical scenario_sweep parse).
pub fn scenario_smoke() -> bool {
    matches!(raw("TACO_SCENARIO_SMOKE").as_deref(), Some("1" | "true"))
}

/// `TACO_REGEN_GOLDEN`: truthy when set to anything but `""`/`"0"`.
pub fn regen_golden() -> bool {
    raw("TACO_REGEN_GOLDEN").is_some_and(|v| v != "0" && !v.is_empty())
}

/// `TACO_GOLDEN_TOL`: golden-comparison tolerance; `None` when unset
/// or unparseable.
pub fn golden_tol() -> Option<f64> {
    raw("TACO_GOLDEN_TOL").and_then(|s| s.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_prefixed() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|v| v.name).collect();
        for name in &names {
            assert!(name.starts_with("TACO_"), "{name}");
            assert!(
                name.len() > "TACO_".len(),
                "{name}: bare prefix is not a variable"
            );
            assert!(
                name.chars().all(|c| c.is_ascii_uppercase() || c == '_'),
                "{name}: registry names are SCREAMING_SNAKE"
            );
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len(), "duplicate registry entry");
    }

    #[test]
    fn every_entry_is_documented_in_registry() {
        for v in REGISTRY {
            assert!(!v.doc.is_empty(), "{}: missing doc line", v.name);
        }
    }

    #[test]
    fn accessors_tolerate_unset_environment() {
        // The test environment leaves almost everything unset; every
        // accessor must return its unset-shape instead of panicking.
        let _ = trace_path();
        let _ = threads();
        let _ = backend_name();
        let _ = shards();
        let _ = codec_name();
        let _ = scale_name();
        let _ = seeds();
        let _ = clients();
        let _ = results_dir();
        let _ = bench_out();
        let _ = perf_repeats();
        let _ = bench_smoke();
        let _ = scenario_smoke();
        let _ = regen_golden();
        let _ = golden_tol();
    }
}
