//! The global metrics registry: counters, gauges, and log-bucket
//! histograms.
//!
//! All metric types are lock-free on the hot path (atomics only); the
//! registry itself takes a short mutex on first lookup of a name.
//! Handles are `Arc`s, so call sites that care can cache them.

use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets (fixed, log₂-scale).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket `b ∈ 1..63` covers values in `[2^(b−41), 2^(b−40))`; bucket 0
/// holds non-positive values and underflows, bucket 63 overflows. The
/// range `2⁻⁴⁰ ≈ 9·10⁻¹³` to `2²² ≈ 4·10⁶` comfortably covers seconds
/// and byte counts at both harness and paper scale.
const BUCKET_EXP_OFFSET: i32 = 41;

fn bucket_index(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    let e = v.log2().floor() as i32 + BUCKET_EXP_OFFSET;
    e.clamp(1, HISTOGRAM_BUCKETS as i32 - 1) as usize
}

/// The inclusive lower bound of bucket `b` (0.0 for the underflow
/// bucket).
pub fn bucket_lower_bound(b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        (2.0f64).powi(b as i32 - BUCKET_EXP_OFFSET)
    }
}

/// An `f64` histogram with fixed log-scale buckets plus exact count,
/// sum, min, and max. `observe` is lock-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f(f64::from_bits(cur));
        if new.to_bits() == cur {
            return;
        }
        match cell.compare_exchange_weak(cur, new.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |s| s + v);
        atomic_f64_update(&self.min_bits, |m| m.min(v));
        atomic_f64_update(&self.max_bits, |m| m.max(v));
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Median observation so far (see [`HistogramSnapshot::quantile`]
    /// for resolution: exact to the containing log₂ bucket).
    pub fn p50(&self) -> f64 {
        self.snapshot().quantile(0.5)
    }

    /// 90th percentile so far.
    pub fn p90(&self) -> f64 {
        self.snapshot().quantile(0.9)
    }

    /// 99th percentile so far.
    pub fn p99(&self) -> f64 {
        self.snapshot().quantile(0.99)
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.min_bits.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.max_bits.load(Ordering::Relaxed))
            },
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let n = c.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_lower_bound(i), n))
                })
                .collect(),
        }
    }
}

/// An immutable histogram summary: exact count/sum/min/max plus the
/// non-empty log-scale buckets as `(lower_bound, count)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0.0 when empty).
    pub min: f64,
    /// Largest observation (0.0 when empty).
    pub max: f64,
    /// Non-empty buckets as `(inclusive lower bound, count)`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]` from the bucket counts: the
    /// lower bound of the bucket where the cumulative count crosses
    /// `q·count`. Exact only to bucket resolution (a factor of 2).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(lower, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return lower;
            }
        }
        self.max
    }

    /// Median observation.
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.9)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    fn to_value(&self) -> Value {
        Value::object(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("sum".to_string(), Value::F64(self.sum)),
            ("min".to_string(), Value::F64(self.min)),
            ("max".to_string(), Value::F64(self.max)),
            ("mean".to_string(), Value::F64(self.mean())),
            ("p50".to_string(), Value::F64(self.p50())),
            ("p90".to_string(), Value::F64(self.p90())),
            ("p99".to_string(), Value::F64(self.p99())),
        ])
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Use the free functions in the crate root ([`crate::counter`],
/// [`crate::gauge`], [`crate::histogram`]) for the process-global
/// instance.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn lock<T>(map: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    map.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn intern<T: Default>(map: &Mutex<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    let mut guard = lock(map);
    if let Some(existing) = guard.get(name) {
        return Arc::clone(existing);
    }
    let fresh = Arc::new(T::default());
    guard.insert(name.to_string(), Arc::clone(&fresh));
    fresh
}

impl Registry {
    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// An immutable, name-sorted copy of every metric, stamped with
    /// the process's current peak RSS (where the platform exposes it).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            peak_rss_bytes: crate::perf::peak_rss_bytes(),
        }
    }

    /// Removes every metric. Intended for tests and for isolating one
    /// benchmark run from the next; existing handles keep working but
    /// are no longer reachable from the registry.
    pub fn reset(&self) {
        lock(&self.counters).clear();
        lock(&self.gauges).clear();
        lock(&self.histograms).clear();
    }
}

/// A point-in-time copy of a [`Registry`], name-sorted.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Peak resident-set size of the process when the snapshot was
    /// taken (`VmHWM`; see [`crate::perf::peak_rss_bytes`]). `None` on
    /// platforms without procfs.
    pub peak_rss_bytes: Option<u64>,
}

impl Snapshot {
    /// `true` when no metric of any kind was recorded (the peak-RSS
    /// stamp does not count: it is always present on linux).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the snapshot as a JSON object with `counters`,
    /// `gauges`, and `histograms` sub-objects.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            (
                "counters".to_string(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::U64(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::F64(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_value()))
                        .collect(),
                ),
            ),
            (
                "peak_rss_bytes".to_string(),
                self.peak_rss_bytes.map_or(Value::Null, Value::U64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::default();
        r.counter("a").add(2);
        r.counter("a").incr();
        assert_eq!(r.counter("a").get(), 3);
        r.gauge("g").set(1.5);
        assert_eq!(r.gauge("g").get(), 1.5);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        // 1.0 = 2^0 → bucket 41; 2.0 → 42; 0.5 → 40.
        assert_eq!(bucket_index(1.0), 41);
        assert_eq!(bucket_index(2.0), 42);
        assert_eq!(bucket_index(0.5), 40);
        assert_eq!(bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1e-300), 1);
        assert!((bucket_lower_bound(41) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_snapshot_stats() {
        let h = Histogram::default();
        for v in [0.5, 1.0, 1.5, 4.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!((s.sum - 7.0).abs() < 1e-12);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 4.0);
        assert!((s.mean() - 1.75).abs() < 1e-12);
        // p50 falls in the bucket containing 1.0/1.5 (lower bound 1.0).
        assert_eq!(s.quantile(0.5), 1.0);
        assert!(s.quantile(1.0) <= 4.0);
    }

    #[test]
    fn quantiles_are_exact_on_seeded_inputs() {
        // 90 observations in the [1, 2) bucket, 9 in [8, 16), 1 in
        // [128, 256): the quantile is the lower bound of the bucket
        // where the cumulative count crosses the rank, so p50 and p90
        // land exactly on 1.0 (ranks 50 and 90 of 100), p99 on 8.0
        // (rank 99), and p100 on the exact max.
        let h = Histogram::default();
        for _ in 0..90 {
            h.observe(1.5);
        }
        for _ in 0..9 {
            h.observe(9.0);
        }
        h.observe(130.0);
        assert_eq!(h.p50(), 1.0);
        assert_eq!(h.p90(), 1.0);
        assert_eq!(h.p99(), 8.0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.991), 128.0);
        assert_eq!(s.quantile(1.0), 128.0);
        assert_eq!(s.max, 130.0);
    }

    #[test]
    fn quantiles_are_monotone_over_seeded_spreads() {
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            // xorshift64*: deterministic spread over ~6 decades.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            (x.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f64 / 1e3 + 1e-6
        };
        let h = Histogram::default();
        for _ in 0..500 {
            h.observe(next());
        }
        let s = h.snapshot();
        assert!(s.p50() <= s.p90(), "p50 {} > p90 {}", s.p50(), s.p90());
        assert!(s.p90() <= s.p99(), "p90 {} > p99 {}", s.p90(), s.p99());
        assert!(s.min <= s.p50() && s.p99() <= s.max);
        // Histogram-level accessors agree with the snapshot's.
        assert_eq!(h.p50(), s.p50());
        assert_eq!(h.p90(), s.p90());
        assert_eq!(h.p99(), s.p99());
    }

    #[test]
    fn snapshot_carries_the_peak_rss_stamp_on_linux() {
        let s = Registry::default().snapshot();
        if cfg!(target_os = "linux") {
            assert!(s.peak_rss_bytes.is_some_and(|b| b > 0));
        }
        let v = s.to_value();
        assert!(v.get("peak_rss_bytes").is_some());
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_serializes() {
        let r = Registry::default();
        r.counter("z.last").incr();
        r.counter("a.first").incr();
        r.histogram("h").observe(1.0);
        let s = r.snapshot();
        assert_eq!(s.counters[0].0, "a.first");
        assert_eq!(s.counters[1].0, "z.last");
        let parsed = crate::json::parse(&s.to_value().to_json()).unwrap();
        assert!(parsed.get("histograms").is_some());
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        let h = std::sync::Arc::new(Histogram::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe(1.0 + (i % 7) as f64);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        let bucket_total: u64 = snap.buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(bucket_total, 4000);
    }
}
