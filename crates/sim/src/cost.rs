//! The analytic per-round compute model.
//!
//! Table I, Table III and Fig. 5 of the paper report *measured*
//! client compute time. The simulator measures real wall-clock time of
//! real gradient computations, but the measured ratios between
//! algorithms should match simple arithmetic over each algorithm's
//! [`CostProfile`] — STEM pays two gradients per step, FedProx/FedACG
//! pay an extra parameter-length pull, and so on. This module encodes
//! that arithmetic so the benchmark harness can cross-check measured
//! against predicted overhead.

use taco_core::CostProfile;

/// Calibration constants for one (model, batch-size) workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds per gradient evaluation (forward + backward on one
    /// mini-batch).
    pub seconds_per_grad: f64,
    /// Seconds per parameter-length vector operation (AXPY-class).
    pub seconds_per_vector_op: f64,
}

impl CostModel {
    /// Creates a cost model from calibration measurements.
    ///
    /// # Panics
    ///
    /// Panics if either constant is negative or not finite.
    pub fn new(seconds_per_grad: f64, seconds_per_vector_op: f64) -> Self {
        assert!(
            seconds_per_grad.is_finite() && seconds_per_grad >= 0.0,
            "seconds_per_grad must be non-negative"
        );
        assert!(
            seconds_per_vector_op.is_finite() && seconds_per_vector_op >= 0.0,
            "seconds_per_vector_op must be non-negative"
        );
        CostModel {
            seconds_per_grad,
            seconds_per_vector_op,
        }
    }

    /// Predicted seconds for `local_steps` local updates under the
    /// given profile.
    pub fn round_seconds(&self, profile: &CostProfile, local_steps: usize) -> f64 {
        local_steps as f64
            * (profile.grads_per_step as f64 * self.seconds_per_grad
                + profile.extra_vector_ops as f64 * self.seconds_per_vector_op
                // The SGD parameter update itself.
                + self.seconds_per_vector_op)
    }

    /// Derives a synchronous-round [`Deadline`](crate::fault::Deadline)
    /// for the fault-injection subsystem from this calibrated model:
    /// one simulated second per step is the profile's per-step cost,
    /// and the round budget is `slack ×` the nominal time of
    /// `local_steps` steps — so an unimpaired client always makes the
    /// deadline and a straggler slower than `slack`× never does.
    ///
    /// # Panics
    ///
    /// Panics if `slack < 1`, the per-step cost is zero, or
    /// `local_steps` is zero.
    pub fn deadline(
        &self,
        profile: &CostProfile,
        local_steps: usize,
        slack: f64,
    ) -> crate::fault::Deadline {
        assert!(
            slack.is_finite() && slack >= 1.0,
            "deadline slack must be >= 1, got {slack}"
        );
        assert!(local_steps > 0, "need at least one local step");
        let seconds_per_step = self.round_seconds(profile, 1);
        assert!(
            seconds_per_step > 0.0,
            "cost model predicts zero per-step time; a deadline would cut everyone"
        );
        crate::fault::Deadline {
            seconds: slack * self.round_seconds(profile, local_steps),
            seconds_per_step,
        }
    }

    /// Predicted overhead of `profile` relative to a plain-SGD profile,
    /// as a fraction (`0.23` = +23%). This is the quantity Table I
    /// reports under each measured time.
    pub fn overhead_vs_sgd(&self, profile: &CostProfile) -> f64 {
        let sgd = CostProfile {
            grads_per_step: 1,
            extra_vector_ops: 0,
        };
        let base = self.round_seconds(&sgd, 1);
        if base == 0.0 {
            0.0
        } else {
            self.round_seconds(profile, 1) / base - 1.0
        }
    }
}

/// Measures `seconds_per_grad` for a model/dataset/batch-size workload
/// by timing `trials` gradient evaluations.
pub fn calibrate_grad_seconds(
    model: &mut dyn taco_nn::Model,
    data: &taco_data::Dataset,
    batch_size: usize,
    trials: usize,
    rng: &mut taco_tensor::Prng,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let batch = data.sample_batch(batch_size, rng);
    // Warm-up evaluation outside the timed region.
    let _ = model.loss_and_grad(&batch);
    // Wall-clock time is read only through taco-trace spans (D2): the
    // span records the calibration into `sim.calibrate_grad.seconds`
    // and hands back the measured duration. Calibration output feeds
    // the cost model as an *injected* timing; the simulation itself
    // never touches the wall clock.
    let span = taco_trace::Span::quiet(crate::phase::CALIBRATE);
    for _ in 0..trials {
        let _ = model.loss_and_grad(&batch);
    }
    span.finish() / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const SGD: CostProfile = CostProfile {
        grads_per_step: 1,
        extra_vector_ops: 0,
    };
    const STEM: CostProfile = CostProfile {
        grads_per_step: 2,
        extra_vector_ops: 2,
    };
    const PROX: CostProfile = CostProfile {
        grads_per_step: 1,
        extra_vector_ops: 2,
    };

    #[test]
    fn stem_costs_roughly_double() {
        let m = CostModel::new(1.0, 0.01);
        let over = m.overhead_vs_sgd(&STEM);
        assert!(over > 0.9 && over < 1.1, "STEM overhead {over}");
    }

    #[test]
    fn prox_overhead_is_small_but_positive() {
        let m = CostModel::new(1.0, 0.05);
        let over = m.overhead_vs_sgd(&PROX);
        assert!(over > 0.0 && over < 0.2, "prox overhead {over}");
    }

    #[test]
    fn round_seconds_scales_with_steps() {
        let m = CostModel::new(0.5, 0.0);
        assert_eq!(m.round_seconds(&SGD, 10), 5.0);
        assert_eq!(m.round_seconds(&STEM, 10), 10.0);
    }

    #[test]
    fn deadline_admits_nominal_and_cuts_slow_stragglers() {
        let m = CostModel::new(0.5, 0.0);
        let d = m.deadline(&SGD, 10, 1.5);
        assert_eq!(d.seconds_per_step, 0.5);
        assert_eq!(d.seconds, 7.5);
        // Unimpaired client: 10 steps at nominal speed makes it.
        assert!(!d.misses(10, 1.0));
        // A straggler slower than the slack factor is cut…
        assert!(d.misses(10, 2.0));
        // …while one just inside the slack budget survives.
        assert!(!d.misses(10, 1.5));
    }

    #[test]
    #[should_panic(expected = "slack must be >= 1")]
    fn deadline_rejects_sub_unit_slack() {
        let _ = CostModel::new(0.5, 0.0).deadline(&SGD, 10, 0.9);
    }

    #[test]
    #[should_panic(expected = "zero per-step time")]
    fn deadline_rejects_zero_cost_model() {
        let _ = CostModel::new(0.0, 0.0).deadline(&SGD, 10, 2.0);
    }

    #[test]
    fn zero_cost_model_is_safe() {
        let m = CostModel::new(0.0, 0.0);
        assert_eq!(m.overhead_vs_sgd(&STEM), 0.0);
    }
}
