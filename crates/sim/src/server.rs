//! The server's upload pipeline: everything that happens between the
//! clients' uploads leaving the devices and the aggregation backend
//! accepting them — straggler slowdown, the synchronous deadline,
//! lossy compression with byte accounting, wire corruption, and
//! validation/quarantine.
//!
//! The pipeline runs strictly *before* the backend's `accept_update`
//! (see [`crate::AggregationBackend`]), so backends may start
//! accumulating eagerly: an upload that reaches `accept_update` is
//! final for the round.

use crate::backend::AggregationBackend;
use crate::fault::FaultKind;
use crate::runner::SimConfig;
use taco_core::{ClientUpdate, FederatedAlgorithm};
use taco_trace as trace;

/// What the pipeline did to a round's uploads.
pub(crate) struct UploadOutcome {
    /// Accounted wire bytes for the uploads that arrived.
    pub(crate) upload_bytes: usize,
    /// Uploads cut by the synchronous deadline.
    pub(crate) deadline_cuts: usize,
    /// Uploads quarantined by validation.
    pub(crate) quarantined: usize,
    /// Seconds spent in the compression phase span.
    pub(crate) compress_secs: f64,
}

impl UploadOutcome {
    /// Deadline cuts + quarantined uploads.
    pub(crate) fn updates_rejected(&self) -> usize {
        self.deadline_cuts + self.quarantined
    }
}

/// Runs the pipeline over this round's raw uploads (already sorted in
/// client order) and hands each survivor to the backend; quarantined
/// uploads are reported through the backend instead.
pub(crate) fn process_uploads(
    config: &SimConfig,
    fault_of: &[Option<FaultKind>],
    round: usize,
    mut updates: Vec<ClientUpdate>,
    algorithm: &mut dyn FederatedAlgorithm,
    backend: &mut dyn AggregationBackend,
) -> UploadOutcome {
    // Straggler slowdown + the server's synchronous deadline. The
    // deadline compares *simulated* time (steps × seconds_per_step ×
    // slowdown) so that cuts are deterministic; the measured wall
    // clock is only inflated for the timing metrics. Late uploads
    // never arrive, so they cost no accounted bytes.
    let mut deadline_cuts = 0usize;
    let mut quarantined = 0usize;
    if let Some(plan) = &config.fault_plan {
        for u in &mut updates {
            if let Some(FaultKind::Straggler { factor }) = fault_of[u.client] {
                u.compute_seconds *= factor;
            }
        }
        if let Some(deadline) = plan.deadline {
            updates.retain(|u| {
                let slowdown = match fault_of[u.client] {
                    Some(FaultKind::Straggler { factor }) => factor,
                    _ => 1.0,
                };
                if deadline.misses(u.steps, slowdown) {
                    deadline_cuts += 1;
                    trace::counter("sim.faults.deadline_cut").incr();
                    if trace::active() {
                        trace::emit(
                            &trace::Event::new("fault")
                                .with("round", round)
                                .with("client", u.client)
                                .with("fault", "deadline_cut"),
                        );
                    }
                    false
                } else {
                    true
                }
            });
        }
    }
    // Lossy upload compression + byte accounting. Each client encodes
    // with a salted per-(round, client) rounding stream, wire bytes
    // are measured from the actual encoding, and — when a fault plan
    // is active — wire corruption is applied to the *encoded* payload
    // (an index, a value slot, or the scale header), since that is
    // what travels. The update then carries both the encoding (for
    // decode-free aggregation and integrity validation) and the
    // decoded lossy delta (for algorithms and norm checks).
    let compress_span = trace::Span::quiet(crate::phase::COMPRESS);
    let upload_bytes: usize = match &config.upload_compressor {
        Some(c) => {
            let mut bytes = 0;
            for u in &mut updates {
                let mut stream = taco_core::compress::codec_stream(config.seed, round, u.client);
                let mut enc = c.encode(&u.delta, &mut stream);
                if config.fault_plan.is_some() {
                    if let Some(FaultKind::Corrupt(corruption)) = fault_of[u.client] {
                        crate::fault::apply_corruption_encoded(&mut enc, corruption);
                    }
                }
                bytes += enc.wire_bytes();
                u.delta = enc.decode();
                u.encoded = Some(enc);
            }
            bytes
        }
        None => updates.iter().map(|u| u.delta.len() * 4).sum(),
    };
    let compress_secs = compress_span.finish();
    trace::counter("sim.upload_bytes").add(upload_bytes as u64);
    // The server quarantines anything malformed, non-finite, or
    // norm-exploded before the backend sees it and reports the
    // offender to the algorithm's freeloader-detection machinery.
    // Quarantined uploads did arrive, so their bytes stay counted.
    if let Some(plan) = &config.fault_plan {
        // Uncompressed runs corrupt the dense floats directly (there
        // is no other wire representation to damage).
        if config.upload_compressor.is_none() {
            for u in &mut updates {
                if let Some(FaultKind::Corrupt(corruption)) = fault_of[u.client] {
                    crate::fault::apply_corruption(&mut u.delta, corruption);
                }
            }
        }
        for u in updates {
            match plan.validation.validate(&u) {
                Ok(()) => backend.accept_update(u),
                Err(reason) => {
                    quarantined += 1;
                    trace::counter("sim.faults.rejected").incr();
                    if trace::active() {
                        trace::emit(
                            &trace::Event::new("fault")
                                .with("round", round)
                                .with("client", u.client)
                                .with("fault", "quarantine")
                                .with("reason", reason.label()),
                        );
                    }
                    backend.report_invalid_update(u.client, algorithm);
                }
            }
        }
    } else {
        for u in updates {
            backend.accept_update(u);
        }
    }
    UploadOutcome {
        upload_bytes,
        deadline_cuts,
        quarantined,
        compress_secs,
    }
}
