//! The parameter-server round loop.

use crate::freeloader::ClientBehavior;
use crate::metrics::{History, RoundRecord};
use std::sync::Arc;
use taco_core::compress::Compressor;
use taco_core::{update, ClientUpdate, FederatedAlgorithm, HyperParams, LocalRule};
use taco_data::FederatedDataset;
use taco_nn::{Batch, Model};
use taco_tensor::{ops, Prng};
use taco_trace as trace;

/// Which clients take part in each round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Participation {
    /// Every client participates every round (the paper's setting).
    Full,
    /// A uniformly random subset of `⌈fraction·N⌉` clients per round
    /// (classic partial participation; deterministic given the run
    /// seed).
    Sample {
        /// Fraction of clients sampled per round, in `(0, 1]`.
        fraction: f64,
    },
}

/// Configuration of a simulation run.
#[derive(Clone)]
pub struct SimConfig {
    /// Shared FL hyper-parameters.
    pub hyper: HyperParams,
    /// Communication rounds `T`.
    pub rounds: usize,
    /// Base seed; every stochastic component derives from it.
    pub seed: u64,
    /// Per-client behaviours; defaults to all-honest.
    pub behaviors: Vec<ClientBehavior>,
    /// Run clients as parallel tasks on the shared worker pool
    /// ([`taco_tensor::pool`], sized by `TACO_THREADS`). Kernels inside
    /// a pooled client run inline, so total concurrency never exceeds
    /// the pool size; when the pool has one thread this flag is a
    /// no-op. Timing experiments (Table I, Fig. 5) should disable it so
    /// per-client wall-clock measurements don't contend for cores.
    /// Histories are bit-identical whatever this flag or the thread
    /// count — see the pool module docs.
    pub parallel: bool,
    /// Evaluate the global model every `eval_every` rounds (always
    /// including the last).
    pub eval_every: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Client participation scheme.
    pub participation: Participation,
    /// Per-client local step counts `τ_i` (system heterogeneity; used
    /// by FedNova-style normalized aggregation). `None` means every
    /// client runs `hyper.local_steps`.
    pub local_steps_per_client: Option<Vec<usize>>,
    /// Lossy codec applied to every honest upload `Δ_i` before it
    /// reaches the server, with its wire size recorded per round.
    pub upload_compressor: Option<Arc<dyn Compressor>>,
}

impl SimConfig {
    /// Creates a config with the defaults used throughout the
    /// experiment harness: parallel clients, evaluation every round,
    /// evaluation batch 64, all clients honest.
    pub fn new(hyper: HyperParams, rounds: usize, seed: u64) -> Self {
        SimConfig {
            hyper,
            rounds,
            seed,
            behaviors: vec![ClientBehavior::Honest; hyper.num_clients],
            parallel: true,
            eval_every: 1,
            eval_batch: 64,
            participation: Participation::Full,
            local_steps_per_client: None,
            upload_compressor: None,
        }
    }

    /// Builder-style upload-compression override.
    pub fn with_compressor(mut self, compressor: Arc<dyn Compressor>) -> Self {
        self.upload_compressor = Some(compressor);
        self
    }

    /// Builder-style partial-participation override.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn with_participation(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "participation fraction must be in (0, 1], got {fraction}"
        );
        self.participation = Participation::Sample { fraction };
        self
    }

    /// Builder-style heterogeneous local-step override.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the client count or any step
    /// count is zero.
    pub fn with_local_steps(mut self, steps: Vec<usize>) -> Self {
        assert_eq!(
            steps.len(),
            self.hyper.num_clients,
            "step count must match client count"
        );
        assert!(steps.iter().all(|&s| s > 0), "step counts must be positive");
        self.local_steps_per_client = Some(steps);
        self
    }

    /// Builder-style behaviour override.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the client count.
    pub fn with_behaviors(mut self, behaviors: Vec<ClientBehavior>) -> Self {
        assert_eq!(
            behaviors.len(),
            self.hyper.num_clients,
            "behaviour count must match client count"
        );
        self.behaviors = behaviors;
        self
    }

    /// Builder-style sequential-execution override (for timing runs).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Builder-style evaluation cadence override.
    ///
    /// # Panics
    ///
    /// Panics if `eval_every` is zero.
    pub fn with_eval_every(mut self, eval_every: usize) -> Self {
        assert!(eval_every > 0, "eval_every must be positive");
        self.eval_every = eval_every;
        self
    }
}

impl std::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConfig")
            .field("hyper", &self.hyper)
            .field("rounds", &self.rounds)
            .field("seed", &self.seed)
            .field("behaviors", &self.behaviors)
            .field("parallel", &self.parallel)
            .field("eval_every", &self.eval_every)
            .field("eval_batch", &self.eval_batch)
            .field("participation", &self.participation)
            .field("local_steps_per_client", &self.local_steps_per_client)
            .field(
                "upload_compressor",
                &self.upload_compressor.as_ref().map(|c| c.name()),
            )
            .finish()
    }
}

/// Deterministic per-(round, client) RNG derivation: results never
/// depend on thread scheduling.
fn client_rng(seed: u64, round: usize, client: usize) -> Prng {
    let mixed = seed
        ^ (round as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (client as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
    Prng::seed_from_u64(mixed)
}

/// A federated-learning simulation: one algorithm, one federation, one
/// model architecture.
pub struct Simulation {
    fed: FederatedDataset,
    prototype: Box<dyn Model>,
    algorithm: Box<dyn FederatedAlgorithm>,
    config: SimConfig,
    eval_batches: Vec<Batch>,
}

struct ClientJob {
    client: usize,
    rule: LocalRule,
    num_samples: usize,
    steps: usize,
}

impl Simulation {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if the federation's client count differs from
    /// `config.hyper.num_clients`.
    pub fn new(
        fed: FederatedDataset,
        prototype: Box<dyn Model>,
        algorithm: Box<dyn FederatedAlgorithm>,
        config: SimConfig,
    ) -> Self {
        assert_eq!(
            fed.num_clients(),
            config.hyper.num_clients,
            "federation has {} clients but hyper says {}",
            fed.num_clients(),
            config.hyper.num_clients
        );
        let eval_batches = fed.test().eval_batches(config.eval_batch);
        Simulation {
            fed,
            prototype,
            algorithm,
            config,
            eval_batches,
        }
    }

    /// Runs the full training loop and returns the trajectory.
    pub fn run(mut self) -> History {
        let mut prototype = self.prototype.clone_model();
        let mut global = prototype.params();
        let mut prev_global = global.clone();
        let mut history = History {
            algorithm: self.algorithm.name().to_string(),
            rounds: Vec::with_capacity(self.config.rounds),
            expelled_clients: Vec::new(),
        };
        let hyper = self.config.hyper;
        let needs_momentum_upload = self.algorithm.uploads_momentum();
        for round in 0..self.config.rounds {
            let round_span = trace::quiet_span!("sim.round");
            let draw_span = trace::quiet_span!("sim.phase.participation");
            self.algorithm.begin_round(round, &global);
            let expelled: Vec<usize> = self.algorithm.expelled();
            let n = self.fed.num_clients();
            let mut expelled_mask = vec![false; n];
            for &c in &expelled {
                if c < n {
                    expelled_mask[c] = true;
                }
            }
            // Participation draw (deterministic per round).
            let participating: Vec<bool> = match self.config.participation {
                Participation::Full => vec![true; n],
                Participation::Sample { fraction } => {
                    let m = ((n as f64 * fraction).ceil() as usize).clamp(1, n);
                    let mut prng = client_rng(self.config.seed ^ 0x9A97, round, usize::MAX);
                    let chosen = prng.sample_indices(n, m);
                    let mut v = vec![false; n];
                    for c in chosen {
                        v[c] = true;
                    }
                    v
                }
            };
            // Build this round's jobs for honest, active clients.
            let mut jobs = Vec::new();
            let mut freeloader_updates = Vec::new();
            let mut skipped = 0u64;
            for client in 0..n {
                if expelled_mask[client] || !participating[client] {
                    skipped += 1;
                    continue;
                }
                match self.config.behaviors[client] {
                    ClientBehavior::Honest => jobs.push(ClientJob {
                        client,
                        rule: self.algorithm.local_rule(client, &global),
                        num_samples: self.fed.client(client).len(),
                        steps: self
                            .config
                            .local_steps_per_client
                            .as_ref()
                            .map_or(hyper.local_steps, |s| s[client]),
                    }),
                    ClientBehavior::Freeloader => {
                        // Upload the previous global update verbatim
                        // (Section IV-A): Δ_i = w_{t−1} − w_t, the
                        // parameter-space image of the last Δ_t.
                        let delta = ops::sub(&prev_global, &global);
                        let dim = delta.len();
                        freeloader_updates.push(ClientUpdate {
                            client,
                            delta,
                            num_samples: self.fed.client(client).len(),
                            final_v: needs_momentum_upload.then(|| vec![0.0; dim]),
                            mean_loss: 0.0,
                            grad_evals: 0,
                            steps: 0,
                            compute_seconds: 0.0,
                        });
                    }
                }
            }
            trace::counter("sim.clients_skipped").add(skipped);
            let participation_secs = draw_span.finish();
            if jobs.is_empty() && freeloader_updates.is_empty() {
                // Everyone expelled: freeze training here.
                break;
            }
            let local_span = trace::quiet_span!("sim.phase.local");
            let mut updates = self.execute_jobs(&global, jobs, round);
            updates.append(&mut freeloader_updates);
            updates.sort_by_key(|u| u.client);
            let local_secs = local_span.finish();
            // Lossy upload compression + byte accounting.
            let compress_span = trace::quiet_span!("sim.phase.compress");
            let upload_bytes: usize = match &self.config.upload_compressor {
                Some(c) => {
                    let mut bytes = 0;
                    for u in &mut updates {
                        u.delta = c.roundtrip(&u.delta);
                        bytes += c.payload_bytes(u.delta.len());
                    }
                    bytes
                }
                None => updates.iter().map(|u| u.delta.len() * 4).sum(),
            };
            let compress_secs = compress_span.finish();
            trace::counter("sim.upload_bytes").add(upload_bytes as u64);
            // Aggregate and advance.
            let aggregate_span = trace::quiet_span!("sim.phase.aggregate");
            let next = self.algorithm.aggregate(&global, &updates, &hyper);
            let aggregate_secs = aggregate_span.finish();
            prev_global = global;
            global = next;
            // Metrics.
            let honest: Vec<&ClientUpdate> = updates
                .iter()
                .filter(|u| self.config.behaviors[u.client] == ClientBehavior::Honest)
                .collect();
            let train_loss = if honest.is_empty() {
                0.0
            } else {
                honest.iter().map(|u| u.mean_loss as f64).sum::<f64>() / honest.len() as f64
            };
            let max_secs = updates
                .iter()
                .map(|u| u.compute_seconds)
                .fold(0.0, f64::max);
            let total_secs: f64 = updates.iter().map(|u| u.compute_seconds).sum();
            let evaluate_now =
                round % self.config.eval_every == 0 || round + 1 == self.config.rounds;
            let eval_span = trace::quiet_span!("sim.phase.eval");
            let (test_loss, test_acc) = if evaluate_now {
                let out = self.algorithm.output_params(&global);
                prototype.set_params(&out);
                let (l, a) = taco_nn::evaluate(&mut *prototype, &self.eval_batches);
                (l as f64, a as f64)
            } else {
                history
                    .rounds
                    .last()
                    .map(|r| (r.test_loss, r.test_accuracy))
                    .unwrap_or((0.0, 0.0))
            };
            let eval_secs = eval_span.finish();
            let alphas = self.algorithm.alphas().map(<[f32]>::to_vec);
            let expelled_now = self.algorithm.expelled().len();
            trace::counter("sim.rounds").incr();
            let round_secs = round_span.finish();
            if trace::active() {
                let mut event = trace::Event::new("round")
                    .with("round", round)
                    .with("algorithm", history.algorithm.as_str())
                    .with("clients_active", updates.len())
                    .with("clients_skipped", skipped)
                    .with("expelled", expelled_now)
                    .with("upload_bytes", upload_bytes)
                    .with("train_loss", train_loss)
                    .with("evaluated", evaluate_now)
                    .with("test_accuracy", test_acc)
                    .with("test_loss", test_loss)
                    .with("secs", round_secs)
                    .with("participation_secs", participation_secs)
                    .with("local_secs", local_secs)
                    .with("compress_secs", compress_secs)
                    .with("aggregate_secs", aggregate_secs)
                    .with("eval_secs", eval_secs)
                    .with("max_client_secs", max_secs)
                    .with("total_client_secs", total_secs);
                if let Some(a) = &alphas {
                    let mean = a.iter().map(|&x| x as f64).sum::<f64>() / a.len().max(1) as f64;
                    let min = a.iter().copied().fold(f32::INFINITY, f32::min);
                    let max = a.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    event = event
                        .with("alpha_mean", mean)
                        .with("alpha_min", min)
                        .with("alpha_max", max);
                }
                trace::emit(&event);
            }
            history.rounds.push(RoundRecord {
                round,
                test_accuracy: test_acc,
                test_loss,
                train_loss,
                max_client_seconds: max_secs,
                total_client_seconds: total_secs,
                alphas,
                expelled: expelled_now,
                upload_bytes,
            });
        }
        trace::flush();
        history.expelled_clients = self.algorithm.expelled();
        history
    }

    /// Executes honest-client jobs, sequentially or on the shared
    /// worker pool ([`taco_tensor::pool`]). One job is one pool task;
    /// tensor kernels invoked inside a pooled job detect they're on a
    /// worker thread and run inline, so clients and kernels share the
    /// same `TACO_THREADS` budget instead of oversubscribing. With
    /// `TACO_THREADS=1` (or [`SimConfig::sequential`]) everything runs
    /// on the caller; histories are bit-identical either way.
    fn execute_jobs(
        &self,
        global: &[f32],
        jobs: Vec<ClientJob>,
        round: usize,
    ) -> Vec<ClientUpdate> {
        let hyper = self.config.hyper;
        let seed = self.config.seed;
        let prototype = &self.prototype;
        let fed = &self.fed;
        let run_one = move |job: &ClientJob| -> ClientUpdate {
            let span = trace::span!(
                "client_step",
                round = round,
                client = job.client,
                steps = job.steps
            );
            let mut model = prototype.clone_model();
            model.set_params(global);
            let mut rng = client_rng(seed, round, job.client);
            // Wall-clock time is read only through taco-trace spans
            // (D2): the span both feeds the `client_compute.seconds`
            // histogram and hands back the measured duration.
            let compute_span = trace::Span::quiet("client_compute");
            let outcome = update::run_local_steps(
                &mut *model,
                fed.client(job.client),
                &job.rule,
                job.steps,
                hyper.eta_l,
                hyper.batch_size,
                &mut rng,
            );
            let elapsed = compute_span.finish();
            let mut u = ClientUpdate::from_outcome(job.client, job.num_samples, outcome);
            u.compute_seconds = elapsed;
            drop(span);
            u
        };
        if !self.config.parallel || jobs.len() <= 1 || taco_tensor::pool::threads() <= 1 {
            return jobs.iter().map(run_one).collect();
        }
        let mut results: Vec<Option<ClientUpdate>> = Vec::new();
        results.resize_with(jobs.len(), || None);
        taco_tensor::pool::for_each_chunk(&mut results, 1, |i, slot| {
            slot[0] = Some(run_one(&jobs[i]));
        });
        results
            .into_iter()
            // taco-check: allow(unwrap, pool::for_each_chunk visits every chunk exactly once, so every slot was filled)
            .map(|r| r.expect("client job not executed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_core::{AggWeighting, FedAvg, Taco};
    use taco_data::{partition, tabular};
    use taco_nn::Mlp;

    fn small_fed(clients: usize, seed: u64) -> FederatedDataset {
        let mut rng = Prng::seed_from_u64(seed);
        let spec = tabular::TabularSpec::adult_like().with_sizes(240, 80);
        let data = tabular::generate(&spec, &mut rng);
        let shards = partition::dirichlet(data.train.labels(), clients, 0.5, &mut rng);
        FederatedDataset::from_partition(data.train, data.test, &shards)
    }

    fn mlp(seed: u64) -> Box<dyn Model> {
        let mut rng = Prng::seed_from_u64(seed);
        Box::new(Mlp::new(14, &[16, 8], 2, &mut rng))
    }

    #[test]
    fn fedavg_learns_the_tabular_task() {
        let fed = small_fed(4, 1);
        let hyper = HyperParams::new(4, 10, 0.05, 16);
        let config = SimConfig::new(hyper, 10, 42);
        let history = Simulation::new(fed, mlp(1), Box::new(FedAvg::default()), config).run();
        assert_eq!(history.rounds.len(), 10);
        assert!(
            history.final_accuracy() > 0.6,
            "accuracy only {}",
            history.final_accuracy()
        );
    }

    /// Zeroes the measured wall-clock fields so two runs can be
    /// compared for bit-identical *learning* trajectories.
    fn zero_timing(mut h: History) -> History {
        for r in &mut h.rounds {
            r.max_client_seconds = 0.0;
            r.total_client_seconds = 0.0;
        }
        h
    }

    #[test]
    fn same_seed_same_history_parallel_or_not() {
        let hyper = HyperParams::new(4, 5, 0.05, 16);
        let run = |sequential: bool| {
            let config = SimConfig::new(hyper, 4, 7);
            let config = if sequential {
                config.sequential()
            } else {
                config
            };
            Simulation::new(small_fed(4, 2), mlp(2), Box::new(FedAvg::default()), config).run()
        };
        let parallel_a = zero_timing(run(false));
        let parallel_b = zero_timing(run(false));
        let sequential = zero_timing(run(true));
        // Bit-identical modulo measured timing: every accuracy, loss,
        // alpha, byte count, and expulsion matches field-for-field.
        assert_eq!(parallel_a, parallel_b);
        assert_eq!(parallel_a, sequential);
    }

    #[test]
    fn round_events_reach_the_sink_with_phase_breakdown() {
        let _guard = trace::test_guard();
        let sink = Arc::new(trace::MemorySink::new());
        let prev = trace::set_sink(sink.clone());
        let hyper = HyperParams::new(3, 2, 0.05, 8);
        let history = Simulation::new(
            small_fed(3, 14),
            mlp(14),
            Box::new(FedAvg::default()),
            SimConfig::new(hyper, 3, 5),
        )
        .run();
        trace::set_sink(prev);
        trace::clear_sink();
        let rounds = sink.events_of_kind("round");
        assert_eq!(rounds.len(), history.rounds.len());
        for (i, e) in rounds.iter().enumerate() {
            assert_eq!(
                e.field("round").and_then(trace::Value::as_f64),
                Some(i as f64)
            );
            for key in [
                "participation_secs",
                "local_secs",
                "compress_secs",
                "aggregate_secs",
                "eval_secs",
                "secs",
                "upload_bytes",
                "clients_active",
            ] {
                assert!(e.field(key).is_some(), "round event missing {key}");
            }
        }
        // Per-client spans rode along too: 3 clients × 3 rounds.
        let steps = sink.events_of_kind("span");
        assert_eq!(steps.len(), 9);
    }

    #[test]
    fn different_seeds_differ() {
        let hyper = HyperParams::new(4, 5, 0.05, 16);
        let h1 = Simulation::new(
            small_fed(4, 3),
            mlp(3),
            Box::new(FedAvg::default()),
            SimConfig::new(hyper, 3, 1),
        )
        .run();
        let h2 = Simulation::new(
            small_fed(4, 3),
            mlp(3),
            Box::new(FedAvg::default()),
            SimConfig::new(hyper, 3, 2),
        )
        .run();
        assert_ne!(h1.accuracy_series(), h2.accuracy_series());
    }

    #[test]
    fn taco_runs_with_freeloaders_and_records_alphas() {
        let fed = small_fed(5, 4);
        let hyper = HyperParams::new(5, 5, 0.05, 16);
        let taco = Taco::new(5, taco_core::taco::TacoConfig::paper_default(8, 5));
        let behaviors = crate::freeloader::with_freeloaders(5, 2);
        let config = SimConfig::new(hyper, 8, 11).with_behaviors(behaviors);
        let history = Simulation::new(fed, mlp(4), Box::new(taco), config).run();
        assert_eq!(history.rounds.len(), 8);
        let alphas = history.rounds.last().unwrap().alphas.as_ref().unwrap();
        assert_eq!(alphas.len(), 5);
        let _ = AggWeighting::Uniform; // silence unused import in cfg(test)
    }

    #[test]
    fn eval_every_carries_last_value_forward() {
        let fed = small_fed(3, 5);
        let hyper = HyperParams::new(3, 3, 0.05, 8);
        let config = SimConfig::new(hyper, 5, 1).with_eval_every(2);
        let history = Simulation::new(fed, mlp(5), Box::new(FedAvg::default()), config).run();
        // Rounds 1 and 3 (0-based) are carried forward.
        assert_eq!(
            history.rounds[1].test_accuracy,
            history.rounds[0].test_accuracy
        );
        assert_eq!(history.rounds.len(), 5);
    }

    #[test]
    fn partial_participation_runs_and_learns() {
        let fed = small_fed(6, 7);
        let hyper = HyperParams::new(6, 8, 0.05, 16);
        let config = SimConfig::new(hyper, 10, 3).with_participation(0.5);
        let history = Simulation::new(fed, mlp(7), Box::new(FedAvg::default()), config).run();
        assert_eq!(history.rounds.len(), 10);
        assert!(
            history.best_accuracy() > 0.6,
            "partial participation stuck at {}",
            history.best_accuracy()
        );
    }

    #[test]
    fn partial_participation_is_deterministic() {
        let hyper = HyperParams::new(6, 4, 0.05, 8);
        let run = || {
            Simulation::new(
                small_fed(6, 8),
                mlp(8),
                Box::new(FedAvg::default()),
                SimConfig::new(hyper, 5, 99).with_participation(0.34),
            )
            .run()
        };
        assert_eq!(run().accuracy_series(), run().accuracy_series());
    }

    #[test]
    fn heterogeneous_steps_feed_fednova() {
        let fed = small_fed(4, 9);
        let hyper = HyperParams::new(4, 8, 0.05, 16);
        let config = SimConfig::new(hyper, 8, 5).with_local_steps(vec![2, 4, 8, 16]);
        let history =
            Simulation::new(fed, mlp(9), Box::new(taco_core::FedNova::default()), config).run();
        assert!(
            history.best_accuracy() > 0.6,
            "FedNova under system heterogeneity stuck at {}",
            history.best_accuracy()
        );
    }

    #[test]
    fn compressed_uploads_still_learn_and_count_bytes() {
        let fed = small_fed(4, 12);
        let hyper = HyperParams::new(4, 8, 0.05, 16);
        let plain = SimConfig::new(hyper, 8, 6);
        let compressed = SimConfig::new(hyper, 8, 6)
            .with_compressor(Arc::new(taco_core::compress::TopK::new(0.1)));
        let h_plain = Simulation::new(
            small_fed(4, 12),
            mlp(12),
            Box::new(FedAvg::default()),
            plain,
        )
        .run();
        let h_comp = Simulation::new(fed, mlp(12), Box::new(FedAvg::default()), compressed).run();
        assert!(
            h_comp.total_upload_bytes() < h_plain.total_upload_bytes() / 2,
            "compression did not shrink uploads: {} vs {}",
            h_comp.total_upload_bytes(),
            h_plain.total_upload_bytes()
        );
        assert!(
            h_comp.best_accuracy() > 0.6,
            "compressed run stuck at {}",
            h_comp.best_accuracy()
        );
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn zero_participation_panics() {
        let hyper = HyperParams::new(2, 1, 0.1, 1);
        let _ = SimConfig::new(hyper, 1, 1).with_participation(0.0);
    }

    #[test]
    #[should_panic(expected = "federation has")]
    fn client_count_mismatch_panics() {
        let fed = small_fed(3, 6);
        let hyper = HyperParams::new(4, 3, 0.05, 8);
        let _ = Simulation::new(
            fed,
            mlp(6),
            Box::new(FedAvg::default()),
            SimConfig::new(hyper, 1, 1),
        );
    }
}
