//! The parameter-server round loop.

use crate::adversary::{self, AdversaryPlan};
use crate::backend::{AggregationBackend, BackendChoice};
use crate::churn::ChurnTrace;
use crate::client::{self, ClientJob};
use crate::fault::{FaultKind, FaultPlan};
use crate::freeloader::ClientBehavior;
use crate::metrics::{FaultTotals, History, RoundRecord};
use std::collections::BTreeMap;
use std::sync::Arc;
use taco_core::compress::Compressor;
use taco_core::{ClientUpdate, FederatedAlgorithm, HyperParams};
use taco_data::partition::{self, DriftSchedule};
use taco_data::{Dataset, FederatedDataset};
use taco_nn::{Batch, Model};
use taco_tensor::ops;
use taco_trace as trace;

/// Salt folded into the run seed for drift re-partitioning draws, so
/// the drift stream never aliases the training, participation, fault,
/// or coalition streams.
const DRIFT_SALT: u64 = 0xD81F;

/// Salt folded into the run seed for the per-round participation
/// sampling draw, keeping the subset-selection stream independent of
/// client training and every other salted stream in the workspace.
const PARTICIPATION_SALT: u64 = 0x9A97;

/// Which clients take part in each round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Participation {
    /// Every client participates every round (the paper's setting).
    Full,
    /// A uniformly random subset of `⌈fraction·N⌉` clients per round
    /// (classic partial participation; deterministic given the run
    /// seed).
    Sample {
        /// Fraction of clients sampled per round, in `(0, 1]`.
        fraction: f64,
    },
}

/// Configuration of a simulation run.
#[derive(Clone)]
pub struct SimConfig {
    /// Shared FL hyper-parameters.
    pub hyper: HyperParams,
    /// Communication rounds `T`.
    pub rounds: usize,
    /// Base seed; every stochastic component derives from it.
    pub seed: u64,
    /// Per-client behaviours; defaults to all-honest.
    pub behaviors: Vec<ClientBehavior>,
    /// Run clients as parallel tasks on the shared worker pool
    /// ([`taco_tensor::pool`], sized by `TACO_THREADS`). Kernels inside
    /// a pooled client run inline, so total concurrency never exceeds
    /// the pool size; when the pool has one thread this flag is a
    /// no-op. Timing experiments (Table I, Fig. 5) should disable it so
    /// per-client wall-clock measurements don't contend for cores.
    /// Histories are bit-identical whatever this flag or the thread
    /// count — see the pool module docs.
    pub parallel: bool,
    /// Evaluate the global model every `eval_every` rounds (always
    /// including the last).
    pub eval_every: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Client participation scheme.
    pub participation: Participation,
    /// Per-client local step counts `τ_i` (system heterogeneity; used
    /// by FedNova-style normalized aggregation). `None` means every
    /// client runs `hyper.local_steps`.
    pub local_steps_per_client: Option<Vec<usize>>,
    /// Lossy codec applied to every honest upload `Δ_i` before it
    /// reaches the server, with its wire size recorded per round.
    pub upload_compressor: Option<Arc<dyn Compressor>>,
    /// Deterministic fault injection (dropouts, stragglers, wire
    /// corruption) plus server-side deadline and update validation.
    /// `None` disables the subsystem entirely — trajectories are
    /// bit-identical to a plan-free run.
    pub fault_plan: Option<FaultPlan>,
    /// Which aggregation backend executes the server side of each
    /// round. Defaults from the `TACO_BACKEND`/`TACO_SHARDS`
    /// environment ([`BackendChoice::from_env`]); both backends are
    /// bit-identical, so this only affects wall-clock.
    pub backend: BackendChoice,
    /// Parameters of the model-update attacks mounted by non-honest
    /// behaviours. The plan is inert while every behaviour is honest
    /// or freeloading; which clients attack is `behaviors`' job.
    pub adversary: AdversaryPlan,
    /// Deterministic client join/leave schedule. `None` (and an
    /// event-free trace) leaves every round's eligible set — and the
    /// whole trajectory — bit-identical to a churn-free run.
    pub churn: Option<ChurnTrace>,
    /// Time-varying non-IID drift: re-partitions the pooled training
    /// data at a fixed cadence with an interpolated Dirichlet `φ`.
    /// `None` (and an inert schedule) changes nothing.
    pub drift: Option<DriftSchedule>,
}

impl SimConfig {
    /// Creates a config with the defaults used throughout the
    /// experiment harness: parallel clients, evaluation every round,
    /// evaluation batch 64, all clients honest.
    pub fn new(hyper: HyperParams, rounds: usize, seed: u64) -> Self {
        SimConfig {
            hyper,
            rounds,
            seed,
            behaviors: vec![ClientBehavior::Honest; hyper.num_clients],
            parallel: true,
            eval_every: 1,
            eval_batch: 64,
            participation: Participation::Full,
            local_steps_per_client: None,
            upload_compressor: None,
            fault_plan: None,
            backend: BackendChoice::from_env(),
            adversary: AdversaryPlan::default(),
            churn: None,
            drift: None,
        }
    }

    /// Builder-style adversary-plan override (attack knobs only; which
    /// clients attack is set via [`SimConfig::with_behaviors`]).
    pub fn with_adversary(mut self, plan: AdversaryPlan) -> Self {
        self.adversary = plan;
        self
    }

    /// Builder-style churn-trace override.
    ///
    /// # Panics
    ///
    /// Panics if the trace's client count differs from the config's.
    pub fn with_churn(mut self, trace: ChurnTrace) -> Self {
        assert_eq!(
            trace.num_clients(),
            self.hyper.num_clients,
            "churn trace covers {} clients but hyper says {}",
            trace.num_clients(),
            self.hyper.num_clients
        );
        self.churn = Some(trace);
        self
    }

    /// Builder-style drift-schedule override.
    pub fn with_drift(mut self, schedule: DriftSchedule) -> Self {
        self.drift = Some(schedule);
        self
    }

    /// Builder-style aggregation-backend override (wins over the
    /// `TACO_BACKEND` environment default).
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style upload-compression override.
    pub fn with_compressor(mut self, compressor: Arc<dyn Compressor>) -> Self {
        self.upload_compressor = Some(compressor);
        self
    }

    /// Builder-style fault-plan override.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder-style partial-participation override.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn with_participation(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "participation fraction must be in (0, 1], got {fraction}"
        );
        self.participation = Participation::Sample { fraction };
        self
    }

    /// Builder-style heterogeneous local-step override.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the client count or any step
    /// count is zero.
    pub fn with_local_steps(mut self, steps: Vec<usize>) -> Self {
        assert_eq!(
            steps.len(),
            self.hyper.num_clients,
            "step count must match client count"
        );
        assert!(steps.iter().all(|&s| s > 0), "step counts must be positive");
        self.local_steps_per_client = Some(steps);
        self
    }

    /// Builder-style behaviour override.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the client count.
    pub fn with_behaviors(mut self, behaviors: Vec<ClientBehavior>) -> Self {
        assert_eq!(
            behaviors.len(),
            self.hyper.num_clients,
            "behaviour count must match client count"
        );
        self.behaviors = behaviors;
        self
    }

    /// Builder-style sequential-execution override (for timing runs).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Builder-style evaluation cadence override.
    ///
    /// # Panics
    ///
    /// Panics if `eval_every` is zero.
    pub fn with_eval_every(mut self, eval_every: usize) -> Self {
        assert!(eval_every > 0, "eval_every must be positive");
        self.eval_every = eval_every;
        self
    }
}

impl std::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConfig")
            .field("hyper", &self.hyper)
            .field("rounds", &self.rounds)
            .field("seed", &self.seed)
            .field("behaviors", &self.behaviors)
            .field("parallel", &self.parallel)
            .field("eval_every", &self.eval_every)
            .field("eval_batch", &self.eval_batch)
            .field("participation", &self.participation)
            .field("local_steps_per_client", &self.local_steps_per_client)
            .field(
                "upload_compressor",
                &self.upload_compressor.as_ref().map(|c| c.name()),
            )
            .field("fault_plan", &self.fault_plan)
            .field("backend", &self.backend)
            .field("adversary", &self.adversary)
            .field("churn", &self.churn)
            .field("drift", &self.drift)
            .finish()
    }
}

/// A federated-learning simulation: one algorithm, one federation, one
/// model architecture.
pub struct Simulation {
    fed: FederatedDataset,
    prototype: Box<dyn Model>,
    algorithm: Box<dyn FederatedAlgorithm>,
    backend: Box<dyn AggregationBackend>,
    config: SimConfig,
    eval_batches: Vec<Batch>,
    /// The pooled training data, rebuilt from the initial shards, used
    /// as the re-partitioning source when a drift schedule is active.
    drift_pool: Option<Dataset>,
    /// Coalition attack directions, derived lazily per coalition id.
    coalition_dirs: BTreeMap<u16, Vec<f32>>,
}

impl Simulation {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if the federation's client count differs from
    /// `config.hyper.num_clients`.
    pub fn new(
        fed: FederatedDataset,
        prototype: Box<dyn Model>,
        algorithm: Box<dyn FederatedAlgorithm>,
        config: SimConfig,
    ) -> Self {
        assert_eq!(
            fed.num_clients(),
            config.hyper.num_clients,
            "federation has {} clients but hyper says {}",
            fed.num_clients(),
            config.hyper.num_clients
        );
        if let Some(trace) = &config.churn {
            assert_eq!(
                trace.num_clients(),
                fed.num_clients(),
                "churn trace covers {} clients but the federation has {}",
                trace.num_clients(),
                fed.num_clients()
            );
        }
        let eval_batches = fed.test().eval_batches(config.eval_batch);
        let backend = config.backend.build();
        // Re-pool the shards up front (in client order, so the pool is
        // a pure function of the initial partition) only when drift
        // can actually fire; an inert schedule costs nothing.
        let drift_pool = match &config.drift {
            Some(schedule) if !schedule.is_inert() => {
                let parts: Vec<&Dataset> = fed.clients().iter().collect();
                Some(Dataset::concat(&parts))
            }
            _ => None,
        };
        Simulation {
            fed,
            prototype,
            algorithm,
            backend,
            config,
            eval_batches,
            drift_pool,
            coalition_dirs: BTreeMap::new(),
        }
    }

    /// Runs the full training loop and returns the trajectory.
    pub fn run(mut self) -> History {
        let mut prototype = self.prototype.clone_model();
        let mut global = prototype.params();
        let mut prev_global = global.clone();
        let mut history = History {
            algorithm: self.algorithm.name().to_string(),
            rounds: Vec::with_capacity(self.config.rounds),
            expelled_clients: Vec::new(),
        };
        let hyper = self.config.hyper;
        let needs_momentum_upload = self.algorithm.uploads_momentum();
        let n = self.fed.num_clients();
        // Presence state across rounds, for join/depart edge detection.
        // Starting all-present means a round-0 absence is announced as
        // a departure, so lazily-held per-client state is retired even
        // for late arrivals.
        let mut prev_present = vec![true; n];
        for round in 0..self.config.rounds {
            // Phase spans use the stable names in [`crate::phase`]:
            // their `.seconds` histograms are a reported contract
            // consumed by the perf-trajectory suite.
            let round_span = trace::Span::quiet(crate::phase::ROUND);
            // Data drift fires before anything reads the shards: the
            // whole round (local training, sample counts, losses) sees
            // the re-partitioned federation.
            if let (Some(schedule), Some(pool)) = (&self.config.drift, &self.drift_pool) {
                if let Some(phi) = schedule.repartition_at(round) {
                    let mut rng =
                        client::client_rng(self.config.seed ^ DRIFT_SALT, round, usize::MAX);
                    let shards = partition::dirichlet(pool.labels(), n, phi, &mut rng);
                    let skew = partition::skew_statistic(pool.labels(), &shards);
                    trace::counter("sim.drift.repartitions").incr();
                    if trace::active() {
                        trace::emit(
                            &trace::Event::new("drift")
                                .with("round", round)
                                .with("phi", phi)
                                .with("skew", skew),
                        );
                    }
                    self.fed = FederatedDataset::from_partition(
                        pool.clone(),
                        self.fed.test().clone(),
                        &shards,
                    );
                }
            }
            let draw_span = trace::Span::quiet(crate::phase::PARTICIPATION);
            self.algorithm.begin_round(round, &global);
            self.backend
                .begin_round(round, &global, self.algorithm.as_ref());
            let expelled: Vec<usize> = self.algorithm.expelled();
            let mut expelled_mask = vec![false; n];
            for &c in &expelled {
                if c < n {
                    expelled_mask[c] = true;
                }
            }
            // Churn edges. Joins of expelled clients are never
            // announced — expulsion outlives any departure/rejoin
            // cycle — but presence still updates so the client isn't
            // re-announced later.
            let present: Vec<bool> = match &self.config.churn {
                Some(trace) => trace.present_mask(round),
                None => vec![true; n],
            };
            for c in 0..n {
                if present[c] == prev_present[c] {
                    continue;
                }
                if present[c] {
                    if !expelled_mask[c] {
                        self.algorithm.client_joined(c);
                        trace::counter("sim.churn.joins").incr();
                        if trace::active() {
                            trace::emit(
                                &trace::Event::new("churn")
                                    .with("round", round)
                                    .with("client", c)
                                    .with("event", "join"),
                            );
                        }
                    }
                } else {
                    self.algorithm.client_departed(c);
                    trace::counter("sim.churn.departures").incr();
                    if trace::active() {
                        trace::emit(
                            &trace::Event::new("churn")
                                .with("round", round)
                                .with("client", c)
                                .with("event", "depart"),
                        );
                    }
                }
            }
            prev_present = present.clone();
            // Only a fully-expelled federation freezes training; every
            // other degenerate round (nothing sampled, nobody present,
            // everyone dropped or quarantined) is recorded as empty
            // and the run continues.
            if expelled_mask.iter().all(|&e| e) {
                break;
            }
            let eligible: Vec<usize> = (0..n)
                .filter(|&c| !expelled_mask[c] && present[c])
                .collect();
            // Participation draw (deterministic per round). The subset
            // is drawn from the *eligible* clients — sampling all N
            // and filtering expelled ones afterwards would silently
            // shrink effective participation as freeloaders are
            // expelled. Without expulsions or churn `eligible` is the
            // identity map, so the historical stream is reproduced bit
            // for bit; the per-round draw consumes a fresh generator,
            // so an all-absent round doesn't shift later draws.
            let participating: Vec<bool> = match self.config.participation {
                Participation::Full => {
                    let mut v = vec![false; n];
                    for &c in &eligible {
                        v[c] = true;
                    }
                    v
                }
                Participation::Sample { .. } if eligible.is_empty() => vec![false; n],
                Participation::Sample { fraction } => {
                    let m = ((eligible.len() as f64 * fraction).ceil() as usize)
                        .clamp(1, eligible.len());
                    let mut prng = client::client_rng(
                        self.config.seed ^ PARTICIPATION_SALT,
                        round,
                        usize::MAX,
                    );
                    let chosen = prng.sample_indices(eligible.len(), m);
                    let mut v = vec![false; n];
                    for c in chosen {
                        v[eligible[c]] = true;
                    }
                    v
                }
            };
            // Fault draws: a pure per-(round, client) function of the
            // seed and plan, so they are identical whatever the thread
            // count or execution order.
            let fault_of: Vec<Option<FaultKind>> = (0..n)
                .map(|c| {
                    if expelled_mask[c] || !participating[c] {
                        return None;
                    }
                    self.config
                        .fault_plan
                        .as_ref()
                        .and_then(|p| p.fault_for(self.config.seed, round, c))
                })
                .collect();
            let mut fault_totals = FaultTotals::default();
            for (client, fault) in fault_of.iter().enumerate() {
                let Some(kind) = fault else { continue };
                trace::counter(match kind {
                    FaultKind::Dropout => {
                        fault_totals.dropouts += 1;
                        "sim.faults.dropout"
                    }
                    FaultKind::Straggler { .. } => {
                        fault_totals.stragglers += 1;
                        "sim.faults.straggler"
                    }
                    FaultKind::Corrupt(_) => {
                        fault_totals.corruptions += 1;
                        "sim.faults.corrupt"
                    }
                })
                .incr();
                if trace::active() {
                    trace::emit(
                        &trace::Event::new("fault")
                            .with("round", round)
                            .with("client", client)
                            .with("fault", kind.label()),
                    );
                }
            }
            let faults_injected = fault_totals.injected();
            // Build this round's jobs. Attackers run the honest local
            // computation (their transform comes later); freeloaders
            // skip it and echo the previous global update.
            let mut jobs = Vec::new();
            let mut freeloader_updates = Vec::new();
            let mut skipped = 0u64;
            for client in 0..n {
                if expelled_mask[client] || !participating[client] {
                    skipped += 1;
                    continue;
                }
                if fault_of[client] == Some(FaultKind::Dropout) {
                    // The update never arrives; honest dropouts also
                    // skip the (wasted) local computation.
                    continue;
                }
                match self.config.behaviors[client] {
                    ClientBehavior::Honest
                    | ClientBehavior::SignFlip
                    | ClientBehavior::Boost
                    | ClientBehavior::Colluder { .. } => jobs.push(ClientJob {
                        client,
                        rule: self.algorithm.local_rule(client, &global),
                        num_samples: self.fed.client(client).len(),
                        steps: self
                            .config
                            .local_steps_per_client
                            .as_ref()
                            .map_or(hyper.local_steps, |s| s[client]),
                    }),
                    ClientBehavior::Freeloader => {
                        // Upload the previous global update verbatim
                        // (Section IV-A): Δ_i = w_{t−1} − w_t, the
                        // parameter-space image of the last Δ_t.
                        let delta = ops::sub(&prev_global, &global);
                        let dim = delta.len();
                        freeloader_updates.push(ClientUpdate {
                            client,
                            delta,
                            num_samples: self.fed.client(client).len(),
                            final_v: needs_momentum_upload.then(|| vec![0.0; dim]),
                            mean_loss: 0.0,
                            grad_evals: 0,
                            steps: 0,
                            compute_seconds: 0.0,
                            encoded: None,
                        });
                    }
                }
            }
            trace::counter("sim.clients_skipped").add(skipped);
            let participation_secs = draw_span.finish();
            let local_span = trace::Span::quiet(crate::phase::LOCAL);
            let mut updates = client::execute_jobs(
                &*self.prototype,
                &self.fed,
                &global,
                jobs,
                round,
                &hyper,
                self.config.seed,
                self.config.parallel,
            );
            updates.append(&mut freeloader_updates);
            updates.sort_by_key(|u| u.client);
            let local_secs = local_span.finish();
            // Model-update attacks: applied in client order on the
            // device side of the wire, upstream of compression,
            // corruption, and validation. A pure per-update transform,
            // so attacked runs stay bit-identical across thread counts
            // and backends.
            let mut attacks_applied = 0usize;
            for u in &mut updates {
                let label = adversary::apply(
                    &self.config.adversary,
                    self.config.behaviors[u.client],
                    self.config.seed,
                    round,
                    &mut u.delta,
                    &mut self.coalition_dirs,
                );
                let Some(label) = label else { continue };
                attacks_applied += 1;
                trace::counter(match label {
                    "sign_flip" => "sim.attacks.sign_flip",
                    "boost" => "sim.attacks.boost",
                    _ => "sim.attacks.collude",
                })
                .incr();
                if trace::active() {
                    trace::emit(
                        &trace::Event::new("attack")
                            .with("round", round)
                            .with("client", u.client)
                            .with("attack", label),
                    );
                }
            }
            // The server pipeline (stragglers, deadline, compression,
            // corruption, validation) hands every survivor to the
            // aggregation backend in client order; see
            // [`crate::server`].
            let outcome = crate::server::process_uploads(
                &self.config,
                &fault_of,
                round,
                updates,
                self.algorithm.as_mut(),
                self.backend.as_mut(),
            );
            let upload_bytes = outcome.upload_bytes;
            fault_totals.deadline_cuts = outcome.deadline_cuts;
            fault_totals.quarantined = outcome.quarantined;
            let updates_rejected = outcome.updates_rejected();
            let compress_secs = outcome.compress_secs;
            // Aggregate and advance. A round with no surviving
            // updates (all sampled clients dropped, cut, or
            // quarantined) holds the global model and is still
            // recorded, so the trajectory keeps its round indexing.
            let aggregate_span = trace::Span::quiet(crate::phase::AGGREGATE);
            let agg = self
                .backend
                .finish_round(&global, &hyper, self.algorithm.as_mut());
            let updates = agg.updates;
            let next = agg.next_global.unwrap_or_else(|| global.clone());
            let aggregate_secs = aggregate_span.finish();
            prev_global = global;
            global = next;
            // Metrics. Rounds without an honest participant carry the
            // previous train loss forward (a 0.0 would plot as a
            // perfect loss) and are marked as carried.
            let honest: Vec<&ClientUpdate> = updates
                .iter()
                .filter(|u| self.config.behaviors[u.client] == ClientBehavior::Honest)
                .collect();
            let (train_loss, train_loss_carried) = if honest.is_empty() {
                (history.rounds.last().map_or(0.0, |r| r.train_loss), true)
            } else {
                (
                    honest.iter().map(|u| u.mean_loss as f64).sum::<f64>() / honest.len() as f64,
                    false,
                )
            };
            let max_secs = updates
                .iter()
                .map(|u| u.compute_seconds)
                .fold(0.0, f64::max);
            let total_secs: f64 = updates.iter().map(|u| u.compute_seconds).sum();
            let evaluate_now =
                round % self.config.eval_every == 0 || round + 1 == self.config.rounds;
            let eval_span = trace::Span::quiet(crate::phase::EVAL);
            let (test_loss, test_acc) = if evaluate_now {
                let out = self.algorithm.output_params(&global);
                prototype.set_params(&out);
                let (l, a) = taco_nn::evaluate(&mut *prototype, &self.eval_batches);
                (l as f64, a as f64)
            } else {
                history
                    .rounds
                    .last()
                    .map(|r| (r.test_loss, r.test_accuracy))
                    .unwrap_or((0.0, 0.0))
            };
            let eval_secs = eval_span.finish();
            let alphas = self.algorithm.alphas().map(<[f32]>::to_vec);
            let expelled_now = self.algorithm.expelled().len();
            let mut suspected = self.algorithm.suspected();
            suspected.sort_unstable();
            suspected.dedup();
            let tracked_states = self.algorithm.tracked_client_states();
            let participants: Vec<usize> = (0..n).filter(|&c| participating[c]).collect();
            trace::counter("sim.rounds").incr();
            let round_secs = round_span.finish();
            if trace::active() {
                let mut event = trace::Event::new("round")
                    .with("round", round)
                    .with("algorithm", history.algorithm.as_str())
                    .with("clients_active", updates.len())
                    .with("clients_skipped", skipped)
                    .with("expelled", expelled_now)
                    .with("faults_injected", faults_injected)
                    .with("updates_rejected", updates_rejected)
                    .with("attacks_applied", attacks_applied)
                    .with("suspected", suspected.len())
                    .with("tracked_states", tracked_states)
                    .with("upload_bytes", upload_bytes)
                    .with("train_loss", train_loss)
                    .with("train_loss_carried", train_loss_carried)
                    .with("evaluated", evaluate_now)
                    .with("test_accuracy", test_acc)
                    .with("test_loss", test_loss)
                    .with("secs", round_secs)
                    .with("participation_secs", participation_secs)
                    .with("local_secs", local_secs)
                    .with("compress_secs", compress_secs)
                    .with("aggregate_secs", aggregate_secs)
                    .with("eval_secs", eval_secs)
                    .with("max_client_secs", max_secs)
                    .with("total_client_secs", total_secs);
                if let Some(a) = &alphas {
                    let mean = a.iter().map(|&x| x as f64).sum::<f64>() / a.len().max(1) as f64;
                    let min = a.iter().copied().fold(f32::INFINITY, f32::min);
                    let max = a.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    event = event
                        .with("alpha_mean", mean)
                        .with("alpha_min", min)
                        .with("alpha_max", max);
                }
                trace::emit(&event);
            }
            history.rounds.push(RoundRecord {
                round,
                test_accuracy: test_acc,
                test_loss,
                train_loss,
                train_loss_carried,
                max_client_seconds: max_secs,
                total_client_seconds: total_secs,
                alphas,
                expelled: expelled_now,
                upload_bytes,
                faults_injected,
                updates_rejected,
                participants,
                suspected,
                attacks_applied,
                fault_totals,
                tracked_states,
            });
        }
        trace::flush();
        history.expelled_clients = self.algorithm.expelled();
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_core::{AggWeighting, FedAvg, LocalRule, Taco};
    use taco_data::{partition, tabular};
    use taco_nn::Mlp;
    use taco_tensor::Prng;

    fn small_fed(clients: usize, seed: u64) -> FederatedDataset {
        let mut rng = Prng::seed_from_u64(seed);
        let spec = tabular::TabularSpec::adult_like().with_sizes(240, 80);
        let data = tabular::generate(&spec, &mut rng);
        let shards = partition::dirichlet(data.train.labels(), clients, 0.5, &mut rng);
        FederatedDataset::from_partition(data.train, data.test, &shards)
    }

    fn mlp(seed: u64) -> Box<dyn Model> {
        let mut rng = Prng::seed_from_u64(seed);
        Box::new(Mlp::new(14, &[16, 8], 2, &mut rng))
    }

    #[test]
    fn fedavg_learns_the_tabular_task() {
        let fed = small_fed(4, 1);
        let hyper = HyperParams::new(4, 10, 0.05, 16);
        let config = SimConfig::new(hyper, 10, 42);
        let history = Simulation::new(fed, mlp(1), Box::new(FedAvg::default()), config).run();
        assert_eq!(history.rounds.len(), 10);
        assert!(
            history.final_accuracy() > 0.6,
            "accuracy only {}",
            history.final_accuracy()
        );
    }

    /// Zeroes the measured wall-clock fields so two runs can be
    /// compared for bit-identical *learning* trajectories.
    fn zero_timing(mut h: History) -> History {
        for r in &mut h.rounds {
            r.max_client_seconds = 0.0;
            r.total_client_seconds = 0.0;
        }
        h
    }

    #[test]
    fn same_seed_same_history_parallel_or_not() {
        let hyper = HyperParams::new(4, 5, 0.05, 16);
        let run = |sequential: bool| {
            let config = SimConfig::new(hyper, 4, 7);
            let config = if sequential {
                config.sequential()
            } else {
                config
            };
            Simulation::new(small_fed(4, 2), mlp(2), Box::new(FedAvg::default()), config).run()
        };
        let parallel_a = zero_timing(run(false));
        let parallel_b = zero_timing(run(false));
        let sequential = zero_timing(run(true));
        // Bit-identical modulo measured timing: every accuracy, loss,
        // alpha, byte count, and expulsion matches field-for-field.
        assert_eq!(parallel_a, parallel_b);
        assert_eq!(parallel_a, sequential);
    }

    #[test]
    fn round_events_reach_the_sink_with_phase_breakdown() {
        let _guard = trace::test_guard();
        let sink = Arc::new(trace::MemorySink::new());
        let prev = trace::set_sink(sink.clone());
        let hyper = HyperParams::new(3, 2, 0.05, 8);
        let history = Simulation::new(
            small_fed(3, 14),
            mlp(14),
            Box::new(FedAvg::default()),
            SimConfig::new(hyper, 3, 5),
        )
        .run();
        trace::set_sink(prev);
        trace::clear_sink();
        let rounds = sink.events_of_kind("round");
        assert_eq!(rounds.len(), history.rounds.len());
        for (i, e) in rounds.iter().enumerate() {
            assert_eq!(
                e.field("round").and_then(trace::Value::as_f64),
                Some(i as f64)
            );
            for key in [
                "participation_secs",
                "local_secs",
                "compress_secs",
                "aggregate_secs",
                "eval_secs",
                "secs",
                "upload_bytes",
                "clients_active",
            ] {
                assert!(e.field(key).is_some(), "round event missing {key}");
            }
        }
        // Per-client spans rode along too: 3 clients × 3 rounds.
        let steps = sink.events_of_kind("span");
        assert_eq!(steps.len(), 9);
    }

    #[test]
    fn different_seeds_differ() {
        let hyper = HyperParams::new(4, 5, 0.05, 16);
        let h1 = Simulation::new(
            small_fed(4, 3),
            mlp(3),
            Box::new(FedAvg::default()),
            SimConfig::new(hyper, 3, 1),
        )
        .run();
        let h2 = Simulation::new(
            small_fed(4, 3),
            mlp(3),
            Box::new(FedAvg::default()),
            SimConfig::new(hyper, 3, 2),
        )
        .run();
        assert_ne!(h1.accuracy_series(), h2.accuracy_series());
    }

    #[test]
    fn taco_runs_with_freeloaders_and_records_alphas() {
        let fed = small_fed(5, 4);
        let hyper = HyperParams::new(5, 5, 0.05, 16);
        let taco = Taco::new(5, taco_core::taco::TacoConfig::paper_default(8, 5));
        let behaviors = crate::freeloader::with_freeloaders(5, 2);
        let config = SimConfig::new(hyper, 8, 11).with_behaviors(behaviors);
        let history = Simulation::new(fed, mlp(4), Box::new(taco), config).run();
        assert_eq!(history.rounds.len(), 8);
        let alphas = history.rounds.last().unwrap().alphas.as_ref().unwrap();
        assert_eq!(alphas.len(), 5);
        let _ = AggWeighting::Uniform; // silence unused import in cfg(test)
    }

    #[test]
    fn eval_every_carries_last_value_forward() {
        let fed = small_fed(3, 5);
        let hyper = HyperParams::new(3, 3, 0.05, 8);
        let config = SimConfig::new(hyper, 5, 1).with_eval_every(2);
        let history = Simulation::new(fed, mlp(5), Box::new(FedAvg::default()), config).run();
        // Rounds 1 and 3 (0-based) are carried forward.
        assert_eq!(
            history.rounds[1].test_accuracy,
            history.rounds[0].test_accuracy
        );
        assert_eq!(history.rounds.len(), 5);
    }

    #[test]
    fn partial_participation_runs_and_learns() {
        let fed = small_fed(6, 7);
        let hyper = HyperParams::new(6, 8, 0.05, 16);
        let config = SimConfig::new(hyper, 10, 3).with_participation(0.5);
        let history = Simulation::new(fed, mlp(7), Box::new(FedAvg::default()), config).run();
        assert_eq!(history.rounds.len(), 10);
        assert!(
            history.best_accuracy() > 0.6,
            "partial participation stuck at {}",
            history.best_accuracy()
        );
    }

    #[test]
    fn partial_participation_is_deterministic() {
        let hyper = HyperParams::new(6, 4, 0.05, 8);
        let run = || {
            Simulation::new(
                small_fed(6, 8),
                mlp(8),
                Box::new(FedAvg::default()),
                SimConfig::new(hyper, 5, 99).with_participation(0.34),
            )
            .run()
        };
        assert_eq!(run().accuracy_series(), run().accuracy_series());
    }

    #[test]
    fn heterogeneous_steps_feed_fednova() {
        let fed = small_fed(4, 9);
        let hyper = HyperParams::new(4, 8, 0.05, 16);
        let config = SimConfig::new(hyper, 8, 5).with_local_steps(vec![2, 4, 8, 16]);
        let history =
            Simulation::new(fed, mlp(9), Box::new(taco_core::FedNova::default()), config).run();
        assert!(
            history.best_accuracy() > 0.6,
            "FedNova under system heterogeneity stuck at {}",
            history.best_accuracy()
        );
    }

    #[test]
    fn compressed_uploads_still_learn_and_count_bytes() {
        let fed = small_fed(4, 12);
        let hyper = HyperParams::new(4, 8, 0.05, 16);
        let plain = SimConfig::new(hyper, 8, 6);
        let compressed = SimConfig::new(hyper, 8, 6)
            .with_compressor(Arc::new(taco_core::compress::TopK::new(0.1)));
        let h_plain = Simulation::new(
            small_fed(4, 12),
            mlp(12),
            Box::new(FedAvg::default()),
            plain,
        )
        .run();
        let h_comp = Simulation::new(fed, mlp(12), Box::new(FedAvg::default()), compressed).run();
        assert!(
            h_comp.total_upload_bytes() < h_plain.total_upload_bytes() / 2,
            "compression did not shrink uploads: {} vs {}",
            h_comp.total_upload_bytes(),
            h_plain.total_upload_bytes()
        );
        assert!(
            h_comp.best_accuracy() > 0.6,
            "compressed run stuck at {}",
            h_comp.best_accuracy()
        );
    }

    /// FedAvg with a fixed pre-expelled set, for exercising the
    /// runner's eligible-set handling without real detection.
    struct ForcedExpulsion {
        inner: FedAvg,
        expelled: Vec<usize>,
    }

    impl FederatedAlgorithm for ForcedExpulsion {
        fn name(&self) -> &'static str {
            "forced-expulsion"
        }
        fn local_rule(&self, client: usize, global: &[f32]) -> LocalRule {
            self.inner.local_rule(client, global)
        }
        fn aggregate(
            &mut self,
            global: &[f32],
            updates: &[ClientUpdate],
            hyper: &HyperParams,
        ) -> Vec<f32> {
            self.inner.aggregate(global, updates, hyper)
        }
        fn expelled(&self) -> Vec<usize> {
            self.expelled.clone()
        }
    }

    /// Regression for the early-exit bug: a partially-expelled
    /// federation under partial participation must keep training for
    /// all configured rounds, drawing `⌈fraction·|eligible|⌉` from the
    /// eligible set only (6 clients, 2 expelled, fraction 0.34 → 2 of
    /// the 4 survivors per round). The old code sampled from all N and
    /// filtered afterwards, shrinking effective participation — and a
    /// round whose draw happened to land entirely on expelled clients
    /// silently ended the run.
    #[test]
    fn expelled_minority_does_not_end_training_early() {
        let _guard = trace::test_guard();
        let sink = Arc::new(trace::MemorySink::new());
        let prev = trace::set_sink(sink.clone());
        let hyper = HyperParams::new(6, 4, 0.05, 8);
        let algorithm = ForcedExpulsion {
            inner: FedAvg::default(),
            expelled: vec![0, 1],
        };
        let config = SimConfig::new(hyper, 6, 21).with_participation(0.34);
        let history = Simulation::new(small_fed(6, 21), mlp(21), Box::new(algorithm), config).run();
        trace::set_sink(prev);
        trace::clear_sink();
        assert_eq!(history.rounds.len(), 6, "training ended early");
        assert!(history.rounds.iter().all(|r| r.expelled == 2));
        for e in sink.events_of_kind("round") {
            // ⌈0.34 · 4⌉ = 2 eligible clients participate every round.
            assert_eq!(
                e.field("clients_active").and_then(trace::Value::as_f64),
                Some(2.0)
            );
        }
    }

    #[test]
    fn fully_expelled_federation_freezes_training() {
        let hyper = HyperParams::new(3, 2, 0.05, 8);
        let algorithm = ForcedExpulsion {
            inner: FedAvg::default(),
            expelled: vec![0, 1, 2],
        };
        let history = Simulation::new(
            small_fed(3, 22),
            mlp(22),
            Box::new(algorithm),
            SimConfig::new(hyper, 5, 1),
        )
        .run();
        assert!(history.rounds.is_empty(), "frozen run still has rounds");
        assert_eq!(history.expelled_clients, vec![0, 1, 2]);
    }

    /// Regression for the train-loss hole: rounds with no honest
    /// participant used to record `train_loss = 0.0`, which plots as a
    /// perfect loss. Dropping the sole honest client via a targeted
    /// fault makes every later round freeloader-only; the measured
    /// round-0 value must be carried forward and marked.
    #[test]
    fn honest_free_rounds_carry_train_loss_forward() {
        let hyper = HyperParams::new(2, 4, 0.05, 8);
        let plan = FaultPlan::new()
            .with_dropouts(1.0)
            .targeting(vec![0])
            .starting_at(1);
        let config = SimConfig::new(hyper, 4, 9)
            .with_behaviors(vec![ClientBehavior::Honest, ClientBehavior::Freeloader])
            .with_fault_plan(plan);
        let history = Simulation::new(
            small_fed(2, 23),
            mlp(23),
            Box::new(FedAvg::default()),
            config,
        )
        .run();
        assert_eq!(history.rounds.len(), 4);
        let first = &history.rounds[0];
        assert!(!first.train_loss_carried);
        assert!(first.train_loss > 0.0, "round 0 measured no loss");
        for r in &history.rounds[1..] {
            assert!(r.train_loss_carried, "round {} not marked carried", r.round);
            assert_eq!(r.train_loss, first.train_loss);
            assert_eq!(r.faults_injected, 1);
        }
    }

    #[test]
    fn faulted_histories_are_bit_identical_parallel_or_not() {
        let hyper = HyperParams::new(5, 5, 0.05, 16);
        let plan = FaultPlan::new()
            .with_dropouts(0.25)
            .with_stragglers(0.25, 3.0)
            .with_corruption(0.2, 1e9);
        let run = |sequential: bool| {
            let config = SimConfig::new(hyper, 6, 77).with_fault_plan(plan.clone());
            let config = if sequential {
                config.sequential()
            } else {
                config
            };
            Simulation::new(
                small_fed(5, 24),
                mlp(24),
                Box::new(FedAvg::default()),
                config,
            )
            .run()
        };
        let parallel_a = zero_timing(run(false));
        let parallel_b = zero_timing(run(false));
        let sequential = zero_timing(run(true));
        assert!(
            parallel_a.total_faults_injected() > 0,
            "plan never fired; the determinism check is vacuous"
        );
        assert_eq!(parallel_a, parallel_b);
        assert_eq!(parallel_a, sequential);
    }

    #[test]
    fn inert_plan_matches_plan_free_run() {
        let hyper = HyperParams::new(4, 5, 0.05, 16);
        let with_plan = SimConfig::new(hyper, 4, 13).with_fault_plan(FaultPlan::new());
        let without = SimConfig::new(hyper, 4, 13);
        let h_plan = zero_timing(
            Simulation::new(
                small_fed(4, 25),
                mlp(25),
                Box::new(FedAvg::default()),
                with_plan,
            )
            .run(),
        );
        let h_none = zero_timing(
            Simulation::new(
                small_fed(4, 25),
                mlp(25),
                Box::new(FedAvg::default()),
                without,
            )
            .run(),
        );
        assert_eq!(h_plan, h_none);
        assert_eq!(h_plan.total_faults_injected(), 0);
        assert_eq!(h_plan.total_updates_rejected(), 0);
    }

    #[test]
    fn total_dropout_holds_the_global_model_but_keeps_round_indexing() {
        let hyper = HyperParams::new(3, 3, 0.05, 8);
        let plan = FaultPlan::new().with_dropouts(1.0);
        let config = SimConfig::new(hyper, 4, 31).with_fault_plan(plan);
        let history = Simulation::new(
            small_fed(3, 26),
            mlp(26),
            Box::new(FedAvg::default()),
            config,
        )
        .run();
        assert_eq!(history.rounds.len(), 4, "empty rounds must still count");
        assert_eq!(history.total_faults_injected(), 3 * 4);
        let acc0 = history.rounds[0].test_accuracy;
        for r in &history.rounds {
            assert_eq!(r.test_accuracy, acc0, "global moved in an empty round");
            assert!(r.train_loss_carried);
            assert_eq!(r.upload_bytes, 0);
        }
    }

    #[test]
    fn quarantine_evidence_expels_the_corrupt_client() {
        // Client 0 corrupts every upload into a norm explosion the
        // validator rejects; each quarantine is reported to TACO's
        // detection as a strike, so with λ = 1 it is expelled after
        // round 1 and the survivors finish the run.
        let hyper = HyperParams::new(4, 4, 0.05, 16);
        let taco = Taco::new(
            4,
            taco_core::taco::TacoConfig::paper_default(10, 4).with_detection(0.6, 1),
        );
        let plan = FaultPlan::new()
            .with_corruption(1.0, 1e12)
            .targeting(vec![0])
            .with_max_delta_norm(1e4);
        let config = SimConfig::new(hyper, 10, 17).with_fault_plan(plan);
        let history = Simulation::new(small_fed(4, 27), mlp(27), Box::new(taco), config).run();
        assert_eq!(history.rounds.len(), 10);
        assert_eq!(history.expelled_clients, vec![0]);
        // After expulsion the client stops participating, so rejections
        // stop accruing: exactly λ + 1 = 2 strikes were ever recorded.
        assert_eq!(history.total_updates_rejected(), 2);
        assert!(
            history.rounds.last().map_or(0, |r| r.updates_rejected) == 0,
            "expelled client still uploading"
        );
    }

    /// Acceptance check: the per-round trace events report exactly the
    /// fault and rejection counts that replaying the plan's pure
    /// `fault_for` predicts for the participating clients.
    #[test]
    fn round_events_match_a_plan_replay() {
        let _guard = trace::test_guard();
        let sink = Arc::new(trace::MemorySink::new());
        let prev = trace::set_sink(sink.clone());
        let n = 5;
        let seed = 41;
        let rounds = 5;
        let hyper = HyperParams::new(n, 4, 0.05, 16);
        let plan = FaultPlan::new()
            .with_dropouts(0.3)
            .with_corruption(0.3, 1e12)
            .with_max_delta_norm(1e4);
        let config = SimConfig::new(hyper, rounds, seed).with_fault_plan(plan.clone());
        let history = Simulation::new(
            small_fed(n, 28),
            mlp(28),
            Box::new(FedAvg::default()),
            config,
        )
        .run();
        trace::set_sink(prev);
        trace::clear_sink();
        let events = sink.events_of_kind("round");
        assert_eq!(events.len(), rounds);
        for (round, e) in events.iter().enumerate() {
            let faults: Vec<FaultKind> = (0..n)
                .filter_map(|c| plan.fault_for(seed, round, c))
                .collect();
            let rejected = faults
                .iter()
                .filter(|k| matches!(k, FaultKind::Corrupt(_)))
                .count();
            assert_eq!(
                e.field("faults_injected").and_then(trace::Value::as_f64),
                Some(faults.len() as f64),
                "round {round} fault count diverges from the plan"
            );
            // Every corruption is a norm explosion far past the cap,
            // so the quarantine count equals the corruption count.
            assert_eq!(
                e.field("updates_rejected").and_then(trace::Value::as_f64),
                Some(rejected as f64),
                "round {round} rejection count diverges from the plan"
            );
            assert_eq!(
                history.rounds[round].faults_injected,
                faults.len(),
                "history and trace disagree"
            );
        }
        assert!(
            history.total_faults_injected() > 0,
            "plan never fired; replay check is vacuous"
        );
        // Individual fault events arrive under the event kind "fault"
        // with the category in a "fault" field ("kind" is a reserved
        // Event key): one per injection plus one per quarantine.
        let fault_events = sink.events_of_kind("fault");
        assert_eq!(
            fault_events.len(),
            history.total_faults_injected() + history.total_updates_rejected()
        );
        for e in &fault_events {
            let label = e.field("fault").and_then(trace::Value::as_str);
            assert!(
                matches!(
                    label,
                    Some(
                        "dropout"
                            | "straggler"
                            | "corrupt_nan"
                            | "corrupt_inf"
                            | "corrupt_scale"
                            | "deadline_cut"
                            | "quarantine"
                    )
                ),
                "unexpected fault label {label:?}"
            );
        }
    }

    /// SCAFFOLD under system heterogeneity: the control-variate update
    /// now normalizes each client's Δ_i by its own `τ_i·η_l`, so wildly
    /// different local step counts no longer corrupt the variates.
    #[test]
    fn scaffold_learns_under_heterogeneous_local_steps() {
        let fed = small_fed(4, 29);
        let hyper = HyperParams::new(4, 8, 0.05, 16);
        let config = SimConfig::new(hyper, 10, 19).with_local_steps(vec![2, 4, 8, 16]);
        let history = Simulation::new(
            fed,
            mlp(29),
            Box::new(taco_core::Scaffold::new(4, 1.0)),
            config,
        )
        .run();
        assert_eq!(history.rounds.len(), 10);
        assert!(
            history.best_accuracy() > 0.6,
            "SCAFFOLD under heterogeneous τ stuck at {}",
            history.best_accuracy()
        );
        assert!(!history.diverged(0.5));
    }

    #[test]
    fn deadline_cuts_stragglers_deterministically() {
        let hyper = HyperParams::new(4, 4, 0.05, 16);
        // Every fault is a 10× straggler; the deadline allows 2× the
        // nominal 4-step round, so every straggler misses it.
        let plan = FaultPlan::new()
            .with_stragglers(1.0, 10.0)
            .targeting(vec![1, 3])
            .with_deadline(8.0, 1.0);
        let config = SimConfig::new(hyper, 5, 53).with_fault_plan(plan);
        let dim = mlp(30).params().len();
        let history = Simulation::new(
            small_fed(4, 30),
            mlp(30),
            Box::new(FedAvg::default()),
            config,
        )
        .run();
        assert_eq!(history.rounds.len(), 5);
        for r in &history.rounds {
            assert_eq!(r.faults_injected, 2, "round {}", r.round);
            assert_eq!(r.updates_rejected, 2, "round {}", r.round);
            // Cut uploads never arrive, so only the two survivors'
            // raw f32 payloads are counted.
            assert_eq!(r.upload_bytes, 2 * dim * 4, "round {}", r.round);
        }
        let h2 = {
            let plan = FaultPlan::new()
                .with_stragglers(1.0, 10.0)
                .targeting(vec![1, 3])
                .with_deadline(8.0, 1.0);
            let config = SimConfig::new(hyper, 5, 53)
                .with_fault_plan(plan)
                .sequential();
            Simulation::new(
                small_fed(4, 30),
                mlp(30),
                Box::new(FedAvg::default()),
                config,
            )
            .run()
        };
        assert_eq!(zero_timing(history), zero_timing(h2));
    }

    #[test]
    fn inert_adversary_churn_and_drift_match_a_plain_run() {
        let hyper = HyperParams::new(4, 5, 0.05, 16);
        let plain = SimConfig::new(hyper, 4, 13);
        let decorated = SimConfig::new(hyper, 4, 13)
            .with_adversary(AdversaryPlan::new())
            .with_churn(ChurnTrace::new(4))
            .with_drift(DriftSchedule::inert());
        let h_plain = zero_timing(
            Simulation::new(
                small_fed(4, 33),
                mlp(33),
                Box::new(FedAvg::default()),
                plain,
            )
            .run(),
        );
        let h_deco = zero_timing(
            Simulation::new(
                small_fed(4, 33),
                mlp(33),
                Box::new(FedAvg::default()),
                decorated,
            )
            .run(),
        );
        assert_eq!(h_plain, h_deco);
        assert_eq!(h_deco.total_attacks_applied(), 0);
    }

    #[test]
    fn attacked_histories_are_bit_identical_parallel_or_not() {
        let hyper = HyperParams::new(5, 4, 0.05, 16);
        let behaviors = vec![
            ClientBehavior::SignFlip,
            ClientBehavior::Colluder { coalition: 0 },
            ClientBehavior::Colluder { coalition: 0 },
            ClientBehavior::Honest,
            ClientBehavior::Honest,
        ];
        let run = |sequential: bool| {
            let config = SimConfig::new(hyper, 5, 61).with_behaviors(behaviors.clone());
            let config = if sequential {
                config.sequential()
            } else {
                config
            };
            Simulation::new(
                small_fed(5, 34),
                mlp(34),
                Box::new(FedAvg::default()),
                config,
            )
            .run()
        };
        let parallel_a = zero_timing(run(false));
        let parallel_b = zero_timing(run(false));
        let sequential = zero_timing(run(true));
        assert_eq!(
            parallel_a.total_attacks_applied(),
            3 * 5,
            "every attacker attacks every round"
        );
        assert_eq!(parallel_a, parallel_b);
        assert_eq!(parallel_a, sequential);
    }

    #[test]
    fn sleeper_attacks_start_on_schedule() {
        let hyper = HyperParams::new(3, 3, 0.05, 8);
        let config = SimConfig::new(hyper, 4, 15)
            .with_behaviors(vec![
                ClientBehavior::Boost,
                ClientBehavior::Honest,
                ClientBehavior::Honest,
            ])
            .with_adversary(AdversaryPlan::new().starting_at(2));
        let history = Simulation::new(
            small_fed(3, 35),
            mlp(35),
            Box::new(FedAvg::default()),
            config,
        )
        .run();
        assert_eq!(history.rounds[0].attacks_applied, 0);
        assert_eq!(history.rounds[1].attacks_applied, 0);
        assert_eq!(history.rounds[2].attacks_applied, 1);
        assert_eq!(history.rounds[3].attacks_applied, 1);
    }

    #[test]
    fn churn_drives_the_lifecycle_hooks_and_state_probe() {
        // SCAFFOLD materializes a client's variate on first
        // aggregation and drops it on departure, which the
        // tracked-states probe observes round by round.
        let hyper = HyperParams::new(3, 3, 0.05, 8);
        let trace = ChurnTrace::new(3).departs(2, 2).joins(2, 4);
        let config = SimConfig::new(hyper, 6, 23).with_churn(trace);
        let history = Simulation::new(
            small_fed(3, 36),
            mlp(36),
            Box::new(taco_core::Scaffold::new(3, 1.0)),
            config,
        )
        .run();
        assert_eq!(history.rounds.len(), 6);
        // Rounds 0-1: all three trained, three variates held.
        assert_eq!(history.rounds[1].tracked_states, 3);
        // Rounds 2-3: client 2 departed, its variate dropped.
        assert_eq!(history.rounds[2].tracked_states, 2);
        assert_eq!(history.rounds[3].tracked_states, 2);
        // Round 4: rejoined and re-materialized from scratch.
        assert_eq!(history.rounds[4].tracked_states, 3);
        assert_eq!(history.rounds[2].participants, vec![0, 1]);
        assert_eq!(history.rounds[4].participants, vec![0, 1, 2]);
    }

    #[test]
    fn all_absent_round_holds_the_model_and_training_continues() {
        let hyper = HyperParams::new(2, 3, 0.05, 8);
        let trace = ChurnTrace::new(2)
            .departs(0, 1)
            .departs(1, 1)
            .joins(0, 2)
            .joins(1, 2);
        let config = SimConfig::new(hyper, 4, 27).with_churn(trace);
        let history = Simulation::new(
            small_fed(2, 37),
            mlp(37),
            Box::new(FedAvg::default()),
            config,
        )
        .run();
        assert_eq!(history.rounds.len(), 4, "absent round ended the run");
        assert!(history.rounds[1].participants.is_empty());
        assert_eq!(
            history.rounds[1].test_accuracy,
            history.rounds[0].test_accuracy
        );
        assert!(history.rounds[1].train_loss_carried);
        assert_eq!(history.rounds[2].participants, vec![0, 1]);
    }

    #[test]
    fn drift_repartitions_on_cadence_and_stays_deterministic() {
        let _guard = trace::test_guard();
        let sink = Arc::new(trace::MemorySink::new());
        let prev = trace::set_sink(sink.clone());
        let hyper = HyperParams::new(4, 4, 0.05, 16);
        let schedule = DriftSchedule::new(0.5, 0.1, 2, 8);
        let run = || {
            Simulation::new(
                small_fed(4, 38),
                mlp(38),
                Box::new(FedAvg::default()),
                SimConfig::new(hyper, 8, 29).with_drift(schedule),
            )
            .run()
        };
        let h1 = zero_timing(run());
        let h2 = zero_timing(run());
        trace::set_sink(prev);
        trace::clear_sink();
        assert_eq!(h1, h2);
        assert_eq!(h1.rounds.len(), 8);
        // Rounds 2, 4, 6 re-partition (round 0 keeps the initial
        // partition); two identical runs double the event count.
        let drifts = sink.events_of_kind("drift");
        assert_eq!(drifts.len(), 2 * 3);
        for e in &drifts {
            let phi = e.field("phi").and_then(trace::Value::as_f64);
            assert!(phi.is_some_and(|p| p > 0.0 && p <= 0.5), "phi {phi:?}");
        }
    }

    #[test]
    #[should_panic(expected = "churn trace covers")]
    fn churn_client_count_mismatch_panics() {
        let hyper = HyperParams::new(3, 1, 0.1, 1);
        let _ = SimConfig::new(hyper, 1, 1).with_churn(ChurnTrace::new(2));
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn zero_participation_panics() {
        let hyper = HyperParams::new(2, 1, 0.1, 1);
        let _ = SimConfig::new(hyper, 1, 1).with_participation(0.0);
    }

    #[test]
    #[should_panic(expected = "federation has")]
    fn client_count_mismatch_panics() {
        let fed = small_fed(3, 6);
        let hyper = HyperParams::new(4, 3, 0.05, 8);
        let _ = Simulation::new(
            fed,
            mlp(6),
            Box::new(FedAvg::default()),
            SimConfig::new(hyper, 1, 1),
        );
    }
}
