//! Client behaviours: honest clients, the paper's lazy freeloaders,
//! and the adversarial behaviours of the scenario suite (sign-flip,
//! boost, colluding coalitions). The behaviour vector is the ground
//! truth the detection scoreboard ([`crate::detection`]) scores
//! against.

/// What a client actually does when asked to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientBehavior {
    /// Runs the algorithm's local-update rule honestly.
    #[default]
    Honest,
    /// A lazy freeloader (Section IV-A of the paper): uploads the
    /// previous round's global update as its own `Δ_i^t`, performing no
    /// local computation. Round 0, with no previous update, uploads
    /// zeros.
    Freeloader,
    /// A sign-flipping attacker: trains honestly, then uploads
    /// `−s·Δ_i` (the classic model-poisoning baseline). The norm is
    /// preserved at `s = 1`, so norm-based validation never fires —
    /// only directional statistics (Eq. 7 cosines, FoolsGold) see it.
    SignFlip,
    /// A scaling/boost attacker: uploads `b·Δ_i` with `b > 1`,
    /// amplifying its own influence on the aggregate (and tripping
    /// norm validation when a [`crate::fault::ValidationPolicy`] caps
    /// delta norms).
    Boost,
    /// A member of a colluding coalition (label-flip style): trains
    /// honestly, then blends its update toward a shared direction
    /// seeded per `(run seed, coalition)`, as if the whole coalition
    /// optimized one common wrong objective. The shared direction
    /// across rounds is exactly what FoolsGold's cosine history is
    /// built to catch.
    Colluder {
        /// Coalition identifier; members with equal ids share one
        /// seeded direction.
        coalition: u16,
    },
}

impl ClientBehavior {
    /// `true` for [`ClientBehavior::Freeloader`].
    pub fn is_freeloader(self) -> bool {
        matches!(self, ClientBehavior::Freeloader)
    }

    /// `true` for every non-honest behaviour (the detection
    /// scoreboard's ground-truth positive class).
    pub fn is_malicious(self) -> bool {
        !matches!(self, ClientBehavior::Honest)
    }

    /// Stable lower-case label for traces and manifests.
    pub fn label(self) -> &'static str {
        match self {
            ClientBehavior::Honest => "honest",
            ClientBehavior::Freeloader => "freeloader",
            ClientBehavior::SignFlip => "sign_flip",
            ClientBehavior::Boost => "boost",
            ClientBehavior::Colluder { .. } => "colluder",
        }
    }
}

/// Builds a behaviour vector with the first `n_bad` clients replaced
/// by `behavior` (generalizes the paper's "8 of 20 freeloaders"
/// layout to any adversarial behaviour).
///
/// # Panics
///
/// Panics if `n_bad > n_clients`.
pub fn with_behavior(
    n_clients: usize,
    n_bad: usize,
    behavior: ClientBehavior,
) -> Vec<ClientBehavior> {
    assert!(
        n_bad <= n_clients,
        "{n_bad} adversaries exceed {n_clients} clients"
    );
    (0..n_clients)
        .map(|i| {
            if i < n_bad {
                behavior
            } else {
                ClientBehavior::Honest
            }
        })
        .collect()
}

/// Builds a behaviour vector with the first `n_freeloaders` clients
/// replaced by freeloaders (the paper replaces 8 of 20).
///
/// # Panics
///
/// Panics if `n_freeloaders > n_clients`.
pub fn with_freeloaders(n_clients: usize, n_freeloaders: usize) -> Vec<ClientBehavior> {
    with_behavior(n_clients, n_freeloaders, ClientBehavior::Freeloader)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        assert_eq!(ClientBehavior::default(), ClientBehavior::Honest);
        assert!(!ClientBehavior::Honest.is_freeloader());
        assert!(ClientBehavior::Freeloader.is_freeloader());
    }

    #[test]
    fn with_freeloaders_places_them_first() {
        let b = with_freeloaders(5, 2);
        assert_eq!(b.iter().filter(|x| x.is_freeloader()).count(), 2);
        assert!(b[0].is_freeloader() && b[1].is_freeloader());
        assert!(!b[4].is_freeloader());
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_freeloaders_panics() {
        let _ = with_freeloaders(3, 4);
    }

    #[test]
    fn malicious_covers_every_attacker() {
        for b in [
            ClientBehavior::Freeloader,
            ClientBehavior::SignFlip,
            ClientBehavior::Boost,
            ClientBehavior::Colluder { coalition: 0 },
        ] {
            assert!(b.is_malicious(), "{} not malicious", b.label());
        }
        assert!(!ClientBehavior::Honest.is_malicious());
        // Attackers that train are not freeloaders.
        assert!(!ClientBehavior::SignFlip.is_freeloader());
    }

    #[test]
    fn with_behavior_generalizes() {
        let b = with_behavior(4, 2, ClientBehavior::SignFlip);
        assert_eq!(b[0], ClientBehavior::SignFlip);
        assert_eq!(b[1], ClientBehavior::SignFlip);
        assert_eq!(b[2], ClientBehavior::Honest);
        assert_eq!(b.iter().filter(|x| x.is_malicious()).count(), 2);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ClientBehavior::Honest.label(), "honest");
        assert_eq!(
            ClientBehavior::Colluder { coalition: 3 }.label(),
            "colluder"
        );
    }
}
