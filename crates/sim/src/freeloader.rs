//! Client behaviours.

/// What a client actually does when asked to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientBehavior {
    /// Runs the algorithm's local-update rule honestly.
    #[default]
    Honest,
    /// A lazy freeloader (Section IV-A of the paper): uploads the
    /// previous round's global update as its own `Δ_i^t`, performing no
    /// local computation. Round 0, with no previous update, uploads
    /// zeros.
    Freeloader,
}

impl ClientBehavior {
    /// `true` for [`ClientBehavior::Freeloader`].
    pub fn is_freeloader(self) -> bool {
        matches!(self, ClientBehavior::Freeloader)
    }
}

/// Builds a behaviour vector with the first `n_freeloaders` clients
/// replaced by freeloaders (the paper replaces 8 of 20).
///
/// # Panics
///
/// Panics if `n_freeloaders > n_clients`.
pub fn with_freeloaders(n_clients: usize, n_freeloaders: usize) -> Vec<ClientBehavior> {
    assert!(
        n_freeloaders <= n_clients,
        "{n_freeloaders} freeloaders exceed {n_clients} clients"
    );
    (0..n_clients)
        .map(|i| {
            if i < n_freeloaders {
                ClientBehavior::Freeloader
            } else {
                ClientBehavior::Honest
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        assert_eq!(ClientBehavior::default(), ClientBehavior::Honest);
        assert!(!ClientBehavior::Honest.is_freeloader());
        assert!(ClientBehavior::Freeloader.is_freeloader());
    }

    #[test]
    fn with_freeloaders_places_them_first() {
        let b = with_freeloaders(5, 2);
        assert_eq!(b.iter().filter(|x| x.is_freeloader()).count(), 2);
        assert!(b[0].is_freeloader() && b[1].is_freeloader());
        assert!(!b[4].is_freeloader());
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_freeloaders_panics() {
        let _ = with_freeloaders(3, 4);
    }
}
