//! Pluggable aggregation backends for the parameter server.
//!
//! The round loop in [`crate::Simulation::run`] hands every validated
//! upload to an [`AggregationBackend`] and asks it for the next global
//! model once the round's uploads are in. Two implementations ship:
//!
//! - [`SequentialBackend`] — buffers the uploads and calls the
//!   algorithm's [`FederatedAlgorithm::aggregate`] exactly as the
//!   monolithic runner used to. It is the deterministic reference.
//! - [`ShardedBackend`] — a parameter-server-style aggregator that
//!   accumulates deltas into lock-striped gradient shards
//!   ([`taco_tensor::shard`]) as uploads arrive, with the active/frozen
//!   double-buffer idiom, and executes the algorithm's
//!   [`FederatedAlgorithm::plan_aggregation`] plan shard-wise on the
//!   shared worker pool.
//!
//! # Determinism contract
//!
//! Both backends must produce **bit-identical** trajectories at any
//! shard count and any `TACO_THREADS`. The sharded backend achieves
//! this by parallelizing only along axes where f32/f64 reduction order
//! is preserved:
//!
//! - *Per-dimension* sums (the weighted mean) are dimension-sharded:
//!   each shard task folds the round's uploads **in client order**, so
//!   every dimension sees the exact `acc += w·x` sequence of
//!   [`taco_tensor::ops::weighted_mean`]. Shards touch disjoint
//!   dimensions, so their schedule is irrelevant.
//! - *Per-upload scalars* (norms, cosines) are client-parallel: each
//!   task computes a whole-vector reduction for one upload and writes
//!   its own slot. No cross-client float fold happens in parallel.
//! - *Cross-client scalar folds* (the weight total, `Σ α`) stay
//!   sequential in client order via the order-fixed helpers in
//!   [`taco_tensor::ops`].
//!
//! `tests/backend_diff.rs` enforces the contract differentially against
//! the committed golden trajectories.

use crate::phase;
use taco_core::{ClientUpdate, FederatedAlgorithm, HyperParams, UploadStats};
use taco_tensor::shard::{DoubleBuffered, ShardSpec, StripedTable};
use taco_tensor::{ops, pool};
use taco_trace as trace;

/// What a backend returns at the end of a round: the next global model
/// (or `None` when no update survived and the round holds the current
/// model) plus the accepted uploads, handed back for metrics.
#[derive(Debug)]
pub struct RoundAggregate {
    /// The aggregated next global parameter vector; `None` for an
    /// empty round.
    pub next_global: Option<Vec<f32>>,
    /// The uploads that reached aggregation, in client order.
    pub updates: Vec<ClientUpdate>,
}

/// Server-side aggregation strategy for one simulation run.
///
/// The runner drives one round as `begin_round` → any number of
/// `accept_update` / `report_invalid_update` calls (in client order,
/// after server-side validation) → `finish_round`. Implementations may
/// start aggregating eagerly in `accept_update`; everything an
/// algorithm observes must be bit-identical to the sequential
/// reference (see the module docs).
pub trait AggregationBackend: Send {
    /// The backend's stable display name (`sequential`, `sharded`).
    fn name(&self) -> &'static str;

    /// Starts a round. Called after the algorithm's own
    /// [`FederatedAlgorithm::begin_round`], with the same global
    /// parameters.
    fn begin_round(&mut self, round: usize, global: &[f32], algorithm: &dyn FederatedAlgorithm);

    /// Accepts one validated upload. Uploads arrive in client order.
    fn accept_update(&mut self, update: ClientUpdate);

    /// Reports a quarantined upload so detection-capable algorithms
    /// can strike the offender. The default forwards to
    /// [`FederatedAlgorithm::report_invalid_update`].
    fn report_invalid_update(&mut self, client: usize, algorithm: &mut dyn FederatedAlgorithm) {
        algorithm.report_invalid_update(client);
    }

    /// Finishes the round: aggregates the accepted uploads into the
    /// next global model and returns them for metrics.
    fn finish_round(
        &mut self,
        global: &[f32],
        hyper: &HyperParams,
        algorithm: &mut dyn FederatedAlgorithm,
    ) -> RoundAggregate;
}

/// The reference backend: buffer everything, aggregate at the end of
/// the round with the algorithm's own sequential
/// [`FederatedAlgorithm::aggregate`].
#[derive(Debug, Default)]
pub struct SequentialBackend {
    updates: Vec<ClientUpdate>,
}

impl SequentialBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        SequentialBackend::default()
    }
}

impl AggregationBackend for SequentialBackend {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn begin_round(&mut self, _round: usize, _global: &[f32], _algorithm: &dyn FederatedAlgorithm) {
        self.updates.clear();
    }

    fn accept_update(&mut self, update: ClientUpdate) {
        self.updates.push(update);
    }

    fn finish_round(
        &mut self,
        global: &[f32],
        hyper: &HyperParams,
        algorithm: &mut dyn FederatedAlgorithm,
    ) -> RoundAggregate {
        let updates = std::mem::take(&mut self.updates);
        let next_global = if updates.is_empty() {
            None
        } else {
            Some(algorithm.aggregate(global, &updates, hyper))
        };
        RoundAggregate {
            next_global,
            updates,
        }
    }
}

/// Deltas shorter than this run the shard accumulation inline — the
/// pool dispatch overhead outweighs striped writes on tiny models.
const PARALLEL_DIM_FLOOR: usize = 16_384;

/// Per-model sharded state, sized lazily from the first round's global
/// parameter length.
struct ShardState {
    spec: ShardSpec,
    /// Active/frozen unweighted delta sums, fed eagerly by
    /// [`ShardedBackend::accept_update`] when the algorithm wants
    /// [`UploadStats`]; frozen at `finish_round` for the mean read-out.
    stats_sums: DoubleBuffered,
    /// Scratch accumulator for the weighted combine (weights are only
    /// known after the algorithm plans the round).
    scratch: StripedTable,
}

/// The sharded parameter-server backend (see the module docs for the
/// determinism contract).
pub struct ShardedBackend {
    shards: usize,
    state: Option<ShardState>,
    wants_stats: bool,
    /// Whether the active stats table holds accumulations that were
    /// never flipped out (an aborted round); cleared defensively at
    /// `begin_round`.
    active_dirty: bool,
    updates: Vec<ClientUpdate>,
}

impl std::fmt::Debug for ShardedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBackend")
            .field("shards", &self.shards)
            .field("spec", &self.state.as_ref().map(|s| s.spec))
            .finish()
    }
}

impl ShardedBackend {
    /// Creates a backend that partitions the model into (at most)
    /// `shards` contiguous shards.
    pub fn new(shards: usize) -> Self {
        ShardedBackend {
            shards: shards.max(1),
            state: None,
            wants_stats: false,
            active_dirty: false,
            updates: Vec::new(),
        }
    }

    /// Folds one upload's payload into shard `s` of `table` —
    /// **decode-free** when the update carries its wire encoding:
    /// quantized/sparse payloads accumulate straight into the shard's
    /// `f64` sums via `EncodedDelta::accumulate_range_into`, which is
    /// bit-identical to decoding first and running the dense
    /// `accumulate_shard` fold (each dimension performs the exact same
    /// widening multiply-add, in the same ascending order).
    fn fold_shard(table: &StripedTable, s: usize, weight: f32, update: &ClientUpdate) {
        match &update.encoded {
            Some(enc) => table.accumulate_shard_with(s, |range, acc| {
                enc.accumulate_range_into(range, acc, weight);
            }),
            None => table.accumulate_shard(s, weight, &update.delta),
        }
    }

    /// Accumulates one upload into `table` with the given weight,
    /// shard-parallel on the worker pool when the model is big enough
    /// for the dispatch to pay off. Each shard touches disjoint
    /// dimensions, so the schedule cannot reorder any per-dimension
    /// fold.
    fn accumulate(table: &StripedTable, weight: f32, update: &ClientUpdate) {
        let shards = table.spec().num_shards();
        let dim = table.spec().dim();
        if shards > 1 && dim >= PARALLEL_DIM_FLOOR && pool::effective_parallelism() > 1 {
            pool::for_each_index(shards, |s| Self::fold_shard(table, s, weight, update));
        } else {
            for s in 0..shards {
                Self::fold_shard(table, s, weight, update);
            }
        }
    }

    /// Merges a table into `(acc / total) as f32` per dimension,
    /// shard-parallel. Bit-identical to [`StripedTable::merged`]: each
    /// dimension's read-out is independent.
    fn merge(table: &StripedTable, total: f64) -> Vec<f32> {
        let spec = table.spec();
        let mut out = vec![0.0f32; spec.dim()];
        let shards = spec.num_shards();
        if shards > 1 && spec.dim() >= PARALLEL_DIM_FLOOR && pool::effective_parallelism() > 1 {
            // `for_each_chunk` with the spec's chunk length visits
            // exactly the shard ranges; the read-out arithmetic is
            // `merge_shard_into`'s `(acc / total) as f32`.
            pool::for_each_chunk(&mut out, spec.chunk_len(), |s, slot| {
                let sums = table.shard_sums(s);
                for (o, &a) in slot.iter_mut().zip(sums.iter()) {
                    *o = (a / total) as f32;
                }
            });
        } else {
            for s in 0..shards {
                table.merge_shard_into(s, total, &mut out);
            }
        }
        out
    }

    /// The round's [`UploadStats`], computed with the sharded/parallel
    /// decomposition: mean from the frozen shard sums, norms and
    /// cosines as whole-vector reductions parallelized over clients.
    fn compute_stats(state: &mut ShardState, updates: &[ClientUpdate]) -> UploadStats {
        let _span = trace::Span::quiet(phase::SHARD_MERGE);
        state.stats_sums.flip();
        // `ops::mean_of` is `weighted_mean` with unit weights, whose
        // total is the left-to-right fold of `1.0_f64`s — replicated
        // here by the order-fixed `sum_f64`.
        let ones = vec![1.0f64; updates.len()];
        let total = ops::sum_f64(&ones);
        let mean_delta = Self::merge(state.stats_sums.frozen(), total);
        let mean_norm = ops::norm(&mean_delta);
        let n = updates.len();
        let mut scalars = vec![(0.0f32, 0.0f32); n];
        let per_client = |i: usize, slot: &mut [(f32, f32)]| {
            let d = &updates[i].delta;
            let norm = ops::norm(d);
            slot[0] = (
                norm,
                ops::cosine_with_norms(d, &mean_delta, norm, mean_norm),
            );
        };
        if n > 1 && pool::effective_parallelism() > 1 {
            pool::for_each_chunk(&mut scalars, 1, per_client);
        } else {
            for (i, slot) in scalars.chunks_mut(1).enumerate() {
                per_client(i, slot);
            }
        }
        let (norms, cosines) = scalars.into_iter().unzip();
        UploadStats {
            mean_delta,
            norms,
            cosines,
        }
    }
}

impl AggregationBackend for ShardedBackend {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn begin_round(&mut self, _round: usize, global: &[f32], algorithm: &dyn FederatedAlgorithm) {
        self.wants_stats = algorithm.wants_upload_stats();
        let stale = self
            .state
            .as_ref()
            .is_some_and(|s| s.spec.dim() != global.len());
        if (self.state.is_none() || stale) && !global.is_empty() {
            let spec = ShardSpec::new(global.len(), self.shards);
            self.state = Some(ShardState {
                spec,
                stats_sums: DoubleBuffered::new(spec),
                scratch: StripedTable::new(spec),
            });
            self.active_dirty = false;
        }
        if self.active_dirty {
            if let Some(state) = &mut self.state {
                state.stats_sums.flip();
            }
            self.active_dirty = false;
        }
        self.updates.clear();
    }

    fn accept_update(&mut self, update: ClientUpdate) {
        if self.wants_stats {
            if let Some(state) = &self.state {
                let _span = trace::Span::quiet(phase::SHARD_MERGE);
                Self::accumulate(state.stats_sums.active(), 1.0, &update);
                self.active_dirty = true;
            }
        }
        self.updates.push(update);
    }

    fn finish_round(
        &mut self,
        global: &[f32],
        hyper: &HyperParams,
        algorithm: &mut dyn FederatedAlgorithm,
    ) -> RoundAggregate {
        let updates = std::mem::take(&mut self.updates);
        if updates.is_empty() {
            return RoundAggregate {
                next_global: None,
                updates,
            };
        }
        let Some(state) = &mut self.state else {
            // `begin_round` never saw a non-empty model; use the
            // algorithm's sequential path.
            let next = algorithm.aggregate(global, &updates, hyper);
            return RoundAggregate {
                next_global: Some(next),
                updates,
            };
        };
        let stats = if self.wants_stats {
            let stats = Self::compute_stats(state, &updates);
            self.active_dirty = false;
            Some(stats)
        } else {
            None
        };
        let plan = algorithm.plan_aggregation(global, &updates, stats.as_ref(), hyper);
        let next = match plan {
            Some(plan) => {
                let _span = trace::Span::quiet(phase::SHARD_MERGE);
                // The weighted combine, shard-wise: every shard folds
                // the uploads in client order, reproducing
                // `ops::weighted_mean` per dimension; the weight total
                // is the same left-to-right widening fold.
                state.scratch.clear();
                let scratch = &state.scratch;
                let accumulate_shard = |s: usize| {
                    for (u, &w) in updates.iter().zip(&plan.weights) {
                        Self::fold_shard(scratch, s, w, u);
                    }
                };
                let shards = state.spec.num_shards();
                if shards > 1
                    && state.spec.dim() >= PARALLEL_DIM_FLOOR
                    && pool::effective_parallelism() > 1
                {
                    pool::for_each_index(shards, accumulate_shard);
                } else {
                    for s in 0..shards {
                        accumulate_shard(s);
                    }
                }
                let wf: Vec<f64> = plan.weights.iter().map(|&w| w as f64).collect();
                let total = ops::sum_f64(&wf);
                assert!(
                    total.is_finite() && total > 0.0,
                    "weights must sum to a positive finite value, got {total}"
                );
                let mut combined = Self::merge(&state.scratch, total);
                if let Some(s) = plan.pre_scale {
                    ops::scale(&mut combined, s);
                }
                let mut next = global.to_vec();
                ops::axpy(&mut next, plan.step_scale, &combined);
                algorithm.commit_aggregation(global, &combined);
                next
            }
            // Algorithms without a plan decomposition (control-variate
            // uploads, momentum servers) fall back to their sequential
            // aggregate — correctness first, sharding where supported.
            None => algorithm.aggregate(global, &updates, hyper),
        };
        RoundAggregate {
            next_global: Some(next),
            updates,
        }
    }
}

/// Which [`AggregationBackend`] a [`crate::SimConfig`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// [`SequentialBackend`] — the deterministic reference.
    Sequential,
    /// [`ShardedBackend`] with the given shard count.
    Sharded {
        /// Number of contiguous model shards (clamped to at least 1).
        shards: usize,
    },
}

impl Default for BackendChoice {
    fn default() -> Self {
        BackendChoice::from_env()
    }
}

/// Default shard count when `TACO_SHARDS` is unset.
pub const DEFAULT_SHARDS: usize = 8;

impl BackendChoice {
    /// Reads `TACO_BACKEND` (`sequential` — the default — or
    /// `sharded`) and `TACO_SHARDS` (shard count for the sharded
    /// backend, default [`DEFAULT_SHARDS`]). An unrecognized backend
    /// name warns once on stderr and falls back to sequential.
    pub fn from_env() -> Self {
        let Some(name) = trace::env::backend_name() else {
            return BackendChoice::Sequential;
        };
        match name.trim().to_ascii_lowercase().as_str() {
            "" | "sequential" => BackendChoice::Sequential,
            "sharded" => BackendChoice::Sharded {
                shards: shards_from_env(),
            },
            other => {
                static WARN: std::sync::Once = std::sync::Once::new();
                WARN.call_once(|| {
                    eprintln!(
                        "warning: unknown TACO_BACKEND '{other}', using sequential \
                         (expected 'sequential' or 'sharded')"
                    );
                });
                BackendChoice::Sequential
            }
        }
    }

    /// The built backend's stable name.
    pub fn label(&self) -> &'static str {
        match self {
            BackendChoice::Sequential => "sequential",
            BackendChoice::Sharded { .. } => "sharded",
        }
    }

    /// Builds the backend.
    pub fn build(&self) -> Box<dyn AggregationBackend> {
        match self {
            BackendChoice::Sequential => Box::new(SequentialBackend::new()),
            BackendChoice::Sharded { shards } => Box::new(ShardedBackend::new(*shards)),
        }
    }
}

fn shards_from_env() -> usize {
    trace::env::shards().unwrap_or(DEFAULT_SHARDS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_core::{FedAvg, Scaffold, Taco};
    use taco_tensor::Prng;

    fn upd(client: usize, delta: Vec<f32>) -> ClientUpdate {
        ClientUpdate {
            client,
            delta,
            num_samples: 1,
            final_v: None,
            mean_loss: 0.0,
            grad_evals: 0,
            steps: 1,
            compute_seconds: 0.0,
            encoded: None,
        }
    }

    fn random_updates(n: usize, dim: usize, seed: u64) -> Vec<ClientUpdate> {
        let mut rng = Prng::seed_from_u64(seed);
        (0..n)
            .map(|c| upd(c, (0..dim).map(|_| rng.normal_f32()).collect()))
            .collect()
    }

    /// Runs `rounds` aggregation-only rounds of `make()`'s algorithm
    /// through the given backend and returns every next-global.
    fn drive(
        backend: &mut dyn AggregationBackend,
        algorithm: &mut dyn FederatedAlgorithm,
        rounds: usize,
        n: usize,
        dim: usize,
    ) -> Vec<Vec<f32>> {
        let hyper = HyperParams::new(n, 4, 0.05, 8);
        let mut global = vec![0.25f32; dim];
        let mut outs = Vec::new();
        for round in 0..rounds {
            algorithm.begin_round(round, &global);
            backend.begin_round(round, &global, algorithm);
            for u in random_updates(n, dim, round as u64 ^ 0xBEEF) {
                backend.accept_update(u);
            }
            let agg = backend.finish_round(&global, &hyper, algorithm);
            let next = agg.next_global.clone().unwrap_or_else(|| global.clone());
            assert_eq!(agg.updates.len(), n);
            global = next.clone();
            outs.push(next);
        }
        outs
    }

    fn assert_bits_eq(a: &[Vec<f32>], b: &[Vec<f32>], what: &str) {
        assert_eq!(a.len(), b.len());
        for (r, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.len(), y.len());
            for (i, (p, q)) in x.iter().zip(y).enumerate() {
                assert_eq!(
                    p.to_bits(),
                    q.to_bits(),
                    "{what}: round {r} dim {i}: {p} vs {q}"
                );
            }
        }
    }

    #[test]
    fn sharded_taco_matches_sequential_bitwise_at_every_shard_count() {
        let dim = 101;
        let n = 5;
        let mut seq_alg = Taco::new(n, taco_core::taco::TacoConfig::paper_default(6, 4));
        let mut seq = SequentialBackend::new();
        let reference = drive(&mut seq, &mut seq_alg, 6, n, dim);
        for shards in [1usize, 3, 8, 64] {
            let mut alg = Taco::new(n, taco_core::taco::TacoConfig::paper_default(6, 4));
            let mut sharded = ShardedBackend::new(shards);
            let got = drive(&mut sharded, &mut alg, 6, n, dim);
            assert_bits_eq(&reference, &got, &format!("shards={shards}"));
            assert_eq!(alg.alphas(), seq_alg.alphas(), "shards={shards}");
        }
    }

    #[test]
    fn sharded_fedavg_matches_sequential_bitwise() {
        let mut seq_alg = FedAvg::default();
        let mut seq = SequentialBackend::new();
        let reference = drive(&mut seq, &mut seq_alg, 4, 3, 37);
        let mut alg = FedAvg::default();
        let mut sharded = ShardedBackend::new(5);
        let got = drive(&mut sharded, &mut alg, 4, 3, 37);
        assert_bits_eq(&reference, &got, "fedavg");
    }

    #[test]
    fn plan_less_algorithm_falls_back_to_sequential_aggregate() {
        let n = 4;
        let mut seq_alg = Scaffold::new(n, 1.0);
        let mut seq = SequentialBackend::new();
        let reference = drive(&mut seq, &mut seq_alg, 3, n, 23);
        let mut alg = Scaffold::new(n, 1.0);
        let mut sharded = ShardedBackend::new(4);
        let got = drive(&mut sharded, &mut alg, 3, n, 23);
        assert_bits_eq(&reference, &got, "scaffold-fallback");
    }

    #[test]
    fn empty_round_returns_no_next_global() {
        for backend in [
            &mut SequentialBackend::new() as &mut dyn AggregationBackend,
            &mut ShardedBackend::new(4),
        ] {
            let mut alg = FedAvg::default();
            let hyper = HyperParams::new(2, 1, 0.1, 4);
            backend.begin_round(0, &[1.0, 2.0], &alg);
            let agg = backend.finish_round(&[1.0, 2.0], &hyper, &mut alg);
            assert!(agg.next_global.is_none(), "{}", backend.name());
            assert!(agg.updates.is_empty());
        }
    }

    #[test]
    fn backend_choice_env_parsing_and_labels() {
        assert_eq!(BackendChoice::Sequential.label(), "sequential");
        assert_eq!(BackendChoice::Sharded { shards: 3 }.label(), "sharded");
        assert_eq!(
            BackendChoice::Sequential.build().name(),
            "sequential",
            "build() must honor the choice"
        );
        assert_eq!(
            BackendChoice::Sharded { shards: 3 }.build().name(),
            "sharded"
        );
    }

    #[test]
    fn invalid_update_report_strikes_through_the_backend() {
        let mut alg = Taco::new(
            2,
            taco_core::taco::TacoConfig::paper_default(4, 2).with_detection(0.6, 0),
        );
        let mut backend = SequentialBackend::new();
        backend.report_invalid_update(1, &mut alg);
        assert_eq!(alg.expelled(), vec![1]);
    }
}
