//! Freeloader-detection scoring (Table VIII's TPR/FPR).

use crate::freeloader::ClientBehavior;

/// True-positive and false-positive rates of a detection run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionScore {
    /// `identified freeloaders / total freeloaders`; `1.0` when there
    /// are no freeloaders (nothing to miss).
    pub tpr: f64,
    /// `misjudged benign clients / total benign clients`; `0.0` when
    /// every client is a freeloader.
    pub fpr: f64,
}

/// Scores expelled clients against ground-truth behaviours.
///
/// # Panics
///
/// Panics if any expelled index is out of range.
pub fn score(expelled: &[usize], behaviors: &[ClientBehavior]) -> DetectionScore {
    for &e in expelled {
        assert!(e < behaviors.len(), "expelled client {e} out of range");
    }
    let total_free = behaviors.iter().filter(|b| b.is_freeloader()).count();
    let total_benign = behaviors.len() - total_free;
    let caught = expelled
        .iter()
        .filter(|&&e| behaviors[e].is_freeloader())
        .count();
    let misjudged = expelled.len() - caught;
    DetectionScore {
        tpr: if total_free == 0 {
            1.0
        } else {
            caught as f64 / total_free as f64
        },
        fpr: if total_benign == 0 {
            0.0
        } else {
            misjudged as f64 / total_benign as f64
        },
    }
}

impl std::fmt::Display for DetectionScore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TPR {:.1}% / FPR {:.2}%",
            self.tpr * 100.0,
            self.fpr * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freeloader::with_freeloaders;

    #[test]
    fn perfect_detection() {
        let b = with_freeloaders(20, 8);
        let expelled: Vec<usize> = (0..8).collect();
        let s = score(&expelled, &b);
        assert_eq!(s.tpr, 1.0);
        assert_eq!(s.fpr, 0.0);
    }

    #[test]
    fn missed_and_misjudged() {
        let b = with_freeloaders(10, 4);
        // Caught 2 of 4 freeloaders, misjudged 3 of 6 benign.
        let expelled = vec![0, 1, 5, 6, 7];
        let s = score(&expelled, &b);
        assert!((s.tpr - 0.5).abs() < 1e-12);
        assert!((s.fpr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_freeloaders_edge_case() {
        let b = with_freeloaders(5, 0);
        let s = score(&[], &b);
        assert_eq!(s.tpr, 1.0);
        assert_eq!(s.fpr, 0.0);
    }

    #[test]
    fn display_is_readable() {
        let b = with_freeloaders(4, 2);
        let s = score(&[0, 1], &b);
        assert_eq!(format!("{s}"), "TPR 100.0% / FPR 0.00%");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = with_freeloaders(2, 1);
        let _ = score(&[5], &b);
    }
}
