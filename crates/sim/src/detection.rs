//! The detection scoreboard: participation-aware TPR/FPR scoring
//! (Table VIII) and per-round detection curves.
//!
//! Scores are computed against the ground-truth behaviour vector the
//! run was configured with ([`crate::runner::SimConfig::with_behaviors`]).
//! Scoring is **participation-aware**: a labelled attacker the server
//! never sampled was never observable, so it belongs in neither the
//! TPR denominator (not a missed detection) nor the FPR denominator.
//! [`score`] takes the ever-participated mask for exactly this reason;
//! pass `None` only when every client is known to have participated.

use crate::freeloader::ClientBehavior;
use crate::metrics::History;

/// True-positive and false-positive rates of a detection run, with
/// the raw counts they were computed from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionScore {
    /// `true_positives / malicious_total`; `1.0` when no malicious
    /// client was observable (nothing to miss).
    pub tpr: f64,
    /// `false_positives / benign_total`; `0.0` when no benign client
    /// was observable.
    pub fpr: f64,
    /// Flagged clients that really are malicious (and participated).
    pub true_positives: usize,
    /// Flagged clients that are benign (and participated).
    pub false_positives: usize,
    /// Ground-truth malicious clients that ever participated — the
    /// TPR denominator.
    pub malicious_total: usize,
    /// Ground-truth benign clients that ever participated — the FPR
    /// denominator.
    pub benign_total: usize,
}

/// One round's entry in a detection curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundDetection {
    /// Round index `t` (0-based), matching the history's records.
    pub round: usize,
    /// The scoreboard after this round, gated on participation so far.
    pub score: DetectionScore,
}

/// Per-round detection curves over a full run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DetectionCurves {
    /// One entry per recorded round, in order.
    pub per_round: Vec<RoundDetection>,
    /// The paper-style **time-to-detection**: the first 1-based round
    /// after which *every* malicious client that had participated so
    /// far is flagged (and at least one had participated). `None` if
    /// detection never completes.
    pub time_to_detection: Option<usize>,
    /// Per client: the first 1-based round it was flagged, `None` if
    /// never.
    pub first_flagged: Vec<Option<usize>>,
}

/// Scores flagged clients against ground-truth behaviours.
///
/// `flagged` is whatever the algorithm reports — expelled clients for
/// the expulsion scoreboard, [`taco_core::FederatedAlgorithm::suspected`]
/// for soft suspicion. `participated` gates both denominators and the
/// flag counts: clients the server never drew are invisible to any
/// detector and are excluded entirely. `None` treats every client as
/// having participated (the historical behaviour).
///
/// # Panics
///
/// Panics if any flagged index is out of range, or if `participated`
/// is provided with a length different from `behaviors`.
pub fn score(
    flagged: &[usize],
    behaviors: &[ClientBehavior],
    participated: Option<&[bool]>,
) -> DetectionScore {
    for &e in flagged {
        assert!(e < behaviors.len(), "flagged client {e} out of range");
    }
    if let Some(p) = participated {
        assert_eq!(
            p.len(),
            behaviors.len(),
            "participation mask covers {} clients but behaviours cover {}",
            p.len(),
            behaviors.len()
        );
    }
    let observed = |c: usize| participated.is_none_or(|p| p[c]);
    let malicious_total = behaviors
        .iter()
        .enumerate()
        .filter(|&(c, b)| b.is_malicious() && observed(c))
        .count();
    let benign_total = behaviors
        .iter()
        .enumerate()
        .filter(|&(c, b)| !b.is_malicious() && observed(c))
        .count();
    let true_positives = flagged
        .iter()
        .filter(|&&c| behaviors[c].is_malicious() && observed(c))
        .count();
    let false_positives = flagged
        .iter()
        .filter(|&&c| !behaviors[c].is_malicious() && observed(c))
        .count();
    DetectionScore {
        tpr: if malicious_total == 0 {
            1.0
        } else {
            true_positives as f64 / malicious_total as f64
        },
        fpr: if benign_total == 0 {
            0.0
        } else {
            false_positives as f64 / benign_total as f64
        },
        true_positives,
        false_positives,
        malicious_total,
        benign_total,
    }
}

/// Builds the per-round detection curves for a run: each round is
/// scored on the algorithm's recorded suspicion set
/// ([`crate::metrics::RoundRecord::suspected`]), gated on the clients
/// that have participated up to and including that round.
///
/// # Panics
///
/// Panics if any recorded suspect is out of range for `behaviors`.
pub fn curves(history: &History, behaviors: &[ClientBehavior]) -> DetectionCurves {
    let n = behaviors.len();
    let mut participated = vec![false; n];
    let mut first_flagged = vec![None; n];
    let mut per_round = Vec::with_capacity(history.rounds.len());
    let mut time_to_detection = None;
    for rec in &history.rounds {
        for &c in &rec.participants {
            if c < n {
                participated[c] = true;
            }
        }
        for &c in &rec.suspected {
            assert!(c < n, "suspected client {c} out of range");
            if first_flagged[c].is_none() {
                first_flagged[c] = Some(rec.round + 1);
            }
        }
        let s = score(&rec.suspected, behaviors, Some(&participated));
        if time_to_detection.is_none()
            && s.malicious_total > 0
            && s.true_positives == s.malicious_total
        {
            time_to_detection = Some(rec.round + 1);
        }
        per_round.push(RoundDetection {
            round: rec.round,
            score: s,
        });
    }
    DetectionCurves {
        per_round,
        time_to_detection,
        first_flagged,
    }
}

impl DetectionCurves {
    /// The scoreboard after the final recorded round.
    pub fn final_score(&self) -> Option<DetectionScore> {
        self.per_round.last().map(|r| r.score)
    }
}

impl std::fmt::Display for DetectionScore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TPR {:.1}% / FPR {:.2}%",
            self.tpr * 100.0,
            self.fpr * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freeloader::with_freeloaders;
    use crate::metrics::RoundRecord;

    #[test]
    fn perfect_detection() {
        let b = with_freeloaders(20, 8);
        let flagged: Vec<usize> = (0..8).collect();
        let s = score(&flagged, &b, None);
        assert_eq!(s.tpr, 1.0);
        assert_eq!(s.fpr, 0.0);
        assert_eq!(s.true_positives, 8);
        assert_eq!(s.malicious_total, 8);
        assert_eq!(s.benign_total, 12);
    }

    #[test]
    fn missed_and_misjudged() {
        let b = with_freeloaders(10, 4);
        // Caught 2 of 4 freeloaders, misjudged 3 of 6 benign.
        let flagged = vec![0, 1, 5, 6, 7];
        let s = score(&flagged, &b, None);
        assert!((s.tpr - 0.5).abs() < 1e-12);
        assert!((s.fpr - 0.5).abs() < 1e-12);
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_positives, 3);
    }

    #[test]
    fn never_sampled_attacker_is_not_a_false_negative() {
        // 4 clients, clients 0-1 malicious; client 1 never participated.
        let b = with_freeloaders(4, 2);
        let participated = vec![true, false, true, true];
        let s = score(&[0], &b, Some(&participated));
        assert_eq!(s.malicious_total, 1, "unsampled attacker in denominator");
        assert_eq!(s.tpr, 1.0);
        assert_eq!(s.fpr, 0.0);
        // Without the gate the same run reads as a 50% miss.
        assert_eq!(score(&[0], &b, None).tpr, 0.5);
    }

    #[test]
    fn never_sampled_benign_is_excluded_from_fpr() {
        let b = with_freeloaders(4, 1);
        // Benign client 3 never participated; flagging benign client 1
        // is 1 false positive out of 2 observable benign clients.
        let participated = vec![true, true, true, false];
        let s = score(&[0, 1], &b, Some(&participated));
        assert_eq!(s.benign_total, 2);
        assert!((s.fpr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_freeloaders_edge_case() {
        let b = with_freeloaders(5, 0);
        let s = score(&[], &b, None);
        assert_eq!(s.tpr, 1.0);
        assert_eq!(s.fpr, 0.0);
        assert_eq!(s.malicious_total, 0);
    }

    #[test]
    fn display_is_readable() {
        let b = with_freeloaders(4, 2);
        let s = score(&[0, 1], &b, None);
        assert_eq!(format!("{s}"), "TPR 100.0% / FPR 0.00%");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = with_freeloaders(2, 1);
        let _ = score(&[5], &b, None);
    }

    #[test]
    #[should_panic(expected = "participation mask covers")]
    fn mask_length_mismatch_panics() {
        let b = with_freeloaders(3, 1);
        let _ = score(&[], &b, Some(&[true, true]));
    }

    fn round(round: usize, participants: Vec<usize>, suspected: Vec<usize>) -> RoundRecord {
        RoundRecord {
            round,
            participants,
            suspected,
            ..RoundRecord::default()
        }
    }

    #[test]
    fn curves_track_time_to_detection() {
        let b = with_freeloaders(4, 2);
        let h = History {
            algorithm: "test".into(),
            rounds: vec![
                // Round 0: only attacker 0 seen, nothing flagged yet.
                round(0, vec![0, 2], vec![]),
                // Round 1: attacker 0 flagged — all *observed*
                // attackers caught, so detection completes here.
                round(1, vec![0, 3], vec![0]),
                // Round 2: attacker 1 appears, briefly unflagged.
                round(2, vec![1, 2], vec![0]),
                // Round 3: both flagged again.
                round(3, vec![0, 1], vec![0, 1]),
            ],
            expelled_clients: vec![],
        };
        let c = curves(&h, &b);
        assert_eq!(c.per_round.len(), 4);
        assert_eq!(c.per_round[0].score.malicious_total, 1);
        assert_eq!(c.per_round[0].score.true_positives, 0);
        assert_eq!(c.time_to_detection, Some(2));
        assert_eq!(c.first_flagged, vec![Some(2), Some(4), None, None]);
        let last = c.final_score().expect("non-empty curves");
        assert_eq!(last.tpr, 1.0);
        assert_eq!(last.fpr, 0.0);
    }

    #[test]
    fn curves_never_complete_when_an_observed_attacker_escapes() {
        let b = with_freeloaders(3, 1);
        let h = History {
            algorithm: "test".into(),
            rounds: vec![
                round(0, vec![0, 1, 2], vec![]),
                round(1, vec![0, 1], vec![]),
            ],
            expelled_clients: vec![],
        };
        let c = curves(&h, &b);
        assert_eq!(c.time_to_detection, None);
        assert_eq!(c.first_flagged, vec![None, None, None]);
        assert_eq!(c.per_round[1].score.tpr, 0.0);
    }

    #[test]
    fn empty_history_yields_empty_curves() {
        let b = with_freeloaders(2, 1);
        let c = curves(&History::default(), &b);
        assert!(c.per_round.is_empty());
        assert_eq!(c.time_to_detection, None);
        assert_eq!(c.first_flagged, vec![None, None]);
        assert_eq!(c.final_score(), None);
    }
}
