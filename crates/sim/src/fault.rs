//! Deterministic fault injection for the simulation runtime.
//!
//! Real federated deployments never get the clean round the basic
//! simulator assumes: clients drop out mid-round, straggle past the
//! server's synchronous deadline, or upload corrupted payloads. A
//! [`FaultPlan`] injects exactly those failures, deterministically:
//! every fault is drawn from a per-`(round, client)` RNG derived from
//! the run seed (the same derivation the client training streams use),
//! so the same seed and plan produce bit-identical histories at any
//! thread count, parallel or sequential.
//!
//! Three client-side fault kinds ([`FaultKind`]):
//!
//! - **dropout** — the update never arrives (the client crashed or
//!   lost connectivity before uploading);
//! - **straggler** — the client finishes, but `factor`× slower. The
//!   measured `compute_seconds` is inflated for the timing metrics,
//!   and the *simulated* round time `τ_i · seconds_per_step · factor`
//!   is compared against the server's synchronous [`Deadline`]; late
//!   clients are cut from aggregation (their upload arrives after the
//!   server stopped listening, so it costs no accounted bytes);
//! - **corruption** — the payload is damaged on the wire (applied
//!   *after* upload compression): one element NaN- or ∞-poisoned, or
//!   the whole delta scaled by a huge factor.
//!
//! On the server side, a [`ValidationPolicy`] quarantines broken
//! uploads before they reach aggregation: any non-finite delta (or
//! momentum buffer) and any delta whose L2 norm exceeds
//! `max_delta_norm` is rejected, counted, and reported to the
//! algorithm via
//! [`taco_core::FederatedAlgorithm::report_invalid_update`] as
//! freeloader-detection evidence (TACO turns repeated offenders into
//! strikes, Eq. 10).
//!
//! At most one fault is injected per `(round, client)` cell, with
//! priority dropout > corruption > straggler; the per-category draws
//! are consumed in a fixed order so a plan's dropout stream does not
//! shift when the corruption probability changes.

use taco_core::compress::EncodedDelta;
use taco_core::ClientUpdate;
use taco_tensor::{ops, Prng};

/// Salt mixed into the run seed so fault draws are independent of the
/// client training streams derived from the same `(round, client)`
/// cell.
const FAULT_SALT: u64 = 0xFA17;

/// Deterministic per-(round, client) RNG for fault draws — the same
/// derivation as the runner's client streams, salted.
fn fault_rng(seed: u64, round: usize, client: usize) -> Prng {
    let mixed = (seed ^ FAULT_SALT)
        ^ (round as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (client as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
    Prng::seed_from_u64(mixed)
}

/// How an upload is corrupted on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// One element of the delta becomes NaN — the smallest corruption
    /// a server-side validator must still catch.
    NanPoison,
    /// One element of the delta becomes `+∞`.
    InfPoison,
    /// The whole delta is scaled by `factor` (a norm explosion).
    Scale {
        /// The multiplicative blow-up factor.
        factor: f32,
    },
}

/// One injected fault for a `(round, client)` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The update never arrives.
    Dropout,
    /// The client runs `factor`× slower than nominal.
    Straggler {
        /// Compute-time multiplier, `> 1`.
        factor: f64,
    },
    /// The upload arrives damaged.
    Corrupt(Corruption),
}

impl FaultKind {
    /// Short machine-readable label for trace events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Dropout => "dropout",
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::Corrupt(Corruption::NanPoison) => "corrupt_nan",
            FaultKind::Corrupt(Corruption::InfPoison) => "corrupt_inf",
            FaultKind::Corrupt(Corruption::Scale { .. }) => "corrupt_scale",
        }
    }
}

/// The server's synchronous round deadline.
///
/// Measured wall-clock time is nondeterministic, so the deadline is
/// evaluated against *simulated* client time
/// `τ_i · seconds_per_step · straggler_factor` — deterministic given
/// the plan and the per-client step counts, which is what keeps
/// histories bit-identical under fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deadline {
    /// The synchronous round budget, in simulated seconds.
    pub seconds: f64,
    /// Simulated seconds one unimpaired client spends per local step.
    pub seconds_per_step: f64,
}

impl Deadline {
    /// Simulated round time of a client that ran `steps` local steps
    /// under a straggler slowdown of `factor` (1.0 when unimpaired).
    pub fn simulated_seconds(&self, steps: usize, factor: f64) -> f64 {
        steps as f64 * self.seconds_per_step * factor
    }

    /// `true` when a client with the given steps/slowdown misses the
    /// deadline and is cut from aggregation.
    pub fn misses(&self, steps: usize, factor: f64) -> bool {
        self.simulated_seconds(steps, factor) > self.seconds
    }
}

/// Server-side update validation thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationPolicy {
    /// Maximum accepted `‖Δ_i‖₂`; anything larger is quarantined.
    /// Non-finite values are always rejected, whatever the bound.
    pub max_delta_norm: f32,
}

impl Default for ValidationPolicy {
    fn default() -> Self {
        ValidationPolicy {
            max_delta_norm: 1e6,
        }
    }
}

/// Why the server quarantined an upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The delta (or momentum buffer) contains NaN/∞.
    NonFinite,
    /// `‖Δ_i‖₂` exceeds the policy's bound.
    NormExploded,
    /// The encoded payload is structurally invalid (out-of-range or
    /// unsorted indices, truncated level buffer) — rejected before the
    /// decoded floats are trusted.
    MalformedEncoding,
}

impl RejectReason {
    /// Short machine-readable label for trace events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::NonFinite => "non_finite",
            RejectReason::NormExploded => "norm_exploded",
            RejectReason::MalformedEncoding => "malformed_encoding",
        }
    }
}

impl ValidationPolicy {
    /// Validates one received upload; `Err` names the quarantine
    /// reason. Encoded payloads are structure-checked first: a
    /// corrupted index or level buffer is quarantined as malformed
    /// even when the decoded floats happen to look plausible.
    pub fn validate(&self, update: &ClientUpdate) -> Result<(), RejectReason> {
        if let Some(enc) = &update.encoded {
            if !enc.check_integrity() {
                return Err(RejectReason::MalformedEncoding);
            }
        }
        if !ops::all_finite(&update.delta) {
            return Err(RejectReason::NonFinite);
        }
        if let Some(v) = &update.final_v {
            if !ops::all_finite(v) {
                return Err(RejectReason::NonFinite);
            }
        }
        if ops::norm(&update.delta) > self.max_delta_norm {
            return Err(RejectReason::NormExploded);
        }
        Ok(())
    }
}

/// A deterministic, seeded fault-injection plan.
///
/// Built with the builder methods below; the all-[`FaultPlan::new`]
/// default injects nothing (but still validates uploads), so a noop
/// plan is trajectory-identical to running without one.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// First round in which faults fire (validation is always on).
    pub start_round: usize,
    /// Per-(round, client) dropout probability.
    pub dropout_prob: f64,
    /// Per-(round, client) corruption probability (evaluated after
    /// dropout).
    pub corrupt_prob: f64,
    /// Scale factor used by [`Corruption::Scale`] corruptions.
    pub corrupt_scale: f32,
    /// Per-(round, client) straggler probability (evaluated after
    /// corruption).
    pub straggler_prob: f64,
    /// Slowdown multiplier applied to stragglers.
    pub straggler_factor: f64,
    /// Optional synchronous server deadline.
    pub deadline: Option<Deadline>,
    /// Server-side quarantine thresholds.
    pub validation: ValidationPolicy,
    /// When set, only these clients ever fault (a targeted scenario:
    /// "client 3's uplink is bad"). `None` targets everyone.
    pub only_clients: Option<Vec<usize>>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

fn assert_prob(p: f64, what: &str) {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "{what} must be a probability in [0, 1], got {p}"
    );
}

impl FaultPlan {
    /// A plan that injects nothing and validates with default
    /// thresholds.
    pub fn new() -> Self {
        FaultPlan {
            start_round: 0,
            dropout_prob: 0.0,
            corrupt_prob: 0.0,
            corrupt_scale: 1e9,
            straggler_prob: 0.0,
            straggler_factor: 4.0,
            deadline: None,
            validation: ValidationPolicy::default(),
            only_clients: None,
        }
    }

    /// Builder-style dropout probability.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not a probability.
    pub fn with_dropouts(mut self, prob: f64) -> Self {
        assert_prob(prob, "dropout_prob");
        self.dropout_prob = prob;
        self
    }

    /// Builder-style straggler probability and slowdown factor.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not a probability or `factor < 1`.
    pub fn with_stragglers(mut self, prob: f64, factor: f64) -> Self {
        assert_prob(prob, "straggler_prob");
        assert!(
            factor.is_finite() && factor >= 1.0,
            "straggler factor must be >= 1, got {factor}"
        );
        self.straggler_prob = prob;
        self.straggler_factor = factor;
        self
    }

    /// Builder-style corruption probability and scale blow-up factor.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not a probability or `scale` is not finite
    /// and positive.
    pub fn with_corruption(mut self, prob: f64, scale: f32) -> Self {
        assert_prob(prob, "corrupt_prob");
        assert!(
            scale.is_finite() && scale > 0.0,
            "corrupt scale must be positive and finite, got {scale}"
        );
        self.corrupt_prob = prob;
        self.corrupt_scale = scale;
        self
    }

    /// Builder-style synchronous deadline (simulated seconds; see
    /// [`Deadline`]).
    ///
    /// # Panics
    ///
    /// Panics if either quantity is not positive and finite.
    pub fn with_deadline(mut self, seconds: f64, seconds_per_step: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds > 0.0,
            "deadline seconds must be positive and finite, got {seconds}"
        );
        assert!(
            seconds_per_step.is_finite() && seconds_per_step > 0.0,
            "seconds_per_step must be positive and finite, got {seconds_per_step}"
        );
        self.deadline = Some(Deadline {
            seconds,
            seconds_per_step,
        });
        self
    }

    /// Builder-style validation-threshold override.
    ///
    /// # Panics
    ///
    /// Panics if `max_delta_norm` is not positive and finite.
    pub fn with_max_delta_norm(mut self, max_delta_norm: f32) -> Self {
        assert!(
            max_delta_norm.is_finite() && max_delta_norm > 0.0,
            "max_delta_norm must be positive and finite, got {max_delta_norm}"
        );
        self.validation = ValidationPolicy { max_delta_norm };
        self
    }

    /// Builder-style fault activation round (validation stays always
    /// on).
    pub fn starting_at(mut self, round: usize) -> Self {
        self.start_round = round;
        self
    }

    /// Builder-style client targeting: faults only ever hit the given
    /// clients.
    pub fn targeting(mut self, clients: Vec<usize>) -> Self {
        self.only_clients = Some(clients);
        self
    }

    /// `true` when the plan can never inject a fault (it may still
    /// quarantine organically broken uploads).
    pub fn is_inert(&self) -> bool {
        self.dropout_prob == 0.0 && self.corrupt_prob == 0.0 && self.straggler_prob == 0.0
    }

    /// The fault (if any) this plan injects for `(round, client)`
    /// under run seed `seed`. Pure: depends only on the arguments and
    /// the plan, never on execution order, so parallel and sequential
    /// runs see identical faults.
    pub fn fault_for(&self, seed: u64, round: usize, client: usize) -> Option<FaultKind> {
        if round < self.start_round {
            return None;
        }
        if let Some(only) = &self.only_clients {
            if !only.contains(&client) {
                return None;
            }
        }
        if self.is_inert() {
            return None;
        }
        let mut rng = fault_rng(seed, round, client);
        // Fixed draw order (dropout, corruption kind, straggler) keeps
        // each category's stream stable when another's probability
        // changes.
        let u_drop = rng.uniform_f64();
        let u_corrupt = rng.uniform_f64();
        let kind_draw = rng.below(3);
        let u_straggle = rng.uniform_f64();
        if u_drop < self.dropout_prob {
            return Some(FaultKind::Dropout);
        }
        if u_corrupt < self.corrupt_prob {
            let corruption = match kind_draw {
                0 => Corruption::NanPoison,
                1 => Corruption::InfPoison,
                _ => Corruption::Scale {
                    factor: self.corrupt_scale,
                },
            };
            return Some(FaultKind::Corrupt(corruption));
        }
        if u_straggle < self.straggler_prob {
            return Some(FaultKind::Straggler {
                factor: self.straggler_factor,
            });
        }
        None
    }
}

/// Applies a wire corruption to an uploaded delta in place.
pub fn apply_corruption(delta: &mut [f32], corruption: Corruption) {
    if delta.is_empty() {
        return;
    }
    match corruption {
        Corruption::NanPoison => delta[0] = f32::NAN,
        Corruption::InfPoison => delta[0] = f32::INFINITY,
        Corruption::Scale { factor } => ops::scale(delta, factor),
    }
}

/// Applies a wire corruption to an *encoded* upload in place — the
/// damage lands on what actually travels (an index, a value slot, or
/// the scale header), not on the decoded f32s. The three corruption
/// kinds map onto format-appropriate damage so the existing fault draw
/// stream is reused unchanged:
///
/// - `NanPoison` poisons a payload value (sparse `values[0]`) or the
///   quantization `scale` header, so every dequantized coordinate goes
///   NaN.
/// - `InfPoison` breaks a sparse index (`u32::MAX` — caught as a
///   malformed encoding before decode is trusted) or sends the `min`
///   header to `+∞`.
/// - `Scale` multiplies the payload values / the `scale` header, the
///   encoded analogue of a norm explosion.
pub fn apply_corruption_encoded(enc: &mut EncodedDelta, corruption: Corruption) {
    match enc {
        EncodedDelta::Dense(v) => apply_corruption(v, corruption),
        EncodedDelta::Sparse {
            values, indices, ..
        } => {
            if values.is_empty() {
                // Nothing to damage in an empty payload: break the
                // structure instead (a length mismatch with an
                // out-of-range index), so an injected fault is always
                // observable and `rejected == injected` holds.
                indices.push(u32::MAX);
                values.push(f32::NAN);
                return;
            }
            match corruption {
                Corruption::NanPoison => values[0] = f32::NAN,
                Corruption::InfPoison => indices[0] = u32::MAX,
                Corruption::Scale { factor } => ops::scale(values, factor),
            }
        }
        EncodedDelta::Q8 { min, scale, .. } | EncodedDelta::Q4 { min, scale, .. } => {
            match corruption {
                Corruption::NanPoison => *scale = f32::NAN,
                Corruption::InfPoison => *min = f32::INFINITY,
                Corruption::Scale { factor } => {
                    if *scale == 0.0 {
                        // Constant or all-escape vectors quantize with
                        // scale 0 — multiplying it would be a no-op.
                        // Damage the offset header instead so the
                        // fault stays observable downstream.
                        *min = if *min == 0.0 { factor } else { *min * factor };
                    } else {
                        *scale *= factor;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(delta: Vec<f32>) -> ClientUpdate {
        ClientUpdate {
            client: 0,
            delta,
            num_samples: 1,
            final_v: None,
            mean_loss: 0.0,
            grad_evals: 0,
            steps: 1,
            compute_seconds: 0.0,
            encoded: None,
        }
    }

    #[test]
    fn inert_plan_never_faults() {
        let plan = FaultPlan::new();
        assert!(plan.is_inert());
        for round in 0..20 {
            for client in 0..10 {
                assert_eq!(plan.fault_for(7, round, client), None);
            }
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::new()
            .with_dropouts(0.3)
            .with_corruption(0.3, 1e6)
            .with_stragglers(0.3, 4.0);
        let a: Vec<_> = (0..50).map(|c| plan.fault_for(1, 3, c)).collect();
        let b: Vec<_> = (0..50).map(|c| plan.fault_for(1, 3, c)).collect();
        assert_eq!(a, b);
        let other: Vec<_> = (0..50).map(|c| plan.fault_for(2, 3, c)).collect();
        assert_ne!(a, other, "different seeds should draw different faults");
    }

    #[test]
    fn certain_dropout_wins_priority() {
        let plan = FaultPlan::new()
            .with_dropouts(1.0)
            .with_corruption(1.0, 1e6)
            .with_stragglers(1.0, 2.0);
        for c in 0..10 {
            assert_eq!(plan.fault_for(0, 0, c), Some(FaultKind::Dropout));
        }
    }

    #[test]
    fn category_streams_do_not_shift_with_other_probabilities() {
        // The straggler decision for a cell must not change when the
        // dropout probability changes from "never fires for this cell"
        // to zero.
        let base = FaultPlan::new().with_stragglers(0.5, 3.0);
        let with_drop = base.clone().with_dropouts(0.0);
        for c in 0..64 {
            assert_eq!(base.fault_for(9, 2, c), with_drop.fault_for(9, 2, c));
        }
    }

    #[test]
    fn start_round_gates_faults() {
        let plan = FaultPlan::new().with_dropouts(1.0).starting_at(5);
        assert_eq!(plan.fault_for(3, 4, 0), None);
        assert_eq!(plan.fault_for(3, 5, 0), Some(FaultKind::Dropout));
    }

    #[test]
    fn targeting_restricts_clients() {
        let plan = FaultPlan::new().with_dropouts(1.0).targeting(vec![2]);
        assert_eq!(plan.fault_for(0, 0, 0), None);
        assert_eq!(plan.fault_for(0, 0, 2), Some(FaultKind::Dropout));
    }

    #[test]
    fn validation_rejects_nan_inf_and_norm_explosions() {
        let policy = ValidationPolicy {
            max_delta_norm: 10.0,
        };
        assert_eq!(policy.validate(&upd(vec![1.0, 2.0])), Ok(()));
        assert_eq!(
            policy.validate(&upd(vec![1.0, f32::NAN])),
            Err(RejectReason::NonFinite)
        );
        assert_eq!(
            policy.validate(&upd(vec![f32::INFINITY, 0.0])),
            Err(RejectReason::NonFinite)
        );
        assert_eq!(
            policy.validate(&upd(vec![100.0, 0.0])),
            Err(RejectReason::NormExploded)
        );
        let mut with_v = upd(vec![1.0]);
        with_v.final_v = Some(vec![f32::NAN]);
        assert_eq!(policy.validate(&with_v), Err(RejectReason::NonFinite));
    }

    #[test]
    fn corruption_kinds_damage_the_delta() {
        let mut d = vec![1.0f32, 2.0];
        apply_corruption(&mut d, Corruption::NanPoison);
        assert!(d[0].is_nan() && d[1] == 2.0);
        let mut d = vec![1.0f32, 2.0];
        apply_corruption(&mut d, Corruption::InfPoison);
        assert!(d[0].is_infinite());
        let mut d = vec![1.0f32, 2.0];
        apply_corruption(&mut d, Corruption::Scale { factor: 100.0 });
        assert_eq!(d, vec![100.0, 200.0]);
        // Empty deltas are untouched rather than panicking.
        apply_corruption(&mut [], Corruption::NanPoison);
    }

    #[test]
    fn scale_corruption_lands_on_the_offset_for_constant_quantized_vectors() {
        // A constant vector quantizes with scale == 0; multiplying the
        // scale header would be a no-op, so the damage must land on
        // the `min` offset instead.
        let mut enc = EncodedDelta::Q8 {
            min: 2.0,
            scale: 0.0,
            levels: vec![0; 4],
            exceptions: Vec::new(),
        };
        apply_corruption_encoded(&mut enc, Corruption::Scale { factor: 1e6 });
        assert!(enc.decode().iter().all(|v| v.abs() >= 1e6));

        // All-zero vectors have min == 0 too: the factor itself
        // becomes the offset.
        let mut enc = EncodedDelta::Q8 {
            min: 0.0,
            scale: 0.0,
            levels: vec![0; 4],
            exceptions: Vec::new(),
        };
        apply_corruption_encoded(&mut enc, Corruption::Scale { factor: 1e6 });
        assert!(enc.decode().iter().all(|&v| v == 1e6));
    }

    #[test]
    fn empty_sparse_corruption_breaks_the_structure() {
        // An empty sparse payload has no value or index slot to
        // damage; an injected corruption must still be observable —
        // as a malformed encoding.
        for kind in [
            Corruption::NanPoison,
            Corruption::InfPoison,
            Corruption::Scale { factor: 1e6 },
        ] {
            let mut enc = EncodedDelta::Sparse {
                dim: 0,
                indices: Vec::new(),
                values: Vec::new(),
            };
            apply_corruption_encoded(&mut enc, kind);
            assert!(!enc.check_integrity());
        }
    }

    #[test]
    fn deadline_cuts_slow_clients_only() {
        let d = Deadline {
            seconds: 10.0,
            seconds_per_step: 1.0,
        };
        assert!(!d.misses(10, 1.0), "on-time client kept");
        assert!(d.misses(10, 2.0), "straggler cut");
        assert!(d.misses(11, 1.0), "too many steps cut");
        assert_eq!(d.simulated_seconds(5, 2.0), 10.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::Dropout.label(), "dropout");
        assert_eq!(FaultKind::Straggler { factor: 2.0 }.label(), "straggler");
        assert_eq!(
            FaultKind::Corrupt(Corruption::Scale { factor: 2.0 }).label(),
            "corrupt_scale"
        );
        assert_eq!(RejectReason::NonFinite.label(), "non_finite");
        assert_eq!(RejectReason::NormExploded.label(), "norm_exploded");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_panics() {
        let _ = FaultPlan::new().with_dropouts(1.5);
    }

    #[test]
    #[should_panic(expected = "straggler factor")]
    fn sub_unit_straggler_factor_panics() {
        let _ = FaultPlan::new().with_stragglers(0.5, 0.5);
    }
}
