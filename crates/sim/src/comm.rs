//! Communication-time model.
//!
//! The paper's time-to-accuracy evaluation deliberately excludes
//! network time ("we assume all FL algorithms are implemented in
//! identical network conditions") and notes that when transmission
//! dominates, round-to-accuracy is the right lens. This model closes
//! the loop: given link parameters it converts per-round payloads into
//! seconds, so total time = compute + communication can be studied on
//! the spectrum between the paper's two extremes.

/// Link parameters for one client↔server connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommModel {
    /// Client→server bandwidth in bytes per second.
    pub uplink_bytes_per_sec: f64,
    /// Server→client bandwidth in bytes per second.
    pub downlink_bytes_per_sec: f64,
    /// Per-message latency in seconds (applied once per direction per
    /// round).
    pub latency_seconds: f64,
}

impl CommModel {
    /// A broadband-ish edge link: 10 Mbit/s up, 50 Mbit/s down, 30 ms
    /// latency.
    pub fn edge_broadband() -> Self {
        CommModel {
            uplink_bytes_per_sec: 10.0e6 / 8.0,
            downlink_bytes_per_sec: 50.0e6 / 8.0,
            latency_seconds: 0.03,
        }
    }

    /// A constrained cellular link: 1 Mbit/s up, 5 Mbit/s down, 80 ms
    /// latency — the regime where the paper says round count dominates.
    pub fn cellular() -> Self {
        CommModel {
            uplink_bytes_per_sec: 1.0e6 / 8.0,
            downlink_bytes_per_sec: 5.0e6 / 8.0,
            latency_seconds: 0.08,
        }
    }

    /// Seconds to complete one round's communication for a payload of
    /// `upload_bytes` up and `download_bytes` down (synchronous FL:
    /// both directions complete before the round ends).
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is not positive.
    pub fn round_seconds(&self, upload_bytes: usize, download_bytes: usize) -> f64 {
        assert!(
            self.uplink_bytes_per_sec > 0.0 && self.downlink_bytes_per_sec > 0.0,
            "bandwidths must be positive"
        );
        upload_bytes as f64 / self.uplink_bytes_per_sec
            + download_bytes as f64 / self.downlink_bytes_per_sec
            + 2.0 * self.latency_seconds
    }

    /// Round communication time for an uncompressed model exchange of
    /// `param_count` `f32` values each way.
    pub fn round_seconds_for_params(&self, param_count: usize) -> f64 {
        let bytes = param_count * std::mem::size_of::<f32>();
        self.round_seconds(bytes, bytes)
    }
}

/// Combines a compute-time series with a per-round communication cost
/// into total-time-to-accuracy, returning `(total_seconds, reached)`
/// where `reached` is `false` if the accuracy series never attains
/// `target`.
pub fn time_to_accuracy_with_comm(
    accuracy: &[f64],
    compute_seconds: &[f64],
    comm_seconds_per_round: f64,
    target: f64,
) -> (f64, bool) {
    let mut total = 0.0;
    for (acc, secs) in accuracy.iter().zip(compute_seconds) {
        total += secs + comm_seconds_per_round;
        if *acc >= target {
            return (total, true);
        }
    }
    (total, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_seconds_adds_both_directions_and_latency() {
        let m = CommModel {
            uplink_bytes_per_sec: 100.0,
            downlink_bytes_per_sec: 200.0,
            latency_seconds: 0.5,
        };
        // 100 B up (1 s) + 200 B down (1 s) + 2×0.5 s latency = 3 s.
        assert!((m.round_seconds(100, 200) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn params_payload_is_4_bytes_each() {
        let m = CommModel {
            uplink_bytes_per_sec: 4.0,
            downlink_bytes_per_sec: 4.0,
            latency_seconds: 0.0,
        };
        // 10 params = 40 bytes each way = 10 s + 10 s.
        assert!((m.round_seconds_for_params(10) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cellular_is_slower_than_broadband() {
        let p = 100_000;
        assert!(
            CommModel::cellular().round_seconds_for_params(p)
                > CommModel::edge_broadband().round_seconds_for_params(p)
        );
    }

    #[test]
    fn comm_time_shifts_the_winner() {
        // Algorithm A: fast compute, many rounds. Algorithm B: slow
        // compute, few rounds. Under cheap comm A wins; under expensive
        // comm B wins — the paper's Section V-A discussion.
        let acc_a = [0.2, 0.4, 0.6, 0.8];
        let secs_a = [1.0, 1.0, 1.0, 1.0];
        let acc_b = [0.5, 0.8];
        let secs_b = [3.0, 3.0];
        let cheap = 0.1;
        let (ta, ra) = time_to_accuracy_with_comm(&acc_a, &secs_a, cheap, 0.8);
        let (tb, rb) = time_to_accuracy_with_comm(&acc_b, &secs_b, cheap, 0.8);
        assert!(ra && rb);
        assert!(ta < tb, "cheap comm: {ta} vs {tb}");
        let expensive = 10.0;
        let (ta, _) = time_to_accuracy_with_comm(&acc_a, &secs_a, expensive, 0.8);
        let (tb, _) = time_to_accuracy_with_comm(&acc_b, &secs_b, expensive, 0.8);
        assert!(tb < ta, "expensive comm: {tb} vs {ta}");
    }

    #[test]
    fn unreachable_target_reports_false() {
        let (_, reached) = time_to_accuracy_with_comm(&[0.1, 0.2], &[1.0, 1.0], 0.0, 0.9);
        assert!(!reached);
    }
}
