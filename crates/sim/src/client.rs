//! Client-side execution: deterministic per-client RNG derivation and
//! local-step jobs run sequentially or on the shared worker pool.

use taco_core::{update, ClientUpdate, HyperParams, LocalRule};
use taco_data::FederatedDataset;
use taco_nn::Model;
use taco_tensor::Prng;
use taco_trace as trace;

/// One honest client's work order for a round.
pub(crate) struct ClientJob {
    pub(crate) client: usize,
    pub(crate) rule: LocalRule,
    pub(crate) num_samples: usize,
    pub(crate) steps: usize,
}

/// Deterministic per-(round, client) RNG derivation: results never
/// depend on thread scheduling.
pub(crate) fn client_rng(seed: u64, round: usize, client: usize) -> Prng {
    let mixed = seed
        ^ (round as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (client as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
    Prng::seed_from_u64(mixed)
}

/// Executes honest-client jobs, sequentially or on the shared worker
/// pool ([`taco_tensor::pool`]). One job is one pool task; tensor
/// kernels invoked inside a pooled job detect they're on a worker
/// thread and run inline, so clients and kernels share the same
/// `TACO_THREADS` budget instead of oversubscribing. With
/// `TACO_THREADS=1` (or [`crate::SimConfig::sequential`]) everything
/// runs on the caller; histories are bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_jobs(
    prototype: &dyn Model,
    fed: &FederatedDataset,
    global: &[f32],
    jobs: Vec<ClientJob>,
    round: usize,
    hyper: &HyperParams,
    seed: u64,
    parallel: bool,
) -> Vec<ClientUpdate> {
    let run_one = move |job: &ClientJob| -> ClientUpdate {
        let span = trace::span!(
            crate::phase::CLIENT_STEP,
            round = round,
            client = job.client,
            steps = job.steps
        );
        let mut model = prototype.clone_model();
        model.set_params(global);
        let mut rng = client_rng(seed, round, job.client);
        // Wall-clock time is read only through taco-trace spans
        // (D2): the span both feeds the `client_compute.seconds`
        // histogram and hands back the measured duration.
        let compute_span = trace::Span::quiet(crate::phase::CLIENT_COMPUTE);
        let outcome = update::run_local_steps(
            &mut *model,
            fed.client(job.client),
            &job.rule,
            job.steps,
            hyper.eta_l,
            hyper.batch_size,
            &mut rng,
        );
        let elapsed = compute_span.finish();
        let mut u = ClientUpdate::from_outcome(job.client, job.num_samples, outcome);
        u.compute_seconds = elapsed;
        drop(span);
        u
    };
    if !parallel || jobs.len() <= 1 || taco_tensor::pool::threads() <= 1 {
        return jobs.iter().map(run_one).collect();
    }
    let mut results: Vec<Option<ClientUpdate>> = Vec::new();
    results.resize_with(jobs.len(), || None);
    taco_tensor::pool::for_each_chunk(&mut results, 1, |i, slot| {
        slot[0] = Some(run_one(&jobs[i]));
    });
    results
        .into_iter()
        // taco-check: allow(unwrap, pool::for_each_chunk visits every chunk exactly once, so every slot was filled)
        .map(|r| r.expect("client job not executed"))
        .collect()
}
