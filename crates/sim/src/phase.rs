//! Stable names of the round-loop phases — a **reported contract**.
//!
//! Each phase of [`crate::Simulation::run`] is timed by a quiet span
//! feeding the `<name>.seconds` histogram (see `taco_trace::perf` for
//! the quantile aggregation). The perf-trajectory suite (`perf_suite`
//! → `BENCH_perf_suite.json`) and the round trace events report these
//! names verbatim, so renaming one is a telemetry schema change: bump
//! the BENCH schema version and regenerate the committed trajectory if
//! you must.

/// The whole communication round.
pub const ROUND: &str = "sim.round";
/// Expulsion filtering + participation draw.
pub const PARTICIPATION: &str = "sim.phase.participation";
/// Local client training (all clients of the round).
pub const LOCAL: &str = "sim.phase.local";
/// Lossy upload compression + byte accounting.
pub const COMPRESS: &str = "sim.phase.compress";
/// Server-side aggregation.
pub const AGGREGATE: &str = "sim.phase.aggregate";
/// Shard accumulation/merge work inside the sharded backend (per
/// accepted upload while accumulating, and once inside [`AGGREGATE`]
/// for the frozen-table merge). Zero on the sequential backend.
pub const SHARD_MERGE: &str = "sim.phase.shard_merge";
/// Global-model evaluation.
pub const EVAL: &str = "sim.phase.eval";
/// One client's local computation (per-client, inside [`LOCAL`]).
pub const CLIENT_COMPUTE: &str = "client_compute";

/// Every phase name, outermost first.
pub const ALL: [&str; 8] = [
    ROUND,
    PARTICIPATION,
    LOCAL,
    COMPRESS,
    AGGREGATE,
    SHARD_MERGE,
    EVAL,
    CLIENT_COMPUTE,
];

/// One client's whole local step (the event-emitting span wrapping
/// [`CLIENT_COMPUTE`]; per-client, inside [`LOCAL`]).
pub const CLIENT_STEP: &str = "client_step";
/// Gradient-norm calibration probe in the cost model (setup-time, not
/// part of the round loop, hence not in [`ALL`]).
pub const CALIBRATE: &str = "sim.calibrate_grad";

/// Auxiliary span names reported outside the round-loop phase set:
/// still contract — renaming one changes the trace schema — but not
/// part of the per-round `<name>.seconds` trajectory in [`ALL`].
pub const AUX: [&str; 2] = [CLIENT_STEP, CALIBRATE];

/// The `<name>.seconds` histogram a phase's span feeds.
pub fn seconds_histogram(phase: &str) -> String {
    format!("{phase}.seconds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_unique_and_namespaced() {
        let mut names = ALL.to_vec();
        names.extend(AUX);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len() + AUX.len());
        for name in ALL.iter().chain(AUX.iter()) {
            assert!(!name.ends_with(".seconds"), "{name} already suffixed");
        }
        assert_eq!(seconds_histogram(ROUND), "sim.round.seconds");
    }
}
