//! Per-round records and the paper's efficiency metrics.

/// Per-kind fault and rejection tallies for one round (or, summed,
/// for a run): the attribution detail behind the aggregate
/// `faults_injected`/`updates_rejected` counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTotals {
    /// Dropout faults injected.
    pub dropouts: usize,
    /// Straggler faults injected.
    pub stragglers: usize,
    /// Wire-corruption faults injected.
    pub corruptions: usize,
    /// Uploads cut by the server's synchronous deadline.
    pub deadline_cuts: usize,
    /// Uploads quarantined by validation.
    pub quarantined: usize,
}

impl FaultTotals {
    /// Faults injected (matches `faults_injected`).
    pub fn injected(&self) -> usize {
        self.dropouts + self.stragglers + self.corruptions
    }

    /// Uploads rejected by the server (matches `updates_rejected`).
    pub fn rejected(&self) -> usize {
        self.deadline_cuts + self.quarantined
    }

    /// Adds another tally into this one (summing rounds into a run).
    pub fn accumulate(&mut self, other: &FaultTotals) {
        self.dropouts += other.dropouts;
        self.stragglers += other.stragglers;
        self.corruptions += other.corruptions;
        self.deadline_cuts += other.deadline_cuts;
        self.quarantined += other.quarantined;
    }
}

/// Everything recorded about one communication round.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundRecord {
    /// Round index `t` (0-based).
    pub round: usize,
    /// Global-model test accuracy after the round (on the algorithm's
    /// reported output parameters).
    pub test_accuracy: f64,
    /// Global-model test loss after the round.
    pub test_loss: f64,
    /// Mean local training loss across honest clients. When a round
    /// has no honest participants (freeloader-only draw, or every
    /// update dropped/rejected), the previous round's value is carried
    /// forward and [`RoundRecord::train_loss_carried`] is set.
    pub train_loss: f64,
    /// `true` when `train_loss` was carried forward from the previous
    /// round instead of being measured this round.
    pub train_loss_carried: bool,
    /// The slowest client's local compute time this round, in seconds —
    /// the paper's Fig. 5 quantity (synchronous FL waits for the
    /// straggler).
    pub max_client_seconds: f64,
    /// Sum of all clients' local compute time this round.
    pub total_client_seconds: f64,
    /// The algorithm's per-client `α_i^t` after the round, if it
    /// computes them.
    pub alphas: Option<Vec<f32>>,
    /// Number of clients expelled so far.
    pub expelled: usize,
    /// Total bytes uploaded by clients this round (after compression,
    /// when an upload compressor is configured).
    pub upload_bytes: usize,
    /// Faults injected this round by the configured
    /// [`crate::fault::FaultPlan`] (dropouts + corruptions +
    /// stragglers); `0` when no plan is set.
    pub faults_injected: usize,
    /// Uploads cut from aggregation by the server this round: deadline
    /// misses plus validation quarantines.
    pub updates_rejected: usize,
    /// Clients drawn to participate this round (sorted ids). The
    /// denominator of the detection scoreboard: a client that never
    /// appears here was never observable by the server.
    pub participants: Vec<usize>,
    /// Clients the algorithm suspects after this round
    /// ([`taco_core::FederatedAlgorithm::suspected`], sorted ids).
    /// Suspicion is diagnostic — it never feeds back into aggregation.
    pub suspected: Vec<usize>,
    /// Model-update attacks applied this round by the configured
    /// [`crate::adversary::AdversaryPlan`]; `0` when no plan is set.
    pub attacks_applied: usize,
    /// Per-kind breakdown of `faults_injected`/`updates_rejected`.
    pub fault_totals: FaultTotals,
    /// Per-client state slots the algorithm holds after this round
    /// ([`taco_core::FederatedAlgorithm::tracked_client_states`]) — the
    /// churn probe that departed clients' state was actually dropped.
    pub tracked_states: usize,
}

/// The full trajectory of a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    /// Algorithm display name.
    pub algorithm: String,
    /// One record per round, in order.
    pub rounds: Vec<RoundRecord>,
    /// Clients expelled by the algorithm over the whole run.
    pub expelled_clients: Vec<usize>,
}

impl History {
    /// Test accuracy after the final round; `0` for an empty run.
    pub fn final_accuracy(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.test_accuracy)
    }

    /// Best test accuracy over the run.
    pub fn best_accuracy(&self) -> f64 {
        self.rounds
            .iter()
            .map(|r| r.test_accuracy)
            .fold(0.0, f64::max)
    }

    /// The paper's **round-to-accuracy**: the 1-based round count at
    /// which `target` test accuracy is first reached, or `None` if the
    /// run never reaches it (the paper's `×` / `200+` entries).
    pub fn rounds_to_accuracy(&self, target: f64) -> Option<usize> {
        self.rounds
            .iter()
            .position(|r| r.test_accuracy >= target)
            .map(|p| p + 1)
    }

    /// The paper's **time-to-accuracy**: cumulative slowest-client
    /// compute seconds until `target` accuracy is first reached
    /// (Fig. 4), or `None` if never reached.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        let mut acc_time = 0.0;
        for r in &self.rounds {
            acc_time += r.max_client_seconds;
            if r.test_accuracy >= target {
                return Some(acc_time);
            }
        }
        None
    }

    /// Total slowest-client compute time across the run.
    pub fn total_time(&self) -> f64 {
        self.rounds.iter().map(|r| r.max_client_seconds).sum()
    }

    /// Total bytes uploaded across the run.
    pub fn total_upload_bytes(&self) -> usize {
        self.rounds.iter().map(|r| r.upload_bytes).sum()
    }

    /// Total faults injected across the run.
    pub fn total_faults_injected(&self) -> usize {
        self.rounds.iter().map(|r| r.faults_injected).sum()
    }

    /// Total uploads rejected by the server across the run (deadline
    /// misses + validation quarantines).
    pub fn total_updates_rejected(&self) -> usize {
        self.rounds.iter().map(|r| r.updates_rejected).sum()
    }

    /// Per-kind fault/rejection totals summed across the run.
    pub fn fault_totals(&self) -> FaultTotals {
        let mut t = FaultTotals::default();
        for r in &self.rounds {
            t.accumulate(&r.fault_totals);
        }
        t
    }

    /// Total model-update attacks applied across the run.
    pub fn total_attacks_applied(&self) -> usize {
        self.rounds.iter().map(|r| r.attacks_applied).sum()
    }

    /// Which of `n_clients` ever participated in any round — the
    /// participation gate for [`crate::detection::score`].
    pub fn participation_mask(&self, n_clients: usize) -> Vec<bool> {
        let mut mask = vec![false; n_clients];
        for r in &self.rounds {
            for &c in &r.participants {
                if c < n_clients {
                    mask[c] = true;
                }
            }
        }
        mask
    }

    /// The per-round slowest-client compute times (Fig. 5's series).
    pub fn per_round_seconds(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.max_client_seconds).collect()
    }

    /// The accuracy series indexed by round (Figs. 2a/2b).
    pub fn accuracy_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.test_accuracy).collect()
    }

    /// The accuracy series indexed by cumulative compute time
    /// (Figs. 2c/2d): `(seconds, accuracy)` pairs.
    pub fn accuracy_vs_time(&self) -> Vec<(f64, f64)> {
        let mut t = 0.0;
        self.rounds
            .iter()
            .map(|r| {
                t += r.max_client_seconds;
                (t, r.test_accuracy)
            })
            .collect()
    }

    /// Accuracy instability: the standard deviation of round-to-round
    /// accuracy changes over the last half of training. The paper's
    /// Fig. 2 discussion calls out exactly this kind of oscillation for
    /// over-corrected algorithms.
    pub fn instability(&self) -> f64 {
        let accs = self.accuracy_series();
        if accs.len() < 4 {
            return 0.0;
        }
        let tail = &accs[accs.len() / 2..];
        let diffs: Vec<f64> = tail.windows(2).map(|w| w[1] - w[0]).collect();
        taco_tensor::stats::std_dev(&diffs)
    }

    /// `true` if training diverged (non-finite or chance-level-collapse
    /// accuracy at the end after having been above it). Mirrors the
    /// paper's `×` convergence-failure markers.
    pub fn diverged(&self, chance_level: f64) -> bool {
        let last = self.final_accuracy();
        !last.is_finite() || (self.best_accuracy() > 1.5 * chance_level && last < chance_level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: usize, acc: f64, secs: f64) -> RoundRecord {
        RoundRecord {
            round,
            test_accuracy: acc,
            max_client_seconds: secs,
            total_client_seconds: secs * 2.0,
            ..RoundRecord::default()
        }
    }

    fn history(accs: &[f64]) -> History {
        History {
            algorithm: "test".into(),
            rounds: accs
                .iter()
                .enumerate()
                .map(|(i, &a)| rec(i, a, 1.0))
                .collect(),
            expelled_clients: Vec::new(),
        }
    }

    #[test]
    fn round_to_accuracy_is_one_based() {
        let h = history(&[0.1, 0.5, 0.7]);
        assert_eq!(h.rounds_to_accuracy(0.5), Some(2));
        assert_eq!(h.rounds_to_accuracy(0.9), None);
        assert_eq!(h.rounds_to_accuracy(0.05), Some(1));
    }

    #[test]
    fn time_to_accuracy_accumulates() {
        let h = history(&[0.1, 0.5, 0.7]);
        assert_eq!(h.time_to_accuracy(0.7), Some(3.0));
        assert_eq!(h.time_to_accuracy(0.99), None);
        assert_eq!(h.total_time(), 3.0);
    }

    #[test]
    fn accuracy_vs_time_pairs() {
        let h = history(&[0.2, 0.4]);
        assert_eq!(h.accuracy_vs_time(), vec![(1.0, 0.2), (2.0, 0.4)]);
    }

    #[test]
    fn final_and_best() {
        let h = history(&[0.3, 0.8, 0.6]);
        assert_eq!(h.final_accuracy(), 0.6);
        assert_eq!(h.best_accuracy(), 0.8);
    }

    #[test]
    fn stable_run_has_low_instability() {
        let smooth = history(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]);
        let rocky = history(&[0.1, 0.2, 0.3, 0.4, 0.7, 0.2, 0.8, 0.1]);
        assert!(smooth.instability() < rocky.instability());
    }

    #[test]
    fn divergence_detection() {
        let ok = history(&[0.1, 0.5, 0.7]);
        assert!(!ok.diverged(0.1));
        let collapsed = history(&[0.1, 0.6, 0.05]);
        assert!(collapsed.diverged(0.1));
        let never_learned = history(&[0.1, 0.1, 0.1]);
        assert!(!never_learned.diverged(0.1));
    }

    #[test]
    fn fault_totals_sum_over_rounds() {
        let mut h = history(&[0.1, 0.2, 0.3]);
        h.rounds[0].faults_injected = 2;
        h.rounds[2].faults_injected = 1;
        h.rounds[1].updates_rejected = 3;
        assert_eq!(h.total_faults_injected(), 3);
        assert_eq!(h.total_updates_rejected(), 3);
    }

    #[test]
    fn per_kind_totals_accumulate_and_cross_check() {
        let mut h = history(&[0.1, 0.2]);
        h.rounds[0].fault_totals = FaultTotals {
            dropouts: 1,
            stragglers: 2,
            corruptions: 0,
            deadline_cuts: 1,
            quarantined: 0,
        };
        h.rounds[1].fault_totals = FaultTotals {
            dropouts: 0,
            stragglers: 1,
            corruptions: 3,
            deadline_cuts: 0,
            quarantined: 2,
        };
        let t = h.fault_totals();
        assert_eq!(t.dropouts, 1);
        assert_eq!(t.stragglers, 3);
        assert_eq!(t.corruptions, 3);
        assert_eq!(t.injected(), 7);
        assert_eq!(t.rejected(), 3);
    }

    #[test]
    fn attacks_sum_over_rounds() {
        let mut h = history(&[0.1, 0.2, 0.3]);
        h.rounds[1].attacks_applied = 2;
        h.rounds[2].attacks_applied = 1;
        assert_eq!(h.total_attacks_applied(), 3);
    }

    #[test]
    fn participation_mask_unions_rounds() {
        let mut h = history(&[0.1, 0.2]);
        h.rounds[0].participants = vec![0, 2];
        h.rounds[1].participants = vec![2, 3];
        assert_eq!(
            h.participation_mask(5),
            vec![true, false, true, true, false]
        );
        // Out-of-range ids are ignored, not a panic.
        assert_eq!(h.participation_mask(1), vec![true]);
    }

    #[test]
    fn empty_history_is_safe() {
        let h = History::default();
        assert_eq!(h.final_accuracy(), 0.0);
        assert_eq!(h.rounds_to_accuracy(0.5), None);
        assert_eq!(h.instability(), 0.0);
        assert_eq!(h.time_to_accuracy(0.5), None);
        assert_eq!(h.total_time(), 0.0);
        assert_eq!(h.total_upload_bytes(), 0);
        assert_eq!(h.total_faults_injected(), 0);
        assert_eq!(h.total_updates_rejected(), 0);
        assert_eq!(h.best_accuracy(), 0.0);
        assert!(h.accuracy_vs_time().is_empty());
    }

    #[test]
    fn target_reached_in_round_zero() {
        let h = history(&[0.9, 0.95, 0.99]);
        assert_eq!(h.rounds_to_accuracy(0.5), Some(1));
        // Fig. 4 charges the first round's straggler time even for an
        // immediate hit.
        assert_eq!(h.time_to_accuracy(0.5), Some(1.0));
    }

    #[test]
    fn target_never_reached() {
        let h = history(&[0.1, 0.2, 0.3]);
        assert_eq!(h.rounds_to_accuracy(0.31), None);
        assert_eq!(h.time_to_accuracy(0.31), None);
        // Boundary: >= means an exact hit counts.
        assert_eq!(h.rounds_to_accuracy(0.3), Some(3));
        assert_eq!(h.time_to_accuracy(0.3), Some(3.0));
    }

    #[test]
    fn non_monotone_curve_uses_first_crossing() {
        // Accuracy crosses the target, dips back under it, and crosses
        // again — both metrics must report the *first* crossing.
        let h = history(&[0.1, 0.6, 0.4, 0.7]);
        assert_eq!(h.rounds_to_accuracy(0.5), Some(2));
        assert_eq!(h.time_to_accuracy(0.5), Some(2.0));
        assert_eq!(h.best_accuracy(), 0.7);
        assert_eq!(h.final_accuracy(), 0.7);
    }
}
