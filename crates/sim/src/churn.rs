//! Client churn traces: deterministic join/leave schedules.
//!
//! A [`ChurnTrace`] is a per-client list of presence toggles — pure
//! data, no randomness — queried by the runner at every round
//! boundary. Presence composes with expulsion: a client is *eligible*
//! only while present **and** not expelled, and an expelled client
//! that "rejoins" through the trace stays expelled (the runner never
//! announces its join to the algorithm). Presence transitions drive
//! the [`taco_core::FederatedAlgorithm::client_joined`] /
//! [`taco_core::FederatedAlgorithm::client_departed`] lifecycle hooks
//! so per-client state (SCAFFOLD variates, FoolsGold histories) is
//! initialized and retired at the right moments.
//!
//! Inertness: a trace with no events leaves every eligible set — and
//! therefore the participation RNG stream and the whole trajectory —
//! byte-identical to a trace-free run (golden-tested).

/// A deterministic join/leave schedule for a fixed client id space.
///
/// Clients default to *present from round 0*; builder calls toggle
/// presence from a given round onward. Client ids are stable for the
/// whole run — a "rejoining" client is the same id (same data shard,
/// same ground-truth behaviour), which is exactly the case expulsion
/// persistence has to survive.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChurnTrace {
    /// Per client: `(round, present)` toggles in push order. Presence
    /// at round `r` is the toggle with the largest round `≤ r`, or
    /// `true` if none.
    events: Vec<Vec<(usize, bool)>>,
}

impl ChurnTrace {
    /// Creates an inert trace for `n_clients` clients (all present,
    /// all rounds).
    pub fn new(n_clients: usize) -> Self {
        ChurnTrace {
            events: vec![Vec::new(); n_clients],
        }
    }

    /// Number of clients the trace covers.
    pub fn num_clients(&self) -> usize {
        self.events.len()
    }

    /// `true` when the trace carries no events (provably no effect on
    /// a run).
    pub fn is_inert(&self) -> bool {
        self.events.iter().all(Vec::is_empty)
    }

    /// Builder: `client` departs at the start of `round` (absent from
    /// `round` onward until a later toggle).
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn departs(mut self, client: usize, round: usize) -> Self {
        self.push(client, round, false);
        self
    }

    /// Builder: `client` (re)joins at the start of `round`.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn joins(mut self, client: usize, round: usize) -> Self {
        self.push(client, round, true);
        self
    }

    /// Builder: `client` is absent until it first joins at `round`
    /// (late arrival).
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range or `round` is 0 (a client
    /// joining at round 0 is simply present; use the default).
    pub fn absent_until(mut self, client: usize, round: usize) -> Self {
        assert!(round > 0, "absent_until(_, 0) is the default presence");
        self.push(client, 0, false);
        self.push(client, round, true);
        self
    }

    fn push(&mut self, client: usize, round: usize, present: bool) {
        assert!(
            client < self.events.len(),
            "client {client} out of range for {} clients",
            self.events.len()
        );
        self.events[client].push((round, present));
    }

    /// Whether `client` is present at `round`.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn present(&self, round: usize, client: usize) -> bool {
        let mut state = true;
        let mut best: Option<usize> = None;
        for &(r, p) in &self.events[client] {
            // Later-round toggles win; equal-round toggles resolve to
            // the last one pushed (builder order).
            let newer = match best {
                None => true,
                Some(b) => r >= b,
            };
            if r <= round && newer {
                best = Some(r);
                state = p;
            }
        }
        state
    }

    /// The present-client mask at `round`.
    pub fn present_mask(&self, round: usize) -> Vec<bool> {
        (0..self.num_clients())
            .map(|c| self.present(round, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_inert_and_all_present() {
        let t = ChurnTrace::new(3);
        assert!(t.is_inert());
        for round in 0..5 {
            assert_eq!(t.present_mask(round), vec![true; 3]);
        }
    }

    #[test]
    fn depart_then_rejoin() {
        let t = ChurnTrace::new(2).departs(1, 2).joins(1, 4);
        assert!(!t.is_inert());
        assert!(t.present(0, 1) && t.present(1, 1));
        assert!(!t.present(2, 1) && !t.present(3, 1));
        assert!(t.present(4, 1) && t.present(9, 1));
        // Client 0 is untouched.
        assert!((0..10).all(|r| t.present(r, 0)));
    }

    #[test]
    fn late_arrival() {
        let t = ChurnTrace::new(2).absent_until(0, 3);
        assert!(!t.present(0, 0) && !t.present(2, 0));
        assert!(t.present(3, 0));
    }

    #[test]
    fn same_round_toggles_resolve_to_last_pushed() {
        let t = ChurnTrace::new(1).departs(0, 2).joins(0, 2);
        assert!(t.present(2, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_client_panics() {
        let _ = ChurnTrace::new(2).departs(5, 1);
    }

    #[test]
    #[should_panic(expected = "default presence")]
    fn absent_until_round_zero_panics() {
        let _ = ChurnTrace::new(2).absent_until(0, 0);
    }
}
