//! Adaptive model-update attacks.
//!
//! Attackers run the *honest* local computation, then transform the
//! resulting `Δ_i` before it leaves the device — at the model-update
//! level, upstream of compression, wire corruption, and validation
//! (contrast [`crate::fault`], whose corruption damages the
//! post-compression payload in transit). The transform is a pure
//! function of `(plan, behaviour, run seed, round, Δ_i)`, applied in
//! client order by the runner before the server pipeline, so attacked
//! trajectories are bit-identical at any `TACO_THREADS` and across
//! `TACO_BACKEND=sequential|sharded`.
//!
//! Inertness: a plan attached to an all-honest behaviour vector never
//! transforms anything and consumes no randomness — trajectories are
//! byte-identical to a plan-free run (golden-tested).

use crate::freeloader::ClientBehavior;
use std::collections::BTreeMap;
use taco_tensor::{ops, Prng};

/// Salt folded into the run seed for coalition-direction derivation,
/// so attack randomness never aliases the training or fault streams.
const COALITION_SALT: u64 = 0xAD5E;

/// Knobs of the model-update attacks. The plan only *parameterizes*
/// the attacks; which clients attack (and how) is the behaviour
/// vector's job ([`crate::runner::SimConfig::with_behaviors`]), which
/// doubles as the detection scoreboard's ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversaryPlan {
    /// First round the attacks activate (a sleeper phase lets
    /// detection baselines stabilize first). Default 0.
    pub start_round: usize,
    /// Sign-flip magnitude `s`: the upload becomes `−s·Δ_i`.
    /// Default 1.0 (norm-preserving, invisible to norm validation).
    pub sign_flip_scale: f32,
    /// Boost factor `b > 1`: the upload becomes `b·Δ_i`. Default 5.0.
    pub boost_factor: f32,
    /// Collusion blend `c ∈ [0, 1]`: the upload becomes
    /// `(1−c)·Δ_i + c·‖Δ_i‖·d̂`, where `d̂` is the coalition's shared
    /// seeded unit direction. At 1.0 the coalition uploads identical
    /// directions; at 0.0 colluders are honest. Default 0.9.
    pub collusion_strength: f32,
}

impl Default for AdversaryPlan {
    fn default() -> Self {
        AdversaryPlan {
            start_round: 0,
            sign_flip_scale: 1.0,
            boost_factor: 5.0,
            collusion_strength: 0.9,
        }
    }
}

impl AdversaryPlan {
    /// Creates the default plan.
    pub fn new() -> Self {
        AdversaryPlan::default()
    }

    /// Builder-style sleeper-phase override.
    pub fn starting_at(mut self, round: usize) -> Self {
        self.start_round = round;
        self
    }

    /// Builder-style sign-flip magnitude override.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn with_sign_flip_scale(mut self, scale: f32) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "sign-flip scale must be positive and finite, got {scale}"
        );
        self.sign_flip_scale = scale;
        self
    }

    /// Builder-style boost-factor override.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn with_boost_factor(mut self, factor: f32) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "boost factor must be positive and finite, got {factor}"
        );
        self.boost_factor = factor;
        self
    }

    /// Builder-style collusion-blend override.
    ///
    /// # Panics
    ///
    /// Panics if `strength` is outside `[0, 1]`.
    pub fn with_collusion_strength(mut self, strength: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&strength),
            "collusion strength must be in [0, 1], got {strength}"
        );
        self.collusion_strength = strength;
        self
    }

    /// Whether attacks are active at `round`.
    pub fn active(&self, round: usize) -> bool {
        round >= self.start_round
    }
}

/// The shared unit direction of a colluding coalition: a pure function
/// of `(run seed, coalition, dim)`, fixed across rounds. A fixed
/// direction is what gives FoolsGold's accumulated-cosine history a
/// real signal — the coalition's summed deltas stay near-parallel
/// while honest clients decorrelate.
pub fn coalition_direction(seed: u64, coalition: u16, dim: usize) -> Vec<f32> {
    let mixed = seed
        ^ COALITION_SALT.wrapping_mul(0x9E3779B97F4A7C15)
        ^ (coalition as u64 + 1).wrapping_mul(0xC2B2AE3D27D4EB4F);
    let mut rng = Prng::seed_from_u64(mixed);
    let mut dir: Vec<f32> = (0..dim).map(|_| rng.normal_f32()).collect();
    let n = ops::norm(&dir);
    if n > 0.0 {
        ops::scale(&mut dir, 1.0 / n);
    } else if let Some(first) = dir.first_mut() {
        // Degenerate draw (practically unreachable): fall back to a
        // fixed axis so the direction is still a unit vector.
        *first = 1.0;
    }
    dir
}

/// Applies `behavior`'s attack to `delta` in place, if any. Returns
/// the stable attack label when a transform was applied (for trace
/// events and counters), `None` for honest clients, freeloaders
/// (whose echo payload is already forged upstream), and rounds before
/// [`AdversaryPlan::start_round`].
///
/// `directions` caches coalition directions per coalition id for the
/// run; entries are derived on first use via [`coalition_direction`].
pub(crate) fn apply(
    plan: &AdversaryPlan,
    behavior: ClientBehavior,
    seed: u64,
    round: usize,
    delta: &mut [f32],
    directions: &mut BTreeMap<u16, Vec<f32>>,
) -> Option<&'static str> {
    if !plan.active(round) {
        return None;
    }
    match behavior {
        ClientBehavior::Honest | ClientBehavior::Freeloader => None,
        ClientBehavior::SignFlip => {
            let s = plan.sign_flip_scale;
            for d in delta.iter_mut() {
                *d *= -s;
            }
            Some("sign_flip")
        }
        ClientBehavior::Boost => {
            ops::scale(delta, plan.boost_factor);
            Some("boost")
        }
        ClientBehavior::Colluder { coalition } => {
            let dir = directions
                .entry(coalition)
                .or_insert_with(|| coalition_direction(seed, coalition, delta.len()));
            let c = plan.collusion_strength;
            let nrm = ops::norm(delta);
            // `(1−c)·Δ + (c·‖Δ‖)·d̂`: roughly norm-preserving (bounded
            // by ‖Δ‖ via the triangle inequality), so it slips under
            // norm validation while steering toward the coalition's
            // common objective.
            for (d, &g) in delta.iter_mut().zip(dir.iter()) {
                *d = (1.0 - c) * *d + c * nrm * g;
            }
            Some("collude")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_to(
        plan: &AdversaryPlan,
        behavior: ClientBehavior,
        round: usize,
        delta: &mut [f32],
    ) -> Option<&'static str> {
        let mut dirs = BTreeMap::new();
        apply(plan, behavior, 7, round, delta, &mut dirs)
    }

    #[test]
    fn honest_and_freeloader_are_untouched() {
        let plan = AdversaryPlan::new();
        let mut d = vec![1.0, -2.0];
        assert_eq!(apply_to(&plan, ClientBehavior::Honest, 0, &mut d), None);
        assert_eq!(apply_to(&plan, ClientBehavior::Freeloader, 0, &mut d), None);
        assert_eq!(d, vec![1.0, -2.0]);
    }

    #[test]
    fn sign_flip_negates_and_preserves_norm() {
        let plan = AdversaryPlan::new();
        let mut d = vec![3.0, -4.0];
        assert_eq!(
            apply_to(&plan, ClientBehavior::SignFlip, 0, &mut d),
            Some("sign_flip")
        );
        assert_eq!(d, vec![-3.0, 4.0]);
    }

    #[test]
    fn boost_scales_by_the_factor() {
        let plan = AdversaryPlan::new().with_boost_factor(10.0);
        let mut d = vec![0.5, -0.5];
        assert_eq!(
            apply_to(&plan, ClientBehavior::Boost, 0, &mut d),
            Some("boost")
        );
        assert_eq!(d, vec![5.0, -5.0]);
    }

    #[test]
    fn sleeper_phase_delays_attacks() {
        let plan = AdversaryPlan::new().starting_at(3);
        let mut d = vec![1.0];
        assert_eq!(apply_to(&plan, ClientBehavior::SignFlip, 2, &mut d), None);
        assert_eq!(d, vec![1.0]);
        assert!(apply_to(&plan, ClientBehavior::SignFlip, 3, &mut d).is_some());
    }

    #[test]
    fn coalition_direction_is_unit_and_deterministic() {
        let a = coalition_direction(11, 0, 64);
        let b = coalition_direction(11, 0, 64);
        let other = coalition_direction(11, 1, 64);
        assert_eq!(a, b);
        assert_ne!(a, other, "coalitions share a direction");
        assert!((ops::norm(&a) - 1.0).abs() < 1e-5);
        assert!((ops::norm(&other) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn colluders_in_one_coalition_align() {
        let plan = AdversaryPlan::new().with_collusion_strength(1.0);
        let mut dirs = BTreeMap::new();
        let mut d1 = vec![1.0, 0.0, 0.0, 2.0];
        let mut d2 = vec![0.0, -1.0, 1.0, 0.0];
        let b = ClientBehavior::Colluder { coalition: 5 };
        assert_eq!(apply(&plan, b, 3, 0, &mut d1, &mut dirs), Some("collude"));
        assert_eq!(apply(&plan, b, 3, 0, &mut d2, &mut dirs), Some("collude"));
        let cos = ops::cosine_with_norms(&d1, &d2, ops::norm(&d1), ops::norm(&d2));
        assert!(cos > 0.999, "full-strength colluders diverge: cos {cos}");
    }

    #[test]
    fn collusion_roughly_preserves_norm() {
        let plan = AdversaryPlan::new().with_collusion_strength(0.9);
        let mut dirs = BTreeMap::new();
        let mut d = vec![0.6; 32];
        let before = ops::norm(&d);
        let b = ClientBehavior::Colluder { coalition: 0 };
        let _ = apply(&plan, b, 9, 0, &mut d, &mut dirs);
        let after = ops::norm(&d);
        assert!(
            after <= before * 1.2 && after >= before * 0.1,
            "collusion distorted norm {before} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "collusion strength")]
    fn bad_collusion_strength_panics() {
        let _ = AdversaryPlan::new().with_collusion_strength(1.5);
    }

    #[test]
    #[should_panic(expected = "boost factor")]
    fn bad_boost_factor_panics() {
        let _ = AdversaryPlan::new().with_boost_factor(0.0);
    }
}
