//! Federated-learning simulation runtime.
//!
//! Drives a parameter-server round loop (Section II of the paper) over
//! any [`taco_core::FederatedAlgorithm`]:
//!
//! - [`runner`] — the [`runner::Simulation`] round loop with optional
//!   parallel client execution (std scoped threads) and
//!   deterministic per-client RNG streams, so results are independent
//!   of thread scheduling. Client-side job execution and the server's
//!   upload pipeline live in private `client`/`server` modules.
//! - [`backend`] — pluggable [`backend::AggregationBackend`]s: the
//!   sequential reference and a lock-striped, double-buffered sharded
//!   parameter-server backend, bit-identical at any shard or thread
//!   count and selected via `TACO_BACKEND`/`TACO_SHARDS` (or
//!   [`runner::SimConfig::with_backend`]).
//! - [`freeloader`] — ground-truth client behaviours: honest clients
//!   train; lazy freeloaders (Section IV-A) re-upload the previous
//!   global update; sign-flippers, boosters, and colluding coalitions
//!   mount the model-update attacks in [`adversary`].
//! - [`adversary`] — seeded, deterministic model-update attacks
//!   applied on the device side of the wire ([`adversary::AdversaryPlan`]).
//! - [`churn`] — deterministic client join/leave schedules
//!   ([`churn::ChurnTrace`]) driving the algorithm lifecycle hooks;
//!   composes with data drift ([`taco_data::partition::DriftSchedule`]).
//! - [`metrics`] — per-round records and the paper's two efficiency
//!   metrics: round-to-accuracy and time-to-accuracy (cumulative
//!   slowest-client compute time, Figs. 2 and 4).
//! - [`fault`] — deterministic, seeded fault injection (dropouts,
//!   stragglers with a synchronous server deadline, wire corruption)
//!   plus server-side update validation/quarantine.
//! - [`detection`] — the detection scoreboard: participation-aware
//!   TPR/FPR scoring (Table VIII) and per-round detection curves with
//!   time-to-detection.
//! - [`cost`] — the analytic per-round compute model used to
//!   cross-check measured timings against each algorithm's
//!   [`taco_core::CostProfile`].
//! - [`comm`] — a communication-time model for studying the paper's
//!   network-dominant regime (Section V-A's discussion).
//!
//! # Example
//!
//! ```no_run
//! use taco_core::{AggWeighting, FedAvg, HyperParams};
//! use taco_data::{partition, vision, FederatedDataset};
//! use taco_nn::Mlp;
//! use taco_sim::runner::{SimConfig, Simulation};
//! use taco_tensor::Prng;
//!
//! let mut rng = Prng::seed_from_u64(7);
//! let spec = vision::VisionSpec::mnist_like().with_sizes(400, 100);
//! let data = vision::generate(&spec, &mut rng);
//! let shards = partition::dirichlet(data.train.labels(), 4, 0.5, &mut rng);
//! let fed = FederatedDataset::from_partition(data.train, data.test, &shards);
//! let model = Mlp::new(784, &[32], 10, &mut rng);
//! let hyper = HyperParams::new(4, 10, 0.01, 32);
//! let config = SimConfig::new(hyper, 5, 7);
//! let history = Simulation::new(fed, Box::new(model), Box::new(FedAvg::default()), config).run();
//! println!("final accuracy {:.1}%", history.final_accuracy() * 100.0);
//! ```

#![deny(missing_docs)]

pub mod adversary;
pub mod backend;
pub mod churn;
mod client;
pub mod comm;
pub mod cost;
pub mod detection;
pub mod fault;
pub mod freeloader;
pub mod metrics;
pub mod phase;
pub mod runner;
mod server;

pub use adversary::AdversaryPlan;
pub use backend::{
    AggregationBackend, BackendChoice, RoundAggregate, SequentialBackend, ShardedBackend,
};
pub use churn::ChurnTrace;
pub use fault::{Corruption, Deadline, FaultKind, FaultPlan, RejectReason, ValidationPolicy};
pub use freeloader::ClientBehavior;
pub use metrics::{FaultTotals, History, RoundRecord};
pub use runner::{Participation, SimConfig, Simulation};
