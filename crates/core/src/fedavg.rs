//! FedAvg (McMahan et al.) — the uncorrected baseline.

use crate::algorithm::{
    fedavg_plan, fedavg_step, AggWeighting, CostProfile, FederatedAlgorithm, UploadStats,
    WeightedCombine,
};
use crate::hyper::HyperParams;
use crate::update::{ClientUpdate, LocalRule};

/// Vanilla federated averaging: plain local SGD, mean aggregation.
///
/// # Example
///
/// ```
/// use taco_core::{AggWeighting, FedAvg, FederatedAlgorithm};
///
/// let alg = FedAvg::new(AggWeighting::Uniform);
/// assert_eq!(alg.name(), "FedAvg");
/// ```
#[derive(Debug, Clone)]
pub struct FedAvg {
    weighting: AggWeighting,
}

impl FedAvg {
    /// Creates FedAvg with the given aggregation weighting.
    pub fn new(weighting: AggWeighting) -> Self {
        FedAvg { weighting }
    }
}

impl Default for FedAvg {
    fn default() -> Self {
        FedAvg::new(AggWeighting::Uniform)
    }
}

impl FederatedAlgorithm for FedAvg {
    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn local_rule(&self, _client: usize, _global: &[f32]) -> LocalRule {
        LocalRule::PlainSgd
    }

    fn aggregate(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        hyper: &HyperParams,
    ) -> Vec<f32> {
        fedavg_step(global, updates, hyper, self.weighting)
    }

    fn plan_aggregation(
        &mut self,
        _global: &[f32],
        updates: &[ClientUpdate],
        _stats: Option<&UploadStats>,
        hyper: &HyperParams,
    ) -> Option<WeightedCombine> {
        Some(fedavg_plan(updates, hyper, self.weighting))
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile {
            grads_per_step: 1,
            extra_vector_ops: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, delta: Vec<f32>) -> ClientUpdate {
        ClientUpdate {
            client,
            delta,
            num_samples: 1,
            final_v: None,
            mean_loss: 0.0,
            grad_evals: 0,
            steps: 1,
            compute_seconds: 0.0,
            encoded: None,
        }
    }

    #[test]
    fn aggregation_is_model_mean_with_default_rates() {
        let mut alg = FedAvg::default();
        let hyper = HyperParams::new(2, 5, 0.2, 4);
        let next = alg.aggregate(
            &[0.0, 0.0],
            &[upd(0, vec![1.0, 0.0]), upd(1, vec![0.0, 1.0])],
            &hyper,
        );
        assert!((next[0] + 0.5).abs() < 1e-6);
        assert!((next[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn local_rule_is_plain_sgd() {
        let alg = FedAvg::default();
        assert_eq!(alg.local_rule(3, &[1.0]), LocalRule::PlainSgd);
        assert!(alg.expelled().is_empty());
        assert!(alg.alphas().is_none());
    }
}
