//! FedNova (Wang et al.) — normalized averaging, an extra
//! aggregation-calibration baseline cited in the paper's related work.
//!
//! Under **system heterogeneity** clients complete different numbers
//! of local steps `τ_i` per round; naively averaging their `Δ_i`
//! implicitly weights fast clients more (their updates are larger),
//! which biases the global objective. FedNova divides each update by
//! its own step count before averaging and rescales by the effective
//! step count, removing the bias:
//!
//! ```text
//! Δ_{t+1} = τ_eff · Σ_i p_i · Δ_i / τ_i,    τ_eff = Σ_i p_i τ_i
//! ```
//!
//! With uniform `τ_i = K` this reduces exactly to FedAvg (tested
//! below), so it slots into every Table V-style comparison unchanged.

use crate::algorithm::{AggWeighting, CostProfile, FederatedAlgorithm};
use crate::hyper::HyperParams;
use crate::update::{ClientUpdate, LocalRule};
use taco_tensor::ops;

/// FedNova: plain local SGD with normalized aggregation.
#[derive(Debug, Clone)]
pub struct FedNova {
    weighting: AggWeighting,
}

impl FedNova {
    /// Creates FedNova with the given base weighting `p_i`.
    pub fn new(weighting: AggWeighting) -> Self {
        FedNova { weighting }
    }
}

impl Default for FedNova {
    fn default() -> Self {
        FedNova::new(AggWeighting::DataSize)
    }
}

impl FederatedAlgorithm for FedNova {
    fn name(&self) -> &'static str {
        "FedNova"
    }

    fn local_rule(&self, _client: usize, _global: &[f32]) -> LocalRule {
        LocalRule::PlainSgd
    }

    fn aggregate(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        hyper: &HyperParams,
    ) -> Vec<f32> {
        assert!(!updates.is_empty(), "aggregate with no updates");
        let weights: Vec<f64> = match self.weighting {
            AggWeighting::Uniform => vec![1.0 / updates.len() as f64; updates.len()],
            AggWeighting::DataSize => {
                let sizes: Vec<f64> = updates.iter().map(|u| u.num_samples as f64).collect();
                let total = ops::sum_f64(&sizes);
                sizes.iter().map(|s| s / total).collect()
            }
        };
        // τ_eff = Σ p_i τ_i; freeloaders report τ = 0 and are treated
        // as single-step contributors so division stays defined.
        let taus: Vec<f64> = updates.iter().map(|u| u.steps.max(1) as f64).collect();
        let tau_eff = ops::dot_f64(&weights, &taus);
        let dim = global.len();
        let mut normalized = vec![0.0f64; dim];
        for ((u, &p), &tau) in updates.iter().zip(&weights).zip(&taus) {
            for (n, &dj) in normalized.iter_mut().zip(&u.delta) {
                *n += p * dj as f64 / tau;
            }
        }
        // Aggregated gradient-scale update: τ_eff Σ p_i Δ_i/τ_i, then
        // the usual 1/η_l normalization (per-step deltas ≈ η_l·grad).
        let agg: Vec<f32> = normalized
            .iter()
            .map(|&x| (tau_eff * x / hyper.eta_l as f64) as f32)
            .collect();
        let mut next = global.to_vec();
        // η_g/K matches fedavg_step's η_g/(K·η_l) scaling given agg is
        // already divided by η_l.
        ops::axpy(&mut next, -hyper.eta_g / hyper.local_steps as f32, &agg);
        next
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile {
            grads_per_step: 1,
            extra_vector_ops: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::fedavg_step;

    fn upd(client: usize, delta: Vec<f32>, n: usize, steps: usize) -> ClientUpdate {
        ClientUpdate {
            client,
            delta,
            num_samples: n,
            final_v: None,
            mean_loss: 0.0,
            grad_evals: steps,
            steps,
            compute_seconds: 0.0,
            encoded: None,
        }
    }

    #[test]
    fn uniform_steps_reduce_to_fedavg() {
        let hyper = HyperParams::new(2, 10, 0.1, 4);
        let global = vec![1.0, -1.0];
        let updates = vec![upd(0, vec![0.2, 0.0], 5, 10), upd(1, vec![0.0, 0.4], 5, 10)];
        let mut nova = FedNova::new(AggWeighting::Uniform);
        let got = nova.aggregate(&global, &updates, &hyper);
        let want = fedavg_step(&global, &updates, &hyper, AggWeighting::Uniform);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    fn heterogeneous_steps_are_normalized() {
        // Client 0 ran 4x the steps of client 1 on the same data
        // gradient; its raw delta is 4x larger, but FedNova's
        // normalized update treats both directions equally.
        let hyper = HyperParams::new(2, 4, 1.0, 4);
        let global = vec![0.0];
        let updates = vec![upd(0, vec![4.0], 1, 4), upd(1, vec![1.0], 1, 1)];
        let mut nova = FedNova::new(AggWeighting::Uniform);
        let next = nova.aggregate(&global, &updates, &hyper);
        // Normalized per-step direction = 1.0 for both; τ_eff = 2.5;
        // agg = 2.5; step = η_g/K · 2.5 = 2.5.
        assert!((next[0] + 2.5).abs() < 1e-5, "got {}", next[0]);
        // FedAvg, by contrast, would average the raw deltas (2.5) and
        // scale by η_g/(K·η_l) = 1 → −2.5 as well here, but with
        // different *direction weighting* when deltas disagree:
        let updates2 = vec![upd(0, vec![4.0, 0.0], 1, 4), upd(1, vec![0.0, 1.0], 1, 1)];
        let mut nova2 = FedNova::new(AggWeighting::Uniform);
        let n2 = nova2.aggregate(&[0.0, 0.0], &updates2, &hyper);
        // FedNova: per-step dirs (1,0) and (0,1) → balanced components.
        assert!((n2[0] - n2[1]).abs() < 1e-5, "unbalanced: {n2:?}");
        let f2 = fedavg_step(&[0.0, 0.0], &updates2, &hyper, AggWeighting::Uniform);
        // FedAvg lets the fast client dominate 4:1.
        assert!(f2[0].abs() > 3.0 * f2[1].abs(), "fedavg not biased? {f2:?}");
    }

    #[test]
    fn zero_step_uploads_are_safe() {
        let hyper = HyperParams::new(2, 4, 0.5, 4);
        let updates = vec![upd(0, vec![1.0], 1, 0), upd(1, vec![1.0], 1, 4)];
        let mut nova = FedNova::default();
        let next = nova.aggregate(&[0.0], &updates, &hyper);
        assert!(next[0].is_finite());
    }
}
