//! Shared hyper-parameters of the federated training loop.

/// The hyper-parameters every algorithm shares (Section V-A of the
/// paper): client count `N`, local steps `K`, local and global learning
/// rates `η_l`, `η_g`, and the mini-batch size `s`.
///
/// The paper's default is `η_g = K · η_l`, which
/// [`HyperParams::new`] applies automatically; use
/// [`HyperParams::with_eta_g`] to override.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperParams {
    /// Number of clients `N` (full participation).
    pub num_clients: usize,
    /// Local update steps per round `K`.
    pub local_steps: usize,
    /// Local learning rate `η_l`.
    pub eta_l: f32,
    /// Global learning rate `η_g`.
    pub eta_g: f32,
    /// Mini-batch size `s`.
    pub batch_size: usize,
}

impl HyperParams {
    /// Creates hyper-parameters with the paper's default
    /// `η_g = K · η_l`.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `eta_l` is not positive/finite.
    pub fn new(num_clients: usize, local_steps: usize, eta_l: f32, batch_size: usize) -> Self {
        assert!(num_clients > 0, "need at least one client");
        assert!(local_steps > 0, "need at least one local step");
        assert!(batch_size > 0, "need a positive batch size");
        assert!(
            eta_l.is_finite() && eta_l > 0.0,
            "eta_l must be positive and finite, got {eta_l}"
        );
        HyperParams {
            num_clients,
            local_steps,
            eta_l,
            eta_g: local_steps as f32 * eta_l,
            batch_size,
        }
    }

    /// Overrides the global learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `eta_g` is not positive/finite.
    pub fn with_eta_g(mut self, eta_g: f32) -> Self {
        assert!(
            eta_g.is_finite() && eta_g > 0.0,
            "eta_g must be positive and finite, got {eta_g}"
        );
        self.eta_g = eta_g;
        self
    }

    /// The product `K · η_l` — the normalizer the paper's aggregation
    /// rules divide by to convert accumulated parameter-space deltas
    /// into gradient-scale updates.
    pub fn k_eta_l(&self) -> f32 {
        self.local_steps as f32 * self.eta_l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_eta_g_is_k_eta_l() {
        let h = HyperParams::new(20, 100, 0.01, 64);
        assert!((h.eta_g - 1.0).abs() < 1e-6);
        assert!((h.k_eta_l() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn override_eta_g() {
        let h = HyperParams::new(4, 10, 0.1, 8).with_eta_g(0.5);
        assert_eq!(h.eta_g, 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_panics() {
        let _ = HyperParams::new(1, 1, 0.1, 0);
    }
}
