//! TACO — Tailored Adaptive Correction (the paper's Algorithm 2).
//!
//! Per round `t`:
//!
//! 1. every client `i` runs `K` local SGD steps with the tailored
//!    correction `v = g + γ(1−α_i^t)Δ_t` (Eq. 8);
//! 2. the server computes the next coefficients `α_i^{t+1}` from the
//!    uploads via Eq. 7 ([`crate::alpha::correction_coefficients`]);
//! 3. the global gradient is the α-weighted aggregate
//!    `Δ_{t+1} = Σ α_i^{t+1} Δ_i^t / (K·η_l·Σ α_i^{t+1})` (Eq. 9) and
//!    `w_{t+1} = w_t − η_g Δ_{t+1}`;
//! 4. clients whose `α_i^{t+1} ≥ κ` collect a strike; after more than
//!    `λ` strikes they are expelled as suspected freeloaders (Eq. 10);
//! 5. the reported model is the extrapolated `z_t` (Eq. 15).
//!
//! TACO needs **no auxiliary uploads**: everything is computed from the
//! `Δ_i^t` the clients send anyway, which is why its per-round client
//! overhead in Table III is "Low".

use crate::algorithm::{
    combine_weighted, CostProfile, FederatedAlgorithm, UploadStats, WeightedCombine,
};
use crate::alpha;
use crate::hyper::HyperParams;
use crate::update::{ClientUpdate, LocalRule};
use taco_tensor::ops;

/// Configuration of [`Taco`] (Algorithm 2's inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TacoConfig {
    /// Maximum correction strength `γ ∈ (0, 1]` of Eq. 8. The paper's
    /// default is `γ = 1/K`.
    pub gamma: f32,
    /// Freeloader suspicion threshold `κ` (Eq. 10); default 0.6.
    pub kappa: f32,
    /// Strikes before expulsion `λ`; the paper's default is `T/5`.
    pub lambda: usize,
    /// Initial coefficient `α_i^0`; the paper initializes to 0.1.
    pub initial_alpha: f32,
    /// Whether freeloader detection is active (Table VIII turns the
    /// thresholds; the accuracy experiments with all-benign clients
    /// leave it on — benign clients rarely trip `κ = 0.6`).
    pub detect_freeloaders: bool,
    /// Ablation toggle (Table VI): when `false`, the local correction
    /// term is dropped (clients run plain SGD).
    pub tailored_correction: bool,
    /// Ablation toggle (Table VI): when `false`, aggregation is the
    /// uniform mean instead of the α-weighted Eq. 9.
    pub tailored_aggregation: bool,
    /// Which variant of Eq. 7 computes the coefficients (the default
    /// is the paper's formula; alternatives back the `ablation_alpha`
    /// bench).
    pub alpha_variant: crate::alpha::AlphaVariant,
    /// Report the extrapolated `z_t` (Eq. 15) as the output model at
    /// **every** evaluation point. Algorithm 2 computes `z_T` once,
    /// after the final round; evaluating the extrapolation every round
    /// adds large evaluation-time variance (each round's `z`
    /// overshoots the current step by `(1 − α_t)`), so this defaults
    /// to `false` and [`Taco::extrapolated`] exposes `z_T` for
    /// end-of-training use.
    pub extrapolated_output: bool,
}

impl TacoConfig {
    /// The paper's default configuration for a run of `rounds` rounds
    /// with `local_steps` local updates per round:
    /// `γ = 1/K`, `κ = 0.6`, `λ = T/5`.
    pub fn paper_default(rounds: usize, local_steps: usize) -> Self {
        TacoConfig {
            gamma: 1.0 / local_steps.max(1) as f32,
            kappa: 0.6,
            lambda: (rounds / 5).max(1),
            initial_alpha: 0.1,
            detect_freeloaders: true,
            tailored_correction: true,
            tailored_aggregation: true,
            alpha_variant: crate::alpha::AlphaVariant::Full,
            extrapolated_output: false,
        }
    }

    /// Builder-style override of Eq. 15 output extrapolation.
    pub fn with_extrapolated_output(mut self, enabled: bool) -> Self {
        self.extrapolated_output = enabled;
        self
    }

    /// Builder-style override of the Eq. 7 variant (ablations).
    pub fn with_alpha_variant(mut self, variant: crate::alpha::AlphaVariant) -> Self {
        self.alpha_variant = variant;
        self
    }

    /// Builder-style override of `γ`.
    pub fn with_gamma(mut self, gamma: f32) -> Self {
        self.gamma = gamma;
        self
    }

    /// Builder-style override of the detection thresholds.
    pub fn with_detection(mut self, kappa: f32, lambda: usize) -> Self {
        self.kappa = kappa;
        self.lambda = lambda;
        self
    }

    /// Builder-style override of the Table VI ablation toggles.
    pub fn with_ablation(mut self, correction: bool, aggregation: bool) -> Self {
        self.tailored_correction = correction;
        self.tailored_aggregation = aggregation;
        self
    }
}

/// The TACO algorithm state.
#[derive(Debug, Clone)]
pub struct Taco {
    config: TacoConfig,
    /// `α_i^t` per client.
    alphas: Vec<f32>,
    /// Global gradient `Δ_t` (gradient units); zero before round 1.
    global_delta: Vec<f32>,
    /// Strike counters for Eq. 10.
    strikes: Vec<usize>,
    /// Expulsion flags.
    expelled: Vec<bool>,
    /// `w_{t−1}` for the `z_t` extrapolation (Eq. 15).
    prev_global: Vec<f32>,
    /// Round-average α history (diagnostics; Definition 2's α_t).
    avg_alpha_history: Vec<f32>,
}

impl Taco {
    /// Creates TACO for `num_clients` clients.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients` is zero, `γ` is outside `(0, 1]` when
    /// correction is enabled, or `κ` is not in `(0, 1]`.
    pub fn new(num_clients: usize, config: TacoConfig) -> Self {
        assert!(num_clients > 0, "need at least one client");
        if config.tailored_correction {
            assert!(
                config.gamma > 0.0 && config.gamma <= 1.0,
                "gamma must be in (0, 1], got {}",
                config.gamma
            );
        }
        assert!(
            config.kappa > 0.0 && config.kappa <= 1.0,
            "kappa must be in (0, 1], got {}",
            config.kappa
        );
        Taco {
            config,
            alphas: vec![config.initial_alpha; num_clients],
            global_delta: Vec::new(),
            strikes: vec![0; num_clients],
            expelled: vec![false; num_clients],
            prev_global: Vec::new(),
            avg_alpha_history: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TacoConfig {
        &self.config
    }

    /// The round-average coefficients `α_t` recorded so far.
    pub fn avg_alpha_history(&self) -> &[f32] {
        &self.avg_alpha_history
    }

    /// Whether client `i` has been expelled.
    pub fn is_expelled(&self, i: usize) -> bool {
        self.expelled[i]
    }

    /// The paper's final model output `z_T` (Eq. 15) for the given
    /// global parameters — Algorithm 2's line 14, intended for one
    /// use after the last round.
    pub fn extrapolated(&self, global: &[f32]) -> Vec<f32> {
        if self.prev_global.len() != global.len() {
            return global.to_vec();
        }
        let avg = self
            .avg_alpha_history
            .last()
            .copied()
            .unwrap_or(self.config.initial_alpha);
        alpha::extrapolated_output(global, &self.prev_global, avg)
    }

    /// Advances the server state for one round (Eq. 7 coefficients,
    /// Eq. 10 strikes, the α history, `w_{t−1}`) and returns the
    /// Eq. 9 combine plan. Shared — statement for statement — by the
    /// sequential [`FederatedAlgorithm::aggregate`] path and the
    /// backend-facing [`FederatedAlgorithm::plan_aggregation`] hook,
    /// which is what keeps the two bit-identical.
    fn make_plan(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        stats: &UploadStats,
        hyper: &HyperParams,
    ) -> WeightedCombine {
        // Eq. 7: next-round coefficients from this round's uploads.
        let new_alphas =
            alpha::coefficients_from_stats(&stats.norms, &stats.cosines, self.config.alpha_variant);
        for (u, &a) in updates.iter().zip(&new_alphas) {
            self.alphas[u.client] = a;
        }
        // Eq. 10: strike clients at or above κ; expel past λ strikes.
        if self.config.detect_freeloaders {
            for (u, &a) in updates.iter().zip(&new_alphas) {
                if a >= self.config.kappa {
                    self.strikes[u.client] += 1;
                    if self.strikes[u.client] > self.config.lambda {
                        self.expelled[u.client] = true;
                    }
                }
            }
        }
        // Eq. 9 (or the uniform-mean ablation).
        let weights: Vec<f32> = if self.config.tailored_aggregation {
            // Clamp for the SignedCosine ablation, whose alphas may be
            // negative; Eq. 9's weights must stay non-negative.
            let clamped: Vec<f32> = new_alphas.iter().map(|a| a.max(0.0)).collect();
            let sum = ops::sum(&clamped);
            if sum > 1e-9 {
                clamped
            } else {
                // Degenerate round (all-zero alphas): fall back to the
                // uniform mean rather than dividing by zero.
                vec![1.0; updates.len()]
            }
        } else {
            vec![1.0; updates.len()]
        };
        self.avg_alpha_history
            .push(alpha::average_alpha(&new_alphas));
        self.prev_global = global.to_vec();
        WeightedCombine {
            weights,
            pre_scale: Some(1.0 / hyper.k_eta_l()),
            step_scale: -hyper.eta_g,
        }
    }
}

impl FederatedAlgorithm for Taco {
    fn name(&self) -> &'static str {
        "TACO"
    }

    fn begin_round(&mut self, _round: usize, global: &[f32]) {
        if self.global_delta.len() != global.len() {
            self.global_delta = vec![0.0; global.len()];
        }
        if self.prev_global.len() != global.len() {
            self.prev_global = global.to_vec();
        }
    }

    fn local_rule(&self, client: usize, _global: &[f32]) -> LocalRule {
        if !self.config.tailored_correction || self.global_delta.is_empty() {
            return LocalRule::PlainSgd;
        }
        let factor = self.config.gamma * (1.0 - self.alphas[client]);
        let term = ops::scaled(&self.global_delta, factor);
        LocalRule::Correction { term }
    }

    fn aggregate(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        hyper: &HyperParams,
    ) -> Vec<f32> {
        assert!(!updates.is_empty(), "aggregate with no updates");
        let _span = taco_trace::quiet_span!("core.aggregate.taco");
        let deltas: Vec<&[f32]> = updates.iter().map(|u| u.delta.as_slice()).collect();
        let stats = UploadStats::compute(&deltas);
        let plan = self.make_plan(global, updates, &stats, hyper);
        let (combined, next) = combine_weighted(global, &deltas, &plan);
        self.commit_aggregation(global, &combined);
        next
    }

    fn wants_upload_stats(&self) -> bool {
        true
    }

    fn plan_aggregation(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        stats: Option<&UploadStats>,
        hyper: &HyperParams,
    ) -> Option<WeightedCombine> {
        let stats = stats?;
        Some(self.make_plan(global, updates, stats, hyper))
    }

    fn commit_aggregation(&mut self, _global: &[f32], combined: &[f32]) {
        // The post-scale aggregate is `Δ_{t+1}` — next round's
        // correction term (Eq. 8) reads it from here.
        self.global_delta = combined.to_vec();
    }

    fn output_params(&self, global: &[f32]) -> Vec<f32> {
        // Eq. 15: z_t = w_t + (1 − α_t)(w_t − w_{t−1}).
        if !self.config.extrapolated_output || self.prev_global.len() != global.len() {
            return global.to_vec();
        }
        let avg = self
            .avg_alpha_history
            .last()
            .copied()
            .unwrap_or(self.config.initial_alpha);
        alpha::extrapolated_output(global, &self.prev_global, avg)
    }

    fn expelled(&self) -> Vec<usize> {
        self.expelled
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(i, _)| i)
            .collect()
    }

    fn client_joined(&mut self, client: usize) {
        // A (re)joining client has no recent uploads, so its stale
        // coefficient would mis-scale the Eq. 8 correction on its
        // first round back; reset to the paper's α_i^0. Strikes and
        // the expulsion flag deliberately persist — an expelled client
        // must never resurrect through churn (the runner never
        // announces joins for expelled clients, but the state stays
        // authoritative regardless).
        if client < self.alphas.len() && !self.expelled[client] {
            self.alphas[client] = self.config.initial_alpha;
        }
    }

    fn report_invalid_update(&mut self, client: usize) {
        // A quarantined upload is at least as suspicious as an echoed
        // one: it counts as an Eq. 10 strike toward expulsion.
        if !self.config.detect_freeloaders || client >= self.strikes.len() {
            return;
        }
        self.strikes[client] += 1;
        if self.strikes[client] > self.config.lambda {
            self.expelled[client] = true;
        }
    }

    fn alphas(&self) -> Option<&[f32]> {
        Some(&self.alphas)
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile {
            grads_per_step: 1,
            extra_vector_ops: 1, // add the precomputed correction term
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, delta: Vec<f32>) -> ClientUpdate {
        ClientUpdate {
            client,
            delta,
            num_samples: 1,
            final_v: None,
            mean_loss: 0.0,
            grad_evals: 0,
            steps: 1,
            compute_seconds: 0.0,
            encoded: None,
        }
    }

    fn cfg() -> TacoConfig {
        TacoConfig::paper_default(50, 10)
    }

    #[test]
    fn paper_default_values() {
        let c = TacoConfig::paper_default(100, 100);
        assert!((c.gamma - 0.01).abs() < 1e-7);
        assert_eq!(c.lambda, 20);
        assert_eq!(c.kappa, 0.6);
        assert_eq!(c.initial_alpha, 0.1);
    }

    #[test]
    fn first_round_is_plain_sgd_then_corrected() {
        let mut alg = Taco::new(2, cfg());
        let hyper = HyperParams::new(2, 10, 0.1, 4);
        assert_eq!(alg.local_rule(0, &[0.0, 0.0]), LocalRule::PlainSgd);
        alg.begin_round(0, &[0.0, 0.0]);
        let _ = alg.aggregate(
            &[0.0, 0.0],
            &[upd(0, vec![1.0, 0.0]), upd(1, vec![0.8, 0.1])],
            &hyper,
        );
        match alg.local_rule(0, &[0.0, 0.0]) {
            LocalRule::Correction { term } => {
                assert_eq!(term.len(), 2);
                assert!(ops::norm(&term) > 0.0);
            }
            other => panic!("unexpected rule {other:?}"),
        }
    }

    #[test]
    fn correction_factor_scales_with_one_minus_alpha() {
        let mut alg = Taco::new(2, cfg());
        let hyper = HyperParams::new(2, 10, 0.1, 4);
        alg.begin_round(0, &[0.0, 0.0]);
        // Client 1 is bigger and more skewed: smaller alpha, larger
        // correction factor.
        let _ = alg.aggregate(
            &[0.0, 0.0],
            &[upd(0, vec![1.0, 0.2]), upd(1, vec![0.3, 3.0])],
            &hyper,
        );
        let a = alg.alphas().unwrap();
        assert!(a[0] > a[1], "alphas {a:?}");
        let t0 = match alg.local_rule(0, &[0.0, 0.0]) {
            LocalRule::Correction { term } => ops::norm(&term),
            _ => unreachable!(),
        };
        let t1 = match alg.local_rule(1, &[0.0, 0.0]) {
            LocalRule::Correction { term } => ops::norm(&term),
            _ => unreachable!(),
        };
        assert!(t1 > t0, "skewed client should get larger correction");
    }

    #[test]
    fn aggregation_prefers_high_alpha_clients() {
        let mut alg = Taco::new(4, cfg());
        let hyper = HyperParams::new(4, 1, 1.0, 1); // K·η_l = 1, η_g = 1
        alg.begin_round(0, &[0.0, 0.0]);
        // Three aligned clients, one orthogonal outlier with large
        // norm: the outlier's low alpha downweights it in Eq. 9.
        let next = alg.aggregate(
            &[0.0, 0.0],
            &[
                upd(0, vec![1.0, 0.05]),
                upd(1, vec![0.9, 0.0]),
                upd(2, vec![1.1, -0.05]),
                upd(3, vec![0.0, -2.0]),
            ],
            &hyper,
        );
        // The aggregate should move mostly along +x (the consensus),
        // much less along the outlier's −y.
        assert!(next[0] < -0.5, "consensus direction lost: {next:?}");
        assert!(next[1].abs() < next[0].abs(), "outlier dominated: {next:?}");
        // And strictly less outlier influence than a uniform mean
        // would have had (uniform mean y-component = −0.5).
        assert!(next[1] < 0.5, "no downweighting vs uniform: {next:?}");
    }

    #[test]
    fn uniform_aggregation_ablation_matches_mean() {
        let mut alg = Taco::new(2, cfg().with_ablation(true, false));
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        alg.begin_round(0, &[0.0]);
        let next = alg.aggregate(&[0.0], &[upd(0, vec![1.0]), upd(1, vec![0.0])], &hyper);
        assert!((next[0] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn no_correction_ablation_keeps_plain_sgd() {
        let mut alg = Taco::new(2, cfg().with_ablation(false, true));
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        alg.begin_round(0, &[0.0]);
        let _ = alg.aggregate(&[0.0], &[upd(0, vec![1.0]), upd(1, vec![0.5])], &hyper);
        assert_eq!(alg.local_rule(0, &[0.0]), LocalRule::PlainSgd);
    }

    #[test]
    fn freeloaders_accumulate_strikes_and_get_expelled() {
        let mut alg = Taco::new(3, cfg().with_detection(0.6, 2));
        let hyper = HyperParams::new(3, 1, 1.0, 1);
        let mut w = vec![0.0f32, 0.0];
        for round in 0..5 {
            alg.begin_round(round, &w);
            // Client 2 echoes the mean direction exactly with modest
            // norm → very high alpha; clients 0, 1 are skewed.
            let updates = vec![
                upd(0, vec![2.0, -0.4]),
                upd(1, vec![-0.4, 2.0]),
                upd(2, vec![0.5, 0.5]),
            ];
            w = alg.aggregate(&w, &updates, &hyper);
        }
        assert_eq!(alg.expelled(), vec![2]);
        assert!(!alg.is_expelled(0));
        assert!(!alg.is_expelled(1));
    }

    #[test]
    fn output_extrapolates_with_z() {
        let mut alg = Taco::new(2, cfg().with_extrapolated_output(true));
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        alg.begin_round(0, &[1.0]);
        let next = alg.aggregate(&[1.0], &[upd(0, vec![0.5]), upd(1, vec![0.5])], &hyper);
        // w moved 1.0 → 0.5; z = w + (1−α_t)(w − w_prev) continues the
        // motion (α_t < 1 here).
        let z = alg.output_params(&next);
        assert!(
            z[0] < next[0],
            "z should extrapolate: {} vs {}",
            z[0],
            next[0]
        );
        // The explicit accessor agrees, and the default (non-
        // extrapolating) config reports w unchanged.
        assert_eq!(alg.extrapolated(&next), z);
        let plain = Taco::new(2, cfg());
        assert_eq!(plain.output_params(&next), next);
    }

    #[test]
    fn alpha_history_is_recorded() {
        let mut alg = Taco::new(2, cfg());
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        alg.begin_round(0, &[0.0]);
        let _ = alg.aggregate(&[0.0], &[upd(0, vec![1.0]), upd(1, vec![0.9])], &hyper);
        assert_eq!(alg.avg_alpha_history().len(), 1);
        let a = alg.avg_alpha_history()[0];
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    #[should_panic(expected = "gamma must be in")]
    fn bad_gamma_panics() {
        let _ = Taco::new(1, cfg().with_gamma(1.5));
    }

    #[test]
    fn invalid_update_reports_accumulate_to_expulsion() {
        let mut alg = Taco::new(3, cfg().with_detection(0.6, 2));
        for _ in 0..2 {
            alg.report_invalid_update(1);
            assert!(alg.expelled().is_empty());
        }
        // Third strike passes λ = 2.
        alg.report_invalid_update(1);
        assert_eq!(alg.expelled(), vec![1]);
        // Out-of-range and detection-off reports are ignored.
        alg.report_invalid_update(99);
        let mut off = Taco::new(
            2,
            TacoConfig {
                detect_freeloaders: false,
                ..cfg().with_detection(0.6, 0)
            },
        );
        for _ in 0..5 {
            off.report_invalid_update(0);
        }
        assert!(off.expelled().is_empty());
    }
}
