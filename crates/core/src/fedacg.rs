//! FedACG (Kim et al.) — accelerated client gradient.

use crate::algorithm::{CostProfile, FederatedAlgorithm};
use crate::hyper::HyperParams;
use crate::update::{ClientUpdate, LocalRule};
use taco_tensor::ops;

/// FedACG: the server maintains a global momentum `m_t`; every client
/// minimizes the look-ahead-regularized loss
/// `f_i(w) + (β/2)‖w − w_t − m_t‖²` (Algorithm 1, line 4), and the
/// server aggregates data-weighted with the momentum folded in
/// (line 10): `Δ_{t+1} = 1/(D·η_l) Σ D_i Δ_i + m_{t+1}/η_g`.
///
/// The paper's Algorithm 1 leaves `m_{t+1}` to the cited FedACG work;
/// per that work the momentum accumulates the aggregated update with a
/// decay factor `λ`: `m_{t+1} = λ·m_t − η_g·Δ̄_t` (parameter units,
/// pointing in the descent direction), and we use the cited default
/// `λ = 0.85`. Both `β` and `λ` are **uniform across clients**, the
/// over-correction pattern the paper targets.
#[derive(Debug, Clone)]
pub struct FedAcg {
    beta: f32,
    momentum_decay: f32,
    /// Global momentum `m_t` in parameter units; empty until sized.
    momentum: Vec<f32>,
}

impl FedAcg {
    /// Creates FedACG with prox strength `β` (the paper's default
    /// configuration uses `β = 0.001`) and the cited momentum decay
    /// `λ = 0.85`.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is negative or not finite.
    pub fn new(beta: f32) -> Self {
        assert!(
            beta.is_finite() && beta >= 0.0,
            "beta must be non-negative and finite, got {beta}"
        );
        FedAcg {
            beta,
            momentum_decay: 0.85,
            momentum: Vec::new(),
        }
    }

    /// Overrides the momentum decay `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `[0, 1)`.
    pub fn with_momentum_decay(mut self, lambda: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&lambda),
            "momentum decay must be in [0, 1), got {lambda}"
        );
        self.momentum_decay = lambda;
        self
    }

    /// The current global momentum (diagnostics).
    pub fn momentum(&self) -> &[f32] {
        &self.momentum
    }

    fn ensure_dim(&mut self, dim: usize) {
        if self.momentum.len() != dim {
            self.momentum = vec![0.0; dim];
        }
    }
}

impl FederatedAlgorithm for FedAcg {
    fn name(&self) -> &'static str {
        "FedACG"
    }

    fn begin_round(&mut self, _round: usize, global: &[f32]) {
        self.ensure_dim(global.len());
    }

    fn local_rule(&self, _client: usize, global: &[f32]) -> LocalRule {
        let anchor = if self.momentum.len() == global.len() {
            // Look-ahead anchor w_t + m_t.
            ops::add(global, &self.momentum)
        } else {
            global.to_vec()
        };
        LocalRule::Prox {
            lambda: self.beta,
            anchor,
        }
    }

    fn aggregate(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        hyper: &HyperParams,
    ) -> Vec<f32> {
        assert!(!updates.is_empty(), "aggregate with no updates");
        self.ensure_dim(global.len());
        // Data-weighted mean of Δ_i, in gradient units.
        let weights: Vec<f32> = updates.iter().map(|u| u.num_samples as f32).collect();
        let deltas: Vec<&[f32]> = updates.iter().map(|u| u.delta.as_slice()).collect();
        let mut agg = ops::weighted_mean(&deltas, &weights);
        ops::scale(&mut agg, 1.0 / hyper.k_eta_l());
        // Heavy-ball momentum in parameter units (the cited FedACG
        // update): m_{t+1} = λ·m_t − η_g·Δ̄_t, w_{t+1} = w_t + m_{t+1}.
        // This is Algorithm 1's line 10 with the momentum folded in
        // exactly once.
        for (m, &a) in self.momentum.iter_mut().zip(&agg) {
            *m = self.momentum_decay * *m - hyper.eta_g * a;
        }
        ops::add(global, &self.momentum)
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile {
            grads_per_step: 1,
            extra_vector_ops: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, delta: Vec<f32>, n: usize) -> ClientUpdate {
        ClientUpdate {
            client,
            delta,
            num_samples: n,
            final_v: None,
            mean_loss: 0.0,
            grad_evals: 0,
            steps: 1,
            compute_seconds: 0.0,
            encoded: None,
        }
    }

    #[test]
    fn anchor_includes_momentum_after_first_round() {
        let mut alg = FedAcg::new(0.001);
        let hyper = HyperParams::new(1, 1, 1.0, 1);
        alg.begin_round(0, &[0.0]);
        let _ = alg.aggregate(&[0.0], &[upd(0, vec![1.0], 1)], &hyper);
        let m = alg.momentum()[0];
        assert!(m != 0.0);
        match alg.local_rule(0, &[5.0]) {
            LocalRule::Prox { anchor, .. } => {
                assert!((anchor[0] - (5.0 + m)).abs() < 1e-6);
            }
            other => panic!("unexpected rule {other:?}"),
        }
    }

    #[test]
    fn momentum_accelerates_repeated_updates() {
        // The same delta every round should move the model further each
        // round as momentum builds.
        let mut alg = FedAcg::new(0.001);
        let hyper = HyperParams::new(1, 1, 1.0, 1);
        let mut w = vec![0.0f32];
        let mut last_step = 0.0f32;
        let mut increasing = true;
        for round in 0..4 {
            alg.begin_round(round, &w);
            let next = alg.aggregate(&w, &[upd(0, vec![1.0], 1)], &hyper);
            let step = (w[0] - next[0]).abs();
            if round > 0 && step <= last_step {
                increasing = false;
            }
            last_step = step;
            w = next;
        }
        assert!(increasing, "momentum failed to accelerate");
    }

    #[test]
    fn data_weighting_is_used() {
        let mut alg = FedAcg::new(0.0);
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        alg.begin_round(0, &[0.0]);
        let next = alg.aggregate(
            &[0.0],
            &[upd(0, vec![1.0], 9), upd(1, vec![0.0], 1)],
            &hyper,
        );
        // Weighted mean Δ̄ = 0.9; m₁ = −η_g·0.9 = −0.9; w = 0 − 0.9.
        assert!((next[0] + 0.9).abs() < 1e-5, "got {}", next[0]);
    }
}
