//! FedProx (Li et al.) — loss-function regularization.

use crate::algorithm::{fedavg_step, AggWeighting, CostProfile, FederatedAlgorithm};
use crate::hyper::HyperParams;
use crate::update::{ClientUpdate, LocalRule};

/// FedProx: each client minimizes
/// `f_i(w) + (ζ/2)‖w − w_t‖²` (Algorithm 1, line 4), which adds the
/// gradient term `ζ(w − w_t)` to every local step. The coefficient
/// `ζ` is **uniform across clients** — the over-correction mechanism
/// the paper analyzes (Section III-B).
#[derive(Debug, Clone)]
pub struct FedProx {
    zeta: f32,
    weighting: AggWeighting,
}

impl FedProx {
    /// Creates FedProx with regularization strength `ζ` (the paper's
    /// default configuration uses `ζ = 0.1`).
    ///
    /// # Panics
    ///
    /// Panics if `zeta` is negative or not finite.
    pub fn new(zeta: f32) -> Self {
        assert!(
            zeta.is_finite() && zeta >= 0.0,
            "zeta must be non-negative and finite, got {zeta}"
        );
        FedProx {
            zeta,
            weighting: AggWeighting::Uniform,
        }
    }

    /// The regularization strength.
    pub fn zeta(&self) -> f32 {
        self.zeta
    }
}

impl FederatedAlgorithm for FedProx {
    fn name(&self) -> &'static str {
        "FedProx"
    }

    fn local_rule(&self, _client: usize, global: &[f32]) -> LocalRule {
        LocalRule::Prox {
            lambda: self.zeta,
            anchor: global.to_vec(),
        }
    }

    fn aggregate(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        hyper: &HyperParams,
    ) -> Vec<f32> {
        fedavg_step(global, updates, hyper, self.weighting)
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile {
            grads_per_step: 1,
            extra_vector_ops: 2, // subtract anchor, axpy into gradient
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_anchors_at_global() {
        let alg = FedProx::new(0.1);
        let rule = alg.local_rule(0, &[1.0, 2.0]);
        match rule {
            LocalRule::Prox { lambda, anchor } => {
                assert_eq!(lambda, 0.1);
                assert_eq!(anchor, vec![1.0, 2.0]);
            }
            other => panic!("unexpected rule {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_zeta_panics() {
        let _ = FedProx::new(-1.0);
    }
}
