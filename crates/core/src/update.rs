//! The client-side local update loop (Algorithm 1 lines 3–8 /
//! Algorithm 2 lines 3–7 of the paper).
//!
//! Every algorithm's local behaviour is expressed as a [`LocalRule`]
//! value interpreted by [`run_local_steps`], so the seven algorithms
//! share one loop and differ only in the effective gradient
//! `v_{i,k}` they apply at each step.

use taco_data::Dataset;
use taco_nn::Model;
use taco_tensor::{ops, Prng};

/// The effective-gradient rule a client applies at each local step.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalRule {
    /// `v = g` — FedAvg, FoolsGold.
    PlainSgd,
    /// `v = g + lambda · (w − anchor)` — the gradient of an L2
    /// proximal term `(λ/2)‖w − anchor‖²`. FedProx uses
    /// `anchor = w_t`; FedACG uses `anchor = w_t + m_t`.
    Prox {
        /// Regularization strength (`ζ` in FedProx, `β` in FedACG).
        lambda: f32,
        /// Proximal anchor point.
        anchor: Vec<f32>,
    },
    /// `v = g + term` — a correction vector held constant across the
    /// round. SCAFFOLD uses `term = α(c_t − c_i^t)`; TACO uses
    /// `term = γ(1−α_i^t)Δ_t` (Eq. 8).
    Correction {
        /// The additive correction vector.
        term: Vec<f32>,
    },
    /// STEM's recursive two-gradient momentum:
    /// `v_{i,k} = g_{i,k} + (1−α)(v_{i,k−1} − ∇f_i(w_{i,k−1}, ξ_{i,k}))`.
    /// Costs **two** gradient evaluations per step, which is the
    /// source of STEM's Table I / Fig. 5 compute overhead.
    StemMomentum {
        /// The momentum mixing coefficient `α_t`.
        alpha: f32,
    },
    /// `v = g + lambda·(w − anchor) + term` — a proximal pull plus a
    /// constant linear correction, the shape of FedDyn's dynamic
    /// regularizer (`term = −h_i^{t−1}`).
    ProxCorrection {
        /// Proximal strength.
        lambda: f32,
        /// Proximal anchor point.
        anchor: Vec<f32>,
        /// Constant additive correction.
        term: Vec<f32>,
    },
}

impl LocalRule {
    /// Gradient evaluations per local step under this rule.
    pub fn grads_per_step(&self) -> usize {
        match self {
            LocalRule::StemMomentum { .. } => 2,
            _ => 1,
        }
    }
}

/// The result of one client's `K` local steps.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalOutcome {
    /// Accumulated local gradient `Δ_i^t = w_{i,0} − w_{i,K}` (Eq. 5),
    /// in parameter units.
    pub delta: Vec<f32>,
    /// STEM's final momentum `v_{i,K−1}` (gradient units); `None` for
    /// other rules.
    pub final_v: Option<Vec<f32>>,
    /// Mean mini-batch loss over the `K` steps.
    pub mean_loss: f32,
    /// Total gradient evaluations performed (cost-model input).
    pub grad_evals: usize,
    /// The number of local SGD steps actually taken (`τ_i`; FedNova's
    /// normalized averaging divides by it under system heterogeneity).
    pub steps: usize,
}

/// What a client uploads to the parameter server after local training.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientUpdate {
    /// The uploading client's id.
    pub client: usize,
    /// Accumulated local gradient `Δ_i^t` (parameter units).
    pub delta: Vec<f32>,
    /// Local dataset size `D_i` (for data-weighted aggregation).
    pub num_samples: usize,
    /// STEM's `v_{i,K−1}` when applicable.
    pub final_v: Option<Vec<f32>>,
    /// Mean local training loss this round.
    pub mean_loss: f32,
    /// Gradient evaluations spent this round.
    pub grad_evals: usize,
    /// Local SGD steps actually taken this round (`τ_i`).
    pub steps: usize,
    /// Measured local compute time in seconds (filled by the
    /// simulator; algorithms must not read it).
    pub compute_seconds: f64,
    /// The wire-format payload when an upload codec is active (`None`
    /// for uncompressed runs). When present, `delta` holds the decoded
    /// lossy vector and the sharded backend folds this encoding
    /// decode-free; validation checks its structural integrity before
    /// trusting the floats.
    pub encoded: Option<crate::compress::EncodedDelta>,
}

impl ClientUpdate {
    /// Builds an update from a client id, dataset size and local
    /// outcome.
    pub fn from_outcome(client: usize, num_samples: usize, outcome: LocalOutcome) -> Self {
        ClientUpdate {
            client,
            delta: outcome.delta,
            num_samples,
            final_v: outcome.final_v,
            mean_loss: outcome.mean_loss,
            grad_evals: outcome.grad_evals,
            steps: outcome.steps,
            compute_seconds: 0.0,
            encoded: None,
        }
    }
}

/// Runs `K` local mini-batch SGD steps under `rule`, starting from the
/// model's current parameters, and returns the accumulated local
/// gradient (Eq. 4–5 of the paper).
///
/// The model is left at the post-training parameters `w_{i,K}`.
///
/// # Panics
///
/// Panics if `steps`, `batch_size` are zero, the dataset is empty, or
/// a rule vector's length differs from the model's parameter count.
pub fn run_local_steps(
    model: &mut dyn Model,
    data: &Dataset,
    rule: &LocalRule,
    steps: usize,
    eta_l: f32,
    batch_size: usize,
    rng: &mut Prng,
) -> LocalOutcome {
    assert!(steps > 0, "need at least one local step");
    let mut w = model.params();
    let dim = w.len();
    if let LocalRule::Prox { anchor, .. } = rule {
        assert_eq!(anchor.len(), dim, "prox anchor length mismatch");
    }
    if let LocalRule::Correction { term } = rule {
        assert_eq!(term.len(), dim, "correction term length mismatch");
    }
    if let LocalRule::ProxCorrection { anchor, term, .. } = rule {
        assert_eq!(anchor.len(), dim, "prox anchor length mismatch");
        assert_eq!(term.len(), dim, "correction term length mismatch");
    }
    let w0 = w.clone();
    let mut loss_sum = 0.0f64;
    let mut grad_evals = 0usize;
    let mut prev_w: Vec<f32> = Vec::new();
    let mut prev_v: Vec<f32> = Vec::new();
    for k in 0..steps {
        let batch = data.sample_batch(batch_size, rng);
        let (loss, g) = model.loss_and_grad(&batch);
        grad_evals += 1;
        loss_sum += loss as f64;
        let v = match rule {
            LocalRule::PlainSgd => g,
            LocalRule::Prox { lambda, anchor } => {
                let mut v = g;
                for i in 0..dim {
                    v[i] += lambda * (w[i] - anchor[i]);
                }
                v
            }
            LocalRule::Correction { term } => {
                let mut v = g;
                ops::axpy(&mut v, 1.0, term);
                v
            }
            LocalRule::ProxCorrection {
                lambda,
                anchor,
                term,
            } => {
                let mut v = g;
                for i in 0..dim {
                    v[i] += lambda * (w[i] - anchor[i]) + term[i];
                }
                v
            }
            LocalRule::StemMomentum { alpha } => {
                if k == 0 {
                    g
                } else {
                    // Second gradient: same batch, previous iterate.
                    model.set_params(&prev_w);
                    let (_, g_prev) = model.loss_and_grad(&batch);
                    model.set_params(&w);
                    grad_evals += 1;
                    let mut v = g;
                    for i in 0..dim {
                        v[i] += (1.0 - alpha) * (prev_v[i] - g_prev[i]);
                    }
                    v
                }
            }
        };
        if matches!(rule, LocalRule::StemMomentum { .. }) {
            prev_w = w.clone();
            prev_v = v.clone();
        }
        ops::axpy(&mut w, -eta_l, &v);
        model.set_params(&w);
    }
    let delta = ops::sub(&w0, &w);
    LocalOutcome {
        delta,
        final_v: if matches!(rule, LocalRule::StemMomentum { .. }) {
            Some(prev_v)
        } else {
            None
        },
        mean_loss: (loss_sum / steps as f64) as f32,
        grad_evals,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_nn::Mlp;

    fn fixture() -> (Mlp, Dataset, Prng) {
        let mut rng = Prng::seed_from_u64(3);
        let model = Mlp::new(4, &[6], 3, &mut rng);
        let n = 30;
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 3;
            for j in 0..4 {
                features.push(c as f32 - 1.0 + 0.3 * rng.normal_f32() + j as f32 * 0.0);
            }
            labels.push(c);
        }
        let data = Dataset::new(features, labels, &[4], 3);
        (model, data, rng)
    }

    #[test]
    fn delta_is_w0_minus_wk() {
        let (mut model, data, mut rng) = fixture();
        let w0 = model.params();
        let out = run_local_steps(
            &mut model,
            &data,
            &LocalRule::PlainSgd,
            5,
            0.05,
            4,
            &mut rng,
        );
        let wk = model.params();
        for i in 0..w0.len() {
            assert!((out.delta[i] - (w0[i] - wk[i])).abs() < 1e-6);
        }
        assert_eq!(out.grad_evals, 5);
        assert!(out.final_v.is_none());
    }

    #[test]
    fn prox_pulls_toward_anchor() {
        let (mut model, data, mut rng) = fixture();
        let anchor = model.params();
        // A huge lambda should keep the iterate glued to the anchor.
        let out = run_local_steps(
            &mut model,
            &data,
            &LocalRule::Prox {
                lambda: 1000.0,
                anchor: anchor.clone(),
            },
            10,
            0.0005,
            4,
            &mut rng,
        );
        let free_drift = {
            let (mut m2, data, mut rng) = fixture();
            let o = run_local_steps(
                &mut m2,
                &data,
                &LocalRule::PlainSgd,
                10,
                0.0005,
                4,
                &mut rng,
            );
            ops::norm(&o.delta)
        };
        assert!(
            ops::norm(&out.delta) < free_drift,
            "prox did not restrain drift"
        );
    }

    #[test]
    fn correction_term_steers_update() {
        let (mut model, data, mut rng) = fixture();
        let dim = model.param_count();
        // A large constant correction dominates the tiny gradient of a
        // 1-step run; Δ should align with it.
        let term = vec![10.0f32; dim];
        let out = run_local_steps(
            &mut model,
            &data,
            &LocalRule::Correction { term: term.clone() },
            1,
            0.01,
            4,
            &mut rng,
        );
        let cos = ops::cosine_similarity(&out.delta, &term);
        assert!(cos > 0.99, "delta not aligned with correction: cos {cos}");
    }

    #[test]
    fn stem_costs_two_grads_per_step_after_first() {
        let (mut model, data, mut rng) = fixture();
        let out = run_local_steps(
            &mut model,
            &data,
            &LocalRule::StemMomentum { alpha: 0.2 },
            5,
            0.05,
            4,
            &mut rng,
        );
        assert_eq!(out.grad_evals, 5 + 4);
        assert!(out.final_v.is_some());
        assert_eq!(out.final_v.as_ref().map(Vec::len), Some(out.delta.len()));
    }

    #[test]
    fn stem_with_alpha_one_matches_sgd() {
        // α = 1 kills the momentum term, so STEM degenerates to SGD
        // (same batches via the same seed).
        let (mut m1, data, mut r1) = fixture();
        let o1 = run_local_steps(
            &mut m1,
            &data,
            &LocalRule::StemMomentum { alpha: 1.0 },
            4,
            0.05,
            4,
            &mut r1,
        );
        let (mut m2, data2, mut r2) = fixture();
        let o2 = run_local_steps(&mut m2, &data2, &LocalRule::PlainSgd, 4, 0.05, 4, &mut r2);
        for (a, b) in o1.delta.iter().zip(&o2.delta) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn training_reduces_loss() {
        let (mut model, data, mut rng) = fixture();
        let eval = data.eval_batches(16);
        let (l0, _) = taco_nn::evaluate(&mut model, &eval);
        let _ = run_local_steps(
            &mut model,
            &data,
            &LocalRule::PlainSgd,
            60,
            0.1,
            8,
            &mut rng,
        );
        let (l1, _) = taco_nn::evaluate(&mut model, &eval);
        assert!(l1 < l0, "local SGD failed to learn: {l0} -> {l1}");
    }

    #[test]
    fn grads_per_step_profile() {
        assert_eq!(LocalRule::PlainSgd.grads_per_step(), 1);
        assert_eq!(LocalRule::StemMomentum { alpha: 0.1 }.grads_per_step(), 2);
    }

    #[test]
    #[should_panic(expected = "anchor length mismatch")]
    fn bad_anchor_length_panics() {
        let (mut model, data, mut rng) = fixture();
        let _ = run_local_steps(
            &mut model,
            &data,
            &LocalRule::Prox {
                lambda: 0.1,
                anchor: vec![0.0; 3],
            },
            1,
            0.1,
            2,
            &mut rng,
        );
    }
}
