//! The server-side algorithm trait.

use crate::hyper::HyperParams;
use crate::update::{ClientUpdate, LocalRule};

/// How aggregation weights `p_i` are chosen in Eq. 6 when the
/// algorithm itself does not prescribe them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggWeighting {
    /// `p_i = 1/N`.
    Uniform,
    /// `p_i = D_i / D`.
    DataSize,
}

/// Server-side statistics of a round's accepted uploads, computed once
/// and shared between the coefficient math (Eq. 7) and any diagnostics.
///
/// The fields are defined *operationally* — each one names the exact
/// `taco_tensor::ops` call that produces it — because aggregation
/// backends may compute them with different parallel decompositions
/// (dimension-sharded mean, client-parallel norms/cosines) and the
/// bit-identity contract between backends holds only if every path
/// reproduces these operations exactly. [`UploadStats::compute`] is the
/// sequential reference.
#[derive(Debug, Clone, PartialEq)]
pub struct UploadStats {
    /// The unweighted mean delta `Δ̄` — `taco_tensor::ops::mean_of`
    /// over the uploads' deltas in client order.
    pub mean_delta: Vec<f32>,
    /// Per-upload L2 norms `‖Δ_i‖` — `taco_tensor::ops::norm`, one
    /// whole-vector reduction per upload, in client order.
    pub norms: Vec<f32>,
    /// Per-upload cosines `cos(Δ_i, Δ̄)` —
    /// `taco_tensor::ops::cosine_similarity` against `mean_delta`.
    pub cosines: Vec<f32>,
}

impl UploadStats {
    /// Computes the statistics sequentially (the reference
    /// implementation every backend must match bit for bit).
    ///
    /// # Panics
    ///
    /// Panics if `deltas` is empty or lengths are inconsistent.
    pub fn compute(deltas: &[&[f32]]) -> Self {
        let mean_delta = taco_tensor::ops::mean_of(deltas);
        let norms: Vec<f32> = deltas.iter().map(|d| taco_tensor::ops::norm(d)).collect();
        // `cosine_with_norms` reuses the norms already in hand (and the
        // mean's norm, computed once) — bit-identical to
        // `cosine_similarity(d, mean_delta)` per upload, minus two
        // redundant whole-vector passes per upload.
        let mean_norm = taco_tensor::ops::norm(&mean_delta);
        let cosines: Vec<f32> = deltas
            .iter()
            .zip(&norms)
            .map(|(d, &n)| taco_tensor::ops::cosine_with_norms(d, &mean_delta, n, mean_norm))
            .collect();
        UploadStats {
            mean_delta,
            norms,
            cosines,
        }
    }
}

/// A declarative aggregation plan: how this round's deltas combine into
/// the gradient step. Produced by
/// [`FederatedAlgorithm::plan_aggregation`]; executed by
/// [`combine_weighted`] (sequentially) or shard-wise by a sharded
/// backend — both must yield bit-identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedCombine {
    /// Aggregation weights `p_i`, one per accepted upload in client
    /// order. Must sum to a positive finite value.
    pub weights: Vec<f32>,
    /// Optional in-place scale applied to the weighted mean *before*
    /// the step (TACO's `1 / (K·η_l)` normalization). `None` skips the
    /// pass entirely — `Some(1.0)` would still be bit-identical, but
    /// the plan mirrors the sequential code path op for op.
    pub pre_scale: Option<f32>,
    /// Coefficient of the final `w_{t+1} = w_t + step_scale · Δ` AXPY
    /// (negative for descent).
    pub step_scale: f32,
}

/// Executes a [`WeightedCombine`] plan sequentially: weighted mean →
/// optional pre-scale → AXPY step. Returns `(combined, next_global)`
/// where `combined` is the post-scale aggregate (what TACO stores as
/// `Δ_{t+1}`) and `next_global` the stepped parameters.
///
/// # Panics
///
/// Panics if `deltas` is empty, lengths are inconsistent, or the plan's
/// weights do not sum to a positive finite value.
pub fn combine_weighted(
    global: &[f32],
    deltas: &[&[f32]],
    plan: &WeightedCombine,
) -> (Vec<f32>, Vec<f32>) {
    let mut combined = taco_tensor::ops::weighted_mean(deltas, &plan.weights);
    if let Some(s) = plan.pre_scale {
        taco_tensor::ops::scale(&mut combined, s);
    }
    let mut next = global.to_vec();
    taco_tensor::ops::axpy(&mut next, plan.step_scale, &combined);
    (combined, next)
}

/// Static per-step compute profile of an algorithm, used by the
/// simulator's analytic cost model (Table I / Table III / Fig. 5
/// report the *measured* numbers; the profile lets the harness verify
/// the measured ratios against the arithmetic the paper describes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfile {
    /// Gradient evaluations per local step (2 for STEM).
    pub grads_per_step: usize,
    /// Parameter-length vector operations added per local step on top
    /// of the SGD update (prox pull, correction add, ...).
    pub extra_vector_ops: usize,
}

/// A federated-learning algorithm's server logic.
///
/// The simulation runtime drives one round as:
///
/// 1. [`FederatedAlgorithm::begin_round`] with the current global
///    parameters;
/// 2. [`FederatedAlgorithm::local_rule`] for every participating
///    client, whose result is interpreted by
///    [`crate::update::run_local_steps`] on the client's model/shard;
/// 3. [`FederatedAlgorithm::aggregate`] with all uploads, returning
///    the next global parameter vector.
///
/// Implementations hold whatever cross-round state they need (control
/// variates, momenta, correction coefficients).
pub trait FederatedAlgorithm: Send {
    /// The algorithm's display name (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// Called at the start of round `t` with the global parameters.
    /// Default: no-op.
    fn begin_round(&mut self, _round: usize, _global: &[f32]) {}

    /// The local-update rule client `client` must follow this round.
    fn local_rule(&self, client: usize, global: &[f32]) -> LocalRule;

    /// Aggregates the round's uploads and returns the next global
    /// parameter vector.
    fn aggregate(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        hyper: &HyperParams,
    ) -> Vec<f32>;

    /// Whether [`FederatedAlgorithm::plan_aggregation`] needs
    /// [`UploadStats`] for this algorithm (TACO's Eq. 7 coefficients
    /// do; FedAvg's data-size weights do not). Backends that compute
    /// statistics incrementally use this to skip the work entirely.
    fn wants_upload_stats(&self) -> bool {
        false
    }

    /// Decomposes this round's aggregation into a declarative
    /// [`WeightedCombine`] plan, advancing any cross-round state
    /// (coefficients, strikes, histories) exactly as
    /// [`FederatedAlgorithm::aggregate`] would. Backends that execute
    /// the combine themselves (shard-wise, out of order in memory but
    /// order-fixed per dimension) call this instead of `aggregate`,
    /// then [`FederatedAlgorithm::commit_aggregation`] with the result.
    ///
    /// `stats` is `Some` iff [`FederatedAlgorithm::wants_upload_stats`]
    /// returned `true`. The default returns `None`, meaning the
    /// algorithm does not support planned aggregation and backends must
    /// fall back to calling [`FederatedAlgorithm::aggregate`].
    fn plan_aggregation(
        &mut self,
        _global: &[f32],
        _updates: &[ClientUpdate],
        _stats: Option<&UploadStats>,
        _hyper: &HyperParams,
    ) -> Option<WeightedCombine> {
        None
    }

    /// Called after a planned combine has been executed, with the
    /// post-`pre_scale` aggregate (`combined`), so the algorithm can
    /// store it (TACO keeps it as `Δ_{t+1}` for next round's
    /// correction terms). Default: no-op.
    fn commit_aggregation(&mut self, _global: &[f32], _combined: &[f32]) {}

    /// The parameters to evaluate/report (TACO reports `z_t`, Eq. 15;
    /// everyone else reports `w_t`).
    fn output_params(&self, global: &[f32]) -> Vec<f32> {
        global.to_vec()
    }

    /// Clients expelled so far by freeloader detection (TACO only).
    fn expelled(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Clients the algorithm currently *suspects* of malicious
    /// behaviour, whether or not it has acted on the suspicion.
    /// Expulsion-based detectors (TACO's Eq. 10) suspect exactly the
    /// expelled set — the default; similarity-based detectors
    /// (FoolsGold's cosine history) can flag clients they merely
    /// downweight. The simulation records this set every round, which
    /// is what the detection scoreboard's TPR/FPR curves are built on.
    fn suspected(&self) -> Vec<usize> {
        self.expelled()
    }

    /// Called when `client` joins (or rejoins) the federation via a
    /// churn trace. Implementations must (re)initialize any per-client
    /// state as for a fresh client; the runner never announces a join
    /// for an expelled client. Default: no-op.
    fn client_joined(&mut self, _client: usize) {}

    /// Called when `client` leaves the federation via a churn trace.
    /// Implementations must retire (drop) any per-client vector state
    /// so long-running open-participation federations don't leak
    /// memory for departed clients. Default: no-op.
    fn client_departed(&mut self, _client: usize) {}

    /// Number of clients for which the algorithm currently holds
    /// materialized per-client *vector* state (SCAFFOLD control
    /// variates, FoolsGold delta histories). A peak-RSS-adjacent probe:
    /// tests assert it shrinks when clients depart. Algorithms with
    /// only O(1) scalar per-client state (TACO's α/strikes) report 0.
    fn tracked_client_states(&self) -> usize {
        0
    }

    /// Server-side evidence that `client` uploaded an invalid update
    /// (non-finite or norm-exploded delta) which was quarantined
    /// before aggregation. Detection-capable algorithms treat this
    /// like a freeloader strike; the default is a no-op.
    fn report_invalid_update(&mut self, _client: usize) {}

    /// The current per-client correction coefficients `α_i^t`, if the
    /// algorithm computes them (TACO and the tailored hybrids).
    fn alphas(&self) -> Option<&[f32]> {
        None
    }

    /// Whether clients must upload their final momentum buffer `v_i`
    /// alongside `Δ_i` (STEM-style algorithms). Lets the runner size
    /// freeloader payloads without probing `local_rule` before
    /// `begin_round` has seen the first round.
    fn uploads_momentum(&self) -> bool {
        false
    }

    /// The algorithm's static per-step compute profile.
    fn cost_profile(&self) -> CostProfile {
        CostProfile {
            grads_per_step: 1,
            extra_vector_ops: 0,
        }
    }
}

/// Computes the FedAvg-style aggregated gradient
/// `Δ_{t+1} = Σ p_i Δ_i / (K·η_l)` and applies
/// `w_{t+1} = w_t − η_g Δ_{t+1}` (Eq. 6 with the paper's
/// normalization).
///
/// # Panics
///
/// Panics if `updates` is empty or delta lengths differ from `global`.
pub fn fedavg_step(
    global: &[f32],
    updates: &[ClientUpdate],
    hyper: &HyperParams,
    weighting: AggWeighting,
) -> Vec<f32> {
    assert!(!updates.is_empty(), "aggregate with no updates");
    let plan = fedavg_plan(updates, hyper, weighting);
    let deltas: Vec<&[f32]> = updates.iter().map(|u| u.delta.as_slice()).collect();
    combine_weighted(global, &deltas, &plan).1
}

/// The [`WeightedCombine`] plan behind [`fedavg_step`]: `p_i` per the
/// weighting rule, no pre-scale, step `−(η_g / (K·η_l))`.
pub fn fedavg_plan(
    updates: &[ClientUpdate],
    hyper: &HyperParams,
    weighting: AggWeighting,
) -> WeightedCombine {
    let weights: Vec<f32> = match weighting {
        AggWeighting::Uniform => vec![1.0; updates.len()],
        AggWeighting::DataSize => updates.iter().map(|u| u.num_samples as f32).collect(),
    };
    WeightedCombine {
        weights,
        pre_scale: None,
        step_scale: -(hyper.eta_g / hyper.k_eta_l()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, delta: Vec<f32>, n: usize) -> ClientUpdate {
        ClientUpdate {
            client,
            delta,
            num_samples: n,
            final_v: None,
            mean_loss: 0.0,
            grad_evals: 0,
            steps: 1,
            compute_seconds: 0.0,
            encoded: None,
        }
    }

    #[test]
    fn fedavg_step_with_default_eta_g_averages_models() {
        // With η_g = K·η_l, w' = w − mean(Δ_i), i.e. the average of the
        // client models (w − Δ_i).
        let hyper = HyperParams::new(2, 10, 0.1, 4);
        let global = vec![1.0, 1.0];
        let updates = vec![upd(0, vec![0.2, 0.0], 5), upd(1, vec![0.0, 0.4], 5)];
        let next = fedavg_step(&global, &updates, &hyper, AggWeighting::Uniform);
        assert!((next[0] - 0.9).abs() < 1e-6);
        assert!((next[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn data_weighting_prefers_large_clients() {
        let hyper = HyperParams::new(2, 1, 1.0, 4);
        let global = vec![0.0];
        let updates = vec![upd(0, vec![1.0], 9), upd(1, vec![0.0], 1)];
        let next = fedavg_step(&global, &updates, &hyper, AggWeighting::DataSize);
        assert!((next[0] + 0.9).abs() < 1e-6, "got {}", next[0]);
    }

    #[test]
    #[should_panic(expected = "no updates")]
    fn empty_updates_panic() {
        let hyper = HyperParams::new(1, 1, 1.0, 1);
        let _ = fedavg_step(&[0.0], &[], &hyper, AggWeighting::Uniform);
    }
}
