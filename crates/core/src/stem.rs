//! STEM (Khanduri et al.) — stochastic two-sided momentum.

use crate::algorithm::{CostProfile, FederatedAlgorithm};
use crate::hyper::HyperParams;
use crate::update::{ClientUpdate, LocalRule};
use taco_tensor::ops;

/// STEM: clients run the variance-reduced momentum recursion
/// `v_{i,k} = g_{i,k} + (1−α_t)(v_{i,k−1} − ∇f_i(w_{i,k−1}, ξ_{i,k}))`
/// (Algorithm 1, line 6), which requires **two gradient evaluations
/// per local step** — the compute overhead the paper measures in
/// Table I (+40.9% on FMNIST) and Figs. 4–5. The server adds the
/// uploaded final momenta into the aggregate (line 10):
/// `Δ_{t+1} = 1/(K·N·η_l) Σ (Δ_i + v_{i,K−1})`.
#[derive(Debug, Clone)]
pub struct Stem {
    alpha0: f32,
    decay: bool,
    current_alpha: f32,
}

impl Stem {
    /// Creates STEM with initial momentum coefficient `α_0` (the paper
    /// tunes `α_t ∈ {0.05, 0.1, 0.2}` and defaults to 0.2).
    ///
    /// # Panics
    ///
    /// Panics if `alpha0` is outside `[0, 1]`.
    pub fn new(alpha0: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha0),
            "alpha0 must be in [0, 1], got {alpha0}"
        );
        Stem {
            alpha0,
            decay: true,
            current_alpha: alpha0,
        }
    }

    /// Disables the `α_t = α_0 / (t+1)^{1/3}`-style decay (keeps
    /// `α_t = α_0` for every round).
    pub fn without_decay(mut self) -> Self {
        self.decay = false;
        self.current_alpha = self.alpha0;
        self
    }

    /// The coefficient in effect for the current round.
    pub fn current_alpha(&self) -> f32 {
        self.current_alpha
    }
}

impl FederatedAlgorithm for Stem {
    fn name(&self) -> &'static str {
        "STEM"
    }

    fn begin_round(&mut self, round: usize, _global: &[f32]) {
        self.current_alpha = if self.decay {
            // The STEM paper's step-size/momentum schedule decays as
            // t^{-1/3}; we keep α_t from collapsing entirely so late
            // rounds still average fresh gradients.
            (self.alpha0 / ((round + 1) as f32).powf(1.0 / 3.0)).max(0.01)
        } else {
            self.alpha0
        };
    }

    fn local_rule(&self, _client: usize, _global: &[f32]) -> LocalRule {
        LocalRule::StemMomentum {
            alpha: self.current_alpha,
        }
    }

    fn uploads_momentum(&self) -> bool {
        true
    }

    fn aggregate(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        hyper: &HyperParams,
    ) -> Vec<f32> {
        assert!(!updates.is_empty(), "aggregate with no updates");
        let _span = taco_trace::quiet_span!("core.aggregate.stem");
        let dim = global.len();
        let mut acc = vec![0.0f64; dim];
        for u in updates {
            let v = u
                .final_v
                .as_ref()
                // taco-check: allow(unwrap, uploads_momentum() makes the runner record final_v for every STEM client; absence is a harness bug worth a loud panic)
                .expect("STEM update missing final momentum");
            for j in 0..dim {
                acc[j] += (u.delta[j] + v[j]) as f64;
            }
        }
        let scale = 1.0 / (hyper.k_eta_l() as f64 * updates.len() as f64);
        let agg: Vec<f32> = acc.iter().map(|&x| (x * scale) as f32).collect();
        let mut next = global.to_vec();
        ops::axpy(&mut next, -hyper.eta_g, &agg);
        next
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile {
            grads_per_step: 2,
            extra_vector_ops: 2, // momentum combine + bookkeeping
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, delta: Vec<f32>, v: Vec<f32>) -> ClientUpdate {
        ClientUpdate {
            client,
            delta,
            num_samples: 1,
            final_v: Some(v),
            mean_loss: 0.0,
            grad_evals: 0,
            steps: 1,
            compute_seconds: 0.0,
            encoded: None,
        }
    }

    #[test]
    fn alpha_decays_over_rounds() {
        let mut alg = Stem::new(0.2);
        alg.begin_round(0, &[]);
        let a0 = alg.current_alpha();
        alg.begin_round(7, &[]);
        let a7 = alg.current_alpha();
        assert!(a7 < a0, "alpha did not decay: {a0} -> {a7}");
        assert_eq!(a0, 0.2);
    }

    #[test]
    fn without_decay_keeps_alpha() {
        let mut alg = Stem::new(0.1).without_decay();
        alg.begin_round(50, &[]);
        assert_eq!(alg.current_alpha(), 0.1);
    }

    #[test]
    fn aggregate_adds_momenta() {
        let mut alg = Stem::new(0.2);
        // K·η_l = 1, η_g = 1.
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        let next = alg.aggregate(
            &[0.0],
            &[upd(0, vec![1.0], vec![0.5]), upd(1, vec![1.0], vec![-0.5])],
            &hyper,
        );
        // mean(Δ_i + v_i) = mean(1.5, 0.5) = 1.0.
        assert!((next[0] + 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "missing final momentum")]
    fn missing_momentum_panics() {
        let mut alg = Stem::new(0.2);
        let hyper = HyperParams::new(1, 1, 1.0, 1);
        let u = ClientUpdate {
            client: 0,
            delta: vec![1.0],
            num_samples: 1,
            final_v: None,
            mean_loss: 0.0,
            grad_evals: 0,
            steps: 1,
            compute_seconds: 0.0,
            encoded: None,
        };
        let _ = alg.aggregate(&[0.0], &[u], &hyper);
    }
}
