//! The tailored correction coefficient `α_i^t` (Eq. 7 of the paper).
//!
//! ```text
//! α_i^t = (1 − ‖Δ_i‖ / Σ_j ‖Δ_j‖) · max{ cos(Δ_i, Δ̄), 0 }
//! ```
//!
//! where `Δ̄ = Σ_j Δ_j / N` is the unweighted mean of the previous
//! round's accumulated local gradients. The first factor shrinks the
//! coefficient (⇒ grows the correction factor `1 − α_i^t`) for clients
//! with large local updates; the second shrinks it for clients whose
//! update direction disagrees with the federation — exactly the two
//! knobs Corollary 2 says the optimal correction factor must be
//! proportional to (`μ_i / c_i`).

use taco_tensor::ops;

/// Design variants of Eq. 7, used by the `ablation_alpha` bench to
/// justify the two factors (DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlphaVariant {
    /// The paper's Eq. 7: magnitude factor × clamped cosine.
    #[default]
    Full,
    /// Signed cosine (no `max{·, 0}` clamp): opposed clients keep a
    /// negative coefficient instead of zero.
    SignedCosine,
    /// Uniform magnitude factor `1 − 1/N` (direction term only).
    NoMagnitude,
    /// Magnitude factor only (no direction term).
    NoDirection,
}

/// [`correction_coefficients`] generalized over [`AlphaVariant`].
///
/// For [`AlphaVariant::Full`] this is exactly Eq. 7. Outputs are
/// clamped to `[0, 1]` except for `SignedCosine`, whose range is
/// `[−1, 1]`.
///
/// # Panics
///
/// Panics if `deltas` is empty or lengths are inconsistent.
pub fn correction_coefficients_variant(deltas: &[&[f32]], variant: AlphaVariant) -> Vec<f32> {
    assert!(!deltas.is_empty(), "no deltas to compute alpha from");
    let dim = deltas[0].len();
    for d in deltas {
        assert_eq!(d.len(), dim, "delta length mismatch");
    }
    let mean = ops::mean_of(deltas);
    let norms: Vec<f32> = deltas.iter().map(|d| ops::norm(d)).collect();
    let cosines: Vec<f32> = deltas
        .iter()
        .map(|d| ops::cosine_similarity(d, &mean))
        .collect();
    coefficients_from_stats(&norms, &cosines, variant)
}

/// Eq. 7 from precomputed per-upload statistics: the norm `‖Δ_i‖` and
/// the cosine `cos(Δ_i, Δ̄)` of every delta against the unweighted
/// mean. This is the scalar half of
/// [`correction_coefficients_variant`] — aggregation backends that
/// already hold the statistics (e.g. [`crate::UploadStats`]) call it
/// directly, and both paths are bit-identical because each output
/// depends only on its own norm/cosine and the order-fixed `norm_sum`.
///
/// # Panics
///
/// Panics if `norms` is empty or the slices differ in length.
pub fn coefficients_from_stats(norms: &[f32], cosines: &[f32], variant: AlphaVariant) -> Vec<f32> {
    assert!(!norms.is_empty(), "no deltas to compute alpha from");
    assert_eq!(norms.len(), cosines.len(), "stats length mismatch");
    let norm_sum = ops::sum(norms);
    let n = norms.len() as f32;
    norms
        .iter()
        .zip(cosines)
        .map(|(&nm, &cos)| {
            let magnitude = match variant {
                AlphaVariant::NoMagnitude => 1.0 - 1.0 / n,
                _ if norm_sum > 1e-12 => (1.0 - nm / norm_sum).clamp(0.0, 1.0),
                _ => 0.0,
            };
            let direction = match variant {
                AlphaVariant::SignedCosine => cos,
                AlphaVariant::NoDirection => 1.0,
                _ => cos.max(0.0),
            };
            magnitude * direction
        })
        .collect()
}

/// Computes `α_i^{t+1}` for every uploading client from the round's
/// accumulated local gradients.
///
/// Returns one coefficient per input delta, each in `[0, 1]`.
///
/// Degenerate cases follow the paper's initialization logic: if all
/// deltas (or the mean) are zero — which only happens before any real
/// training step — every coefficient is `0`, which the caller should
/// have replaced by the `α_i^0 = 0.1` initialization anyway.
///
/// # Panics
///
/// Panics if `deltas` is empty or lengths are inconsistent.
pub fn correction_coefficients(deltas: &[&[f32]]) -> Vec<f32> {
    correction_coefficients_variant(deltas, AlphaVariant::Full)
}

/// The round-average coefficient `α_t = Σ_i α_i^t / N` (Definition 2).
pub fn average_alpha(alphas: &[f32]) -> f32 {
    if alphas.is_empty() {
        0.0
    } else {
        ops::sum(alphas) / alphas.len() as f32
    }
}

/// The paper's model-output extrapolation (Eq. 15):
/// `z_t = w_t + (1 − α_t)(w_t − w_{t−1})`.
///
/// # Panics
///
/// Panics if the two parameter vectors differ in length.
pub fn extrapolated_output(w_t: &[f32], w_prev: &[f32], avg_alpha: f32) -> Vec<f32> {
    assert_eq!(w_t.len(), w_prev.len(), "parameter length mismatch");
    let c = 1.0 - avg_alpha;
    w_t.iter()
        .zip(w_prev)
        .map(|(&wt, &wp)| wt + c * (wt - wp))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphas_are_in_unit_interval() {
        let d1 = vec![1.0f32, 0.5, -0.2];
        let d2 = vec![0.8f32, 0.6, 0.0];
        let d3 = vec![-0.5f32, 2.0, 1.0];
        let a = correction_coefficients(&[&d1, &d2, &d3]);
        assert_eq!(a.len(), 3);
        for &x in &a {
            assert!((0.0..=1.0).contains(&x), "alpha {x} out of range");
        }
    }

    #[test]
    fn opposed_client_gets_zero_alpha() {
        // A client pointing against the mean has negative cosine,
        // clamped to zero. (Kept small enough not to flip the mean
        // itself — with Eq. 7 a huge opposing client would drag the
        // reference direction along with it.)
        let with = vec![1.0f32, 1.0];
        let with2 = vec![1.0f32, 0.9];
        let against = vec![-0.5f32, -0.5];
        let a = correction_coefficients(&[&with, &with2, &against]);
        assert_eq!(a[2], 0.0);
        assert!(a[0] > 0.0 && a[1] > 0.0);
    }

    #[test]
    fn larger_magnitude_means_smaller_alpha() {
        // Two clients perfectly aligned with the mean; the bigger one
        // gets the smaller alpha (Fig. 3-Right).
        let small = vec![1.0f32, 0.0];
        let big = vec![10.0f32, 0.0];
        let a = correction_coefficients(&[&small, &big]);
        assert!(a[0] > a[1], "big client should have smaller alpha: {a:?}");
    }

    #[test]
    fn lower_cosine_means_smaller_alpha() {
        // Equal magnitudes, different angles to the mean (Fig. 3-Left).
        let aligned = vec![1.0f32, 0.1];
        let skewed = vec![0.1f32, 1.0];
        let third = vec![1.0f32, 0.0];
        let a = correction_coefficients(&[&aligned, &skewed, &third]);
        assert!(
            a[0] > a[1],
            "aligned client should have larger alpha: {a:?}"
        );
    }

    #[test]
    fn freeloader_style_upload_gets_high_alpha() {
        // A freeloader echoes the (previous) global direction, so its
        // delta is nearly the mean direction with moderate magnitude —
        // its alpha should exceed every honest, skewed client's
        // (Table II's detection premise).
        let mean_dir = [1.0f32, 1.0, 1.0, 1.0];
        let honest1: Vec<f32> = vec![2.5, 0.5, 0.2, 0.1];
        let honest2: Vec<f32> = vec![0.1, 2.0, 0.4, 0.2];
        let honest3: Vec<f32> = vec![0.3, 0.2, 2.2, 0.6];
        let freeloader: Vec<f32> = mean_dir.iter().map(|x| x * 0.9).collect();
        let a = correction_coefficients(&[&honest1, &honest2, &honest3, &freeloader]);
        let fl = a[3];
        for (i, &h) in a[..3].iter().enumerate() {
            assert!(fl > h, "freeloader alpha {fl} not above honest {i} ({h})");
        }
    }

    #[test]
    fn zero_deltas_give_zero_alphas() {
        let z = vec![0.0f32; 4];
        let a = correction_coefficients(&[&z, &z]);
        assert_eq!(a, vec![0.0, 0.0]);
    }

    #[test]
    fn average_alpha_and_extrapolation() {
        assert_eq!(average_alpha(&[]), 0.0);
        assert!((average_alpha(&[0.2, 0.4]) - 0.3).abs() < 1e-6);
        // With α_t = 1, z_t = w_t (the paper's consistency remark).
        let z = extrapolated_output(&[2.0, 3.0], &[1.0, 1.0], 1.0);
        assert_eq!(z, vec![2.0, 3.0]);
        // With α_t = 0, full extrapolation.
        let z = extrapolated_output(&[2.0, 3.0], &[1.0, 1.0], 0.0);
        assert_eq!(z, vec![3.0, 5.0]);
    }
}
