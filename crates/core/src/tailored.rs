//! Fig. 6 hybrids: FedProx and SCAFFOLD with their uniform correction
//! coefficients replaced by TACO's tailored `α_i^t`.
//!
//! The paper refines both baselines "by replacing their coefficients
//! `ζ` and `α` with our tailored correction coefficients `α_i^t`"
//! (Section V-B), showing that client-specific corrections help even
//! inside other algorithms' update rules. Concretely:
//!
//! - [`TailoredProx`]: client `i` uses proximal strength
//!   `ζ_i = ζ·(1−α_i^t)` — strongly drifting clients get a stronger
//!   pull toward the global model, well-aligned clients are left
//!   alone.
//! - [`TailoredScaffold`]: client `i` applies its control-variate
//!   shift with coefficient `(1−α_i^t)` instead of the uniform `α`.

use crate::algorithm::{fedavg_step, AggWeighting, CostProfile, FederatedAlgorithm};
use crate::alpha;
use crate::hyper::HyperParams;
use crate::scaffold::Scaffold;
use crate::update::{ClientUpdate, LocalRule};

/// FedProx with tailored per-client proximal strengths (Fig. 6).
#[derive(Debug, Clone)]
pub struct TailoredProx {
    zeta: f32,
    alphas: Vec<f32>,
}

impl TailoredProx {
    /// Creates the hybrid with base strength `ζ` for `num_clients`
    /// clients (initial `α_i^0 = 0.1`, as in TACO).
    ///
    /// # Panics
    ///
    /// Panics if `zeta` is negative/not finite or `num_clients` is 0.
    pub fn new(num_clients: usize, zeta: f32) -> Self {
        assert!(num_clients > 0, "need at least one client");
        assert!(
            zeta.is_finite() && zeta >= 0.0,
            "zeta must be non-negative and finite, got {zeta}"
        );
        TailoredProx {
            zeta,
            alphas: vec![0.1; num_clients],
        }
    }
}

impl FederatedAlgorithm for TailoredProx {
    fn name(&self) -> &'static str {
        "FedProx+TACO"
    }

    fn local_rule(&self, client: usize, global: &[f32]) -> LocalRule {
        LocalRule::Prox {
            lambda: self.zeta * (1.0 - self.alphas[client]),
            anchor: global.to_vec(),
        }
    }

    fn aggregate(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        hyper: &HyperParams,
    ) -> Vec<f32> {
        let deltas: Vec<&[f32]> = updates.iter().map(|u| u.delta.as_slice()).collect();
        let new_alphas = alpha::correction_coefficients(&deltas);
        for (u, &a) in updates.iter().zip(&new_alphas) {
            self.alphas[u.client] = a;
        }
        fedavg_step(global, updates, hyper, AggWeighting::Uniform)
    }

    fn alphas(&self) -> Option<&[f32]> {
        Some(&self.alphas)
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile {
            grads_per_step: 1,
            extra_vector_ops: 2,
        }
    }
}

/// SCAFFOLD with tailored per-client correction coefficients (Fig. 6).
///
/// Wraps the plain [`Scaffold`] state machine but scales each client's
/// control-variate shift by `(1−α_i^t)` instead of the uniform `α`.
#[derive(Debug, Clone)]
pub struct TailoredScaffold {
    inner: Scaffold,
    alphas: Vec<f32>,
}

impl TailoredScaffold {
    /// Creates the hybrid for `num_clients` clients.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients` is zero.
    pub fn new(num_clients: usize) -> Self {
        TailoredScaffold {
            // α = 1 inside; the tailored factor is applied on top.
            inner: Scaffold::new(num_clients, 1.0),
            alphas: vec![0.1; num_clients],
        }
    }
}

impl FederatedAlgorithm for TailoredScaffold {
    fn name(&self) -> &'static str {
        "Scaffold+TACO"
    }

    fn begin_round(&mut self, round: usize, global: &[f32]) {
        self.inner.begin_round(round, global);
    }

    fn local_rule(&self, client: usize, global: &[f32]) -> LocalRule {
        match self.inner.local_rule(client, global) {
            LocalRule::Correction { term } => {
                let factor = 1.0 - self.alphas[client];
                LocalRule::Correction {
                    term: taco_tensor::ops::scaled(&term, factor),
                }
            }
            other => other,
        }
    }

    fn aggregate(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        hyper: &HyperParams,
    ) -> Vec<f32> {
        let deltas: Vec<&[f32]> = updates.iter().map(|u| u.delta.as_slice()).collect();
        let new_alphas = alpha::correction_coefficients(&deltas);
        for (u, &a) in updates.iter().zip(&new_alphas) {
            self.alphas[u.client] = a;
        }
        self.inner.aggregate(global, updates, hyper)
    }

    fn alphas(&self) -> Option<&[f32]> {
        Some(&self.alphas)
    }

    fn cost_profile(&self) -> CostProfile {
        self.inner.cost_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, delta: Vec<f32>) -> ClientUpdate {
        ClientUpdate {
            client,
            delta,
            num_samples: 1,
            final_v: None,
            mean_loss: 0.0,
            grad_evals: 0,
            steps: 1,
            compute_seconds: 0.0,
            encoded: None,
        }
    }

    #[test]
    fn tailored_prox_strength_tracks_alpha() {
        let mut alg = TailoredProx::new(2, 0.1);
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        // Client 1 is the big, skewed one → smaller alpha → larger ζ_i.
        let _ = alg.aggregate(
            &[0.0, 0.0],
            &[upd(0, vec![1.0, 0.1]), upd(1, vec![0.2, 4.0])],
            &hyper,
        );
        let l0 = match alg.local_rule(0, &[0.0, 0.0]) {
            LocalRule::Prox { lambda, .. } => lambda,
            _ => unreachable!(),
        };
        let l1 = match alg.local_rule(1, &[0.0, 0.0]) {
            LocalRule::Prox { lambda, .. } => lambda,
            _ => unreachable!(),
        };
        assert!(
            l1 > l0,
            "skewed client should get stronger prox: {l0} vs {l1}"
        );
        assert!(l0 <= 0.1 && l1 <= 0.1, "strengths bounded by base zeta");
    }

    #[test]
    fn tailored_scaffold_scales_correction() {
        let mut plain = Scaffold::new(2, 1.0);
        let mut tailored = TailoredScaffold::new(2);
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        let updates = vec![upd(0, vec![1.0, 0.0]), upd(1, vec![0.0, 1.0])];
        plain.begin_round(0, &[0.0, 0.0]);
        tailored.begin_round(0, &[0.0, 0.0]);
        let _ = plain.aggregate(&[0.0, 0.0], &updates, &hyper);
        let _ = tailored.aggregate(&[0.0, 0.0], &updates, &hyper);
        let np = match plain.local_rule(0, &[0.0, 0.0]) {
            LocalRule::Correction { term } => taco_tensor::ops::norm(&term),
            _ => unreachable!(),
        };
        let nt = match tailored.local_rule(0, &[0.0, 0.0]) {
            LocalRule::Correction { term } => taco_tensor::ops::norm(&term),
            _ => unreachable!(),
        };
        // (1 − α) < 1 ⇒ tailored correction is never larger.
        assert!(nt <= np + 1e-6, "tailored {nt} vs plain {np}");
        assert!(nt > 0.0);
    }

    #[test]
    fn names_match_figure_six() {
        assert_eq!(TailoredProx::new(1, 0.1).name(), "FedProx+TACO");
        assert_eq!(TailoredScaffold::new(1).name(), "Scaffold+TACO");
    }
}
