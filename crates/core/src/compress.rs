//! Lossy upload codecs with a real wire format.
//!
//! The paper's related work cites compressed federated learning
//! (Haddadpour et al., cited as reference 42) among the
//! momentum-correction family. Earlier revisions of this module only
//! offered a `roundtrip` API — compress-and-immediately-decompress on
//! the client — so the server never touched an encoded payload and
//! byte accounting was inferred rather than measured. This module now
//! splits the codec into the two halves a deployment actually has:
//!
//! - [`Compressor::encode`] produces an [`EncodedDelta`] — the wire
//!   message. Its [`EncodedDelta::wire_bytes`] is computed from the
//!   actual encoding (headers, indices, levels, non-finite escapes),
//!   not from a formula over the dense length.
//! - The server side either [`EncodedDelta::decode`]s, or folds the
//!   payload **decode-free** into `f64` shard accumulators via
//!   [`EncodedDelta::accumulate_range_into`], which reproduces the
//!   decode-then-add arithmetic bit for bit (see the determinism notes
//!   on that method) using the AVX-dispatched scale-accumulate kernels
//!   in [`taco_tensor::linalg`].
//!
//! Four codecs ship:
//!
//! - [`NoCompression`] — dense `f32` passthrough (baseline).
//! - [`TopK`] — keep the `k` largest-magnitude coordinates as a sparse
//!   (index, value) message (a *contraction* operator: the error norm
//!   is at most `√(1 − k/d)` of the input norm; property-tested).
//! - [`Uniform8Bit`] — per-tensor affine quantization to 256 levels
//!   with round-to-nearest (at 8 bits the rounding bias is below the
//!   quantization noise floor). Non-finite coordinates are carried as
//!   raw-bit escape entries so validation still sees them.
//! - [`Stochastic4Bit`] — 16-level affine quantization with *seeded
//!   stochastic rounding*: each coordinate rounds up with probability
//!   equal to its fractional level, so the quantizer is unbiased even
//!   at 4 bits. Rounding bits come from a salted per-`(round, client)`
//!   stream ([`codec_stream`]), making encodings bit-reproducible at
//!   any thread count.
//!
//! Wire layouts (documented in DESIGN.md § wire formats):
//!
//! | variant | layout | wire bytes |
//! |---|---|---|
//! | `Dense` | `d × f32` | `4d` |
//! | `Sparse` | `dim: u32, nnz: u32`, then `nnz × (idx: u32, val: f32)` | `8 + 8·nnz` |
//! | `Q8` | `min: f32, scale: f32, n_exc: u32`, `d × u8`, `n_exc × (idx: u32, raw: f32)` | `12 + d + 8·n_exc` |
//! | `Q4` | `min: f32, scale: f32, n_exc: u32, dim: u32`, `⌈d/2⌉ × u8`, `n_exc × (idx: u32, raw: f32)` | `16 + ⌈d/2⌉ + 8·n_exc` |

use std::ops::Range;
use std::sync::Arc;
use taco_tensor::{linalg, ops, Prng};

/// Salt mixed into the run seed for the stochastic-rounding stream, so
/// quantization draws are independent of the training, participation,
/// fault, and every other salted stream derived from the same
/// `(round, client)` cell (DESIGN.md §7 salt table).
const CODEC_SALT: u64 = 0xC0DEC;

/// Deterministic per-`(round, client)` RNG for codec rounding draws —
/// the same derivation as the fault and client training streams,
/// salted with [`CODEC_SALT`]. Pure in its arguments, so parallel and
/// sequential encodes are bit-identical.
pub fn codec_stream(seed: u64, round: usize, client: usize) -> Prng {
    let mixed = (seed ^ CODEC_SALT)
        ^ (round as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (client as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
    Prng::seed_from_u64(mixed)
}

/// The wire-format payload of one encoded client delta.
///
/// Fields are public: the fault layer damages encodings in place
/// (an index, a level, or the scale header — see
/// `taco_sim::fault::apply_corruption_encoded`) and the validation
/// layer inspects them via [`EncodedDelta::check_integrity`].
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedDelta {
    /// Uncompressed dense `f32` payload.
    Dense(Vec<f32>),
    /// Sparse (index, value) pairs with ascending indices.
    Sparse {
        /// Dense dimensionality the indices address.
        dim: usize,
        /// Kept coordinate indices, strictly ascending.
        indices: Vec<u32>,
        /// Kept coordinate values, parallel to `indices`.
        values: Vec<f32>,
    },
    /// 256-level affine quantization: `x ≈ min + level · scale`.
    Q8 {
        /// Affine offset (the finite minimum of the input).
        min: f32,
        /// Affine step (`(max − min) / 255`; `0` for constant input).
        scale: f32,
        /// One level byte per coordinate (`0` at escape positions).
        levels: Vec<u8>,
        /// Non-finite escapes: `(index, raw f32)` pairs, ascending.
        exceptions: Vec<(u32, f32)>,
    },
    /// 16-level affine quantization, two levels packed per byte (low
    /// nibble = even index).
    Q4 {
        /// Dense dimensionality (needed: `packed` rounds up to bytes).
        dim: usize,
        /// Affine offset (the finite minimum of the input).
        min: f32,
        /// Affine step (`(max − min) / 15`; `0` for constant input).
        scale: f32,
        /// Nibble-packed levels, `⌈dim/2⌉` bytes.
        packed: Vec<u8>,
        /// Non-finite escapes: `(index, raw f32)` pairs, ascending.
        exceptions: Vec<(u32, f32)>,
    },
}

impl EncodedDelta {
    /// Dense dimensionality of the decoded vector.
    pub fn dim(&self) -> usize {
        match self {
            EncodedDelta::Dense(v) => v.len(),
            EncodedDelta::Sparse { dim, .. } => *dim,
            EncodedDelta::Q8 { levels, .. } => levels.len(),
            EncodedDelta::Q4 { dim, .. } => *dim,
        }
    }

    /// Bytes this message occupies on the wire, computed from the
    /// actual encoding (see the module-level layout table). Non-finite
    /// escape entries bill their full `(u32, f32)` cost — the byte
    /// accounting matches what was actually encodable, rather than
    /// pretending a NaN fit in a level byte.
    pub fn wire_bytes(&self) -> usize {
        match self {
            EncodedDelta::Dense(v) => v.len() * 4,
            EncodedDelta::Sparse { indices, .. } => 8 + indices.len() * 8,
            EncodedDelta::Q8 {
                levels, exceptions, ..
            } => 12 + levels.len() + exceptions.len() * 8,
            EncodedDelta::Q4 {
                packed, exceptions, ..
            } => 16 + packed.len() + exceptions.len() * 8,
        }
    }

    /// Structural integrity of the message: parallel array lengths,
    /// strictly ascending in-bounds indices, and a level buffer sized
    /// to the dimension. A corrupted index or a truncated buffer fails
    /// here *before* the decoded floats are ever looked at — the
    /// server quarantines such uploads as malformed.
    pub fn check_integrity(&self) -> bool {
        fn ascending_in_bounds(pairs: &[(u32, f32)], dim: usize) -> bool {
            pairs.windows(2).all(|w| w[0].0 < w[1].0)
                && pairs.iter().all(|&(i, _)| (i as usize) < dim)
        }
        match self {
            EncodedDelta::Dense(_) => true,
            EncodedDelta::Sparse {
                dim,
                indices,
                values,
            } => {
                indices.len() == values.len()
                    && indices.windows(2).all(|w| w[0] < w[1])
                    && indices.iter().all(|&i| (i as usize) < *dim)
            }
            EncodedDelta::Q8 {
                levels, exceptions, ..
            } => ascending_in_bounds(exceptions, levels.len()),
            EncodedDelta::Q4 {
                dim,
                packed,
                exceptions,
                ..
            } => packed.len() == dim.div_ceil(2) && ascending_in_bounds(exceptions, *dim),
        }
    }

    /// Reconstructs the dense lossy vector the receiver decodes.
    /// Defensive on malformed messages (out-of-range indices are
    /// skipped): [`EncodedDelta::check_integrity`] is the rejection
    /// path, decode must not panic on hostile input.
    pub fn decode(&self) -> Vec<f32> {
        match self {
            EncodedDelta::Dense(v) => v.clone(),
            EncodedDelta::Sparse {
                dim,
                indices,
                values,
            } => {
                let mut out = vec![0.0f32; *dim];
                for (&i, &v) in indices.iter().zip(values) {
                    if let Some(slot) = out.get_mut(i as usize) {
                        *slot = v;
                    }
                }
                out
            }
            EncodedDelta::Q8 {
                min,
                scale,
                levels,
                exceptions,
            } => {
                let mut out: Vec<f32> =
                    levels.iter().map(|&l| min + f32::from(l) * scale).collect();
                for &(i, raw) in exceptions {
                    if let Some(slot) = out.get_mut(i as usize) {
                        *slot = raw;
                    }
                }
                out
            }
            EncodedDelta::Q4 {
                dim,
                min,
                scale,
                packed,
                exceptions,
            } => {
                let mut out = vec![0.0f32; *dim];
                for (i, slot) in out.iter_mut().enumerate() {
                    let level = (packed.get(i / 2).copied().unwrap_or(0) >> ((i % 2) * 4)) & 0x0F;
                    *slot = min + f32::from(level) * scale;
                }
                for &(i, raw) in exceptions {
                    if let Some(slot) = out.get_mut(i as usize) {
                        *slot = raw;
                    }
                }
                out
            }
        }
    }

    /// Decode-free accumulation over the whole vector:
    /// `acc[j] += weight · decode()[j]`, without materializing the
    /// decoded vector. See [`EncodedDelta::accumulate_range_into`].
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != self.dim()`.
    pub fn accumulate_into(&self, acc: &mut [f64], weight: f32) {
        assert_eq!(acc.len(), self.dim(), "accumulator length mismatch");
        self.accumulate_range_into(0..self.dim(), acc, weight);
    }

    /// Decode-free accumulation of one dimension shard:
    /// `acc[j] += weight as f64 · decode()[range][j] as f64` for `j`
    /// ascending — **bit-identical** to decoding and then running
    /// [`taco_tensor::shard::StripedTable::accumulate_shard`] over the
    /// same range, because every per-dimension operation is the exact
    /// widening multiply-add of that fold, performed in the same
    /// ascending order (the AVX kernels are elementwise, so
    /// vectorization cannot reorder any per-dimension arithmetic):
    ///
    /// - `Dense` runs [`linalg::scale_accumulate`] on the subslice.
    /// - `Q8`/`Q4` run the fused dequantize-accumulate kernels over
    ///   the level buffer, splitting around in-range escape entries so
    ///   each escaped dimension contributes its raw value exactly once.
    /// - `Sparse` adds only the stored coordinates. Skipping the zero
    ///   coordinates is exact: the accumulator starts at `+0.0` and a
    ///   finite IEEE sum can only become `−0.0` when every addend is
    ///   `−0.0`, so `acc + (±0.0)` is always bitwise `acc`.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the dimension or `acc.len()` differs
    /// from the range length.
    ///
    /// Unlike [`EncodedDelta::decode`], which is defensive, the index
    /// arithmetic here trusts the encoding's structure: a malformed
    /// message (unsorted or out-of-range exception indices, an
    /// undersized level buffer) may panic. Callers must gate
    /// untrusted encodings through [`EncodedDelta::check_integrity`]
    /// first — the server's validation path does exactly that before
    /// anything reaches the backend accumulators.
    pub fn accumulate_range_into(&self, range: Range<usize>, acc: &mut [f64], weight: f32) {
        assert!(range.end <= self.dim(), "shard range out of bounds");
        assert_eq!(acc.len(), range.len(), "shard accumulator length mismatch");
        debug_assert!(
            self.check_integrity(),
            "accumulate_range_into on a malformed encoding: callers must check_integrity() first"
        );
        let w = f64::from(weight);
        match self {
            EncodedDelta::Dense(v) => {
                linalg::scale_accumulate(acc, &v[range], w);
            }
            EncodedDelta::Sparse {
                indices, values, ..
            } => {
                let lo = indices.partition_point(|&i| (i as usize) < range.start);
                let hi = indices.partition_point(|&i| (i as usize) < range.end);
                for (&i, &v) in indices[lo..hi].iter().zip(&values[lo..hi]) {
                    acc[i as usize - range.start] += w * f64::from(v);
                }
            }
            EncodedDelta::Q8 {
                min,
                scale,
                levels,
                exceptions,
            } => {
                let mut start = range.start;
                for &(i, raw) in exceptions {
                    let i = i as usize;
                    if i < range.start || i >= range.end {
                        continue;
                    }
                    linalg::dequant8_accumulate(
                        &mut acc[start - range.start..i - range.start],
                        &levels[start..i],
                        *min,
                        *scale,
                        w,
                    );
                    acc[i - range.start] += w * f64::from(raw);
                    start = i + 1;
                }
                linalg::dequant8_accumulate(
                    &mut acc[start - range.start..],
                    &levels[start..range.end],
                    *min,
                    *scale,
                    w,
                );
            }
            EncodedDelta::Q4 {
                min,
                scale,
                packed,
                exceptions,
                ..
            } => {
                let mut start = range.start;
                for &(i, raw) in exceptions {
                    let i = i as usize;
                    if i < range.start || i >= range.end {
                        continue;
                    }
                    linalg::dequant4_accumulate(
                        &mut acc[start - range.start..i - range.start],
                        packed,
                        start,
                        *min,
                        *scale,
                        w,
                    );
                    acc[i - range.start] += w * f64::from(raw);
                    start = i + 1;
                }
                linalg::dequant4_accumulate(
                    &mut acc[start - range.start..],
                    packed,
                    start,
                    *min,
                    *scale,
                    w,
                );
            }
        }
    }
}

/// A lossy vector codec producing a real wire message.
pub trait Compressor: Send + Sync {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Encodes `input` into its wire format. Stochastic codecs draw
    /// rounding bits from `stream` (derive it with [`codec_stream`]
    /// for the per-`(round, client)` determinism contract);
    /// deterministic codecs ignore it.
    fn encode(&self, input: &[f32], stream: &mut Prng) -> EncodedDelta;

    /// Encode-then-decode convenience: the lossy vector the receiver
    /// reconstructs. Kept for error measurement and tests — the
    /// simulation pipeline carries the [`EncodedDelta`] itself.
    fn roundtrip(&self, input: &[f32], stream: &mut Prng) -> Vec<f32> {
        self.encode(input, stream).decode()
    }
}

/// Finite-only (min, max) of a slice; `(∞, −∞)` when no coordinate is
/// finite. Unlike [`ops::min_max`], an `∞` input cannot poison the
/// quantization range — non-finite coordinates travel as escape
/// entries instead.
fn finite_min_max(xs: &[f32]) -> (f32, f32) {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &x in xs {
        if x.is_finite() {
            min = min.min(x);
            max = max.max(x);
        }
    }
    (min, max)
}

/// Keeps the `k` largest-magnitude coordinates (ties broken by index).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopK {
    /// Fraction of coordinates kept, in `(0, 1]`.
    pub keep_fraction: f64,
}

impl TopK {
    /// Creates a top-k compressor keeping `keep_fraction` of the
    /// coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is outside `(0, 1]`.
    pub fn new(keep_fraction: f64) -> Self {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep_fraction must be in (0, 1], got {keep_fraction}"
        );
        TopK { keep_fraction }
    }

    fn k_for(&self, dim: usize) -> usize {
        ((dim as f64 * self.keep_fraction).ceil() as usize).clamp(1, dim.max(1))
    }
}

impl Compressor for TopK {
    fn name(&self) -> &'static str {
        "top-k"
    }

    fn encode(&self, input: &[f32], _stream: &mut Prng) -> EncodedDelta {
        let dim = input.len();
        if dim == 0 {
            return EncodedDelta::Sparse {
                dim,
                indices: Vec::new(),
                values: Vec::new(),
            };
        }
        let k = self.k_for(dim);
        let mut idx: Vec<u32> = (0..dim as u32).collect();
        // Magnitude-descending with ascending-index tie-break — the
        // exact comparator of the original full sort. total_cmp agrees
        // with partial_cmp on finite values and gives NaN a fixed
        // order (|NaN| sorts above +∞, so NaN coordinates are kept and
        // surface to validation) instead of panicking mid-selection.
        let by_magnitude = |&a: &u32, &b: &u32| {
            input[b as usize]
                .abs()
                .total_cmp(&input[a as usize].abs())
                .then(a.cmp(&b))
        };
        if k < dim {
            // O(d) partial selection: the comparator is a strict total
            // order (ties broken by index), so the first k elements
            // are exactly the old sort's first k — only their internal
            // order differs, and the ascending re-sort below fixes the
            // wire order.
            idx.select_nth_unstable_by(k - 1, by_magnitude);
            idx.truncate(k);
        }
        idx.sort_unstable();
        let values = idx.iter().map(|&i| input[i as usize]).collect();
        EncodedDelta::Sparse {
            dim,
            indices: idx,
            values,
        }
    }
}

/// Per-vector affine 8-bit quantization: finite values are mapped to
/// 256 uniform levels between the vector's finite min and max with
/// round-to-nearest; non-finite values — and finite ones whose f32
/// reconstruction would overflow on extreme-range inputs — travel as
/// raw escape entries (and are billed as such) so server-side
/// validation still sees them and the codec never fabricates a
/// non-finite value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Uniform8Bit;

impl Compressor for Uniform8Bit {
    fn name(&self) -> &'static str {
        "uniform-8bit"
    }

    fn encode(&self, input: &[f32], _stream: &mut Prng) -> EncodedDelta {
        let (lo, hi) = finite_min_max(input);
        let (min, scale) = if lo > hi {
            // No finite coordinate at all: every entry is an escape.
            (0.0, 0.0)
        } else {
            // The step is computed in f64: `hi - lo` can overflow f32
            // for extreme-range inputs (coords near ±2e38), and an
            // infinite scale would decode every level to NaN.
            (lo, ((f64::from(hi) - f64::from(lo)) / 255.0) as f32)
        };
        let mut levels = Vec::with_capacity(input.len());
        let mut exceptions = Vec::new();
        for (i, &x) in input.iter().enumerate() {
            let mut level = 0u8;
            if x.is_finite() && scale > 0.0 {
                // `x - min` may overflow to +∞ on extreme ranges; the
                // clamp maps that to the top level.
                level = ((x - min) / scale).round().clamp(0.0, 255.0) as u8;
            }
            // A finite step can still overflow the f32 reconstruction
            // at high levels (255·scale > f32::MAX); such coordinates
            // ride as escapes so the codec never fabricates a
            // non-finite value. Constant vectors keep level 0, which
            // decodes to `min` exactly.
            if !x.is_finite() || !(min + f32::from(level) * scale).is_finite() {
                exceptions.push((i as u32, x));
                level = 0;
            }
            levels.push(level);
        }
        EncodedDelta::Q8 {
            min,
            scale,
            levels,
            exceptions,
        }
    }
}

/// Per-vector affine 4-bit quantization with seeded *stochastic*
/// rounding: a coordinate at fractional level `t` rounds up with
/// probability `t − ⌊t⌋`, so `E[decode(x)] = x` — unbiased, which
/// matters at 16 levels where nearest-rounding bias would accumulate
/// across rounds. Rounding bits come from the caller's salted
/// per-`(round, client)` stream, so encodings are bit-reproducible at
/// any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stochastic4Bit;

impl Compressor for Stochastic4Bit {
    fn name(&self) -> &'static str {
        "stochastic-4bit"
    }

    fn encode(&self, input: &[f32], stream: &mut Prng) -> EncodedDelta {
        let dim = input.len();
        let (lo, hi) = finite_min_max(input);
        let (min, scale) = if lo > hi {
            (0.0, 0.0)
        } else {
            // f64 step: `hi - lo` can overflow f32 (see Uniform8Bit).
            (lo, ((f64::from(hi) - f64::from(lo)) / 15.0) as f32)
        };
        let mut packed = vec![0u8; dim.div_ceil(2)];
        let mut exceptions = Vec::new();
        for (i, &x) in input.iter().enumerate() {
            let mut level = 0u8;
            if x.is_finite() && scale > 0.0 {
                let t = ((x - min) / scale).clamp(0.0, 15.0);
                let floor = t.floor();
                // One draw per finite coordinate, in index order — the
                // stream position is a pure function of the input, so
                // the encoding is deterministic given (seed, round,
                // client, input).
                let up = stream.uniform_f32() < t - floor;
                level = (floor as u8 + u8::from(up)).min(15);
            }
            // Escape non-finite coordinates, and finite ones whose f32
            // reconstruction overflows at extreme ranges (15·scale can
            // exceed f32::MAX) — the codec never fabricates non-finite
            // values.
            if !x.is_finite() || !(min + f32::from(level) * scale).is_finite() {
                exceptions.push((i as u32, x));
                level = 0;
            }
            packed[i / 2] |= level << ((i % 2) * 4);
        }
        EncodedDelta::Q4 {
            dim,
            min,
            scale,
            packed,
            exceptions,
        }
    }
}

/// An identity codec (baseline for the trade-off sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoCompression;

impl Compressor for NoCompression {
    fn name(&self) -> &'static str {
        "none"
    }

    fn encode(&self, input: &[f32], _stream: &mut Prng) -> EncodedDelta {
        EncodedDelta::Dense(input.to_vec())
    }
}

/// Builds a codec from its registry name (`none`, `topk`, `q8`, `q4`);
/// `None` for unknown names.
pub fn codec_by_name(name: &str) -> Option<Arc<dyn Compressor>> {
    match name.trim().to_ascii_lowercase().as_str() {
        "none" => Some(Arc::new(NoCompression)),
        "topk" => Some(Arc::new(TopK::new(0.1))),
        "q8" => Some(Arc::new(Uniform8Bit)),
        "q4" => Some(Arc::new(Stochastic4Bit)),
        _ => None,
    }
}

/// The codec selected by `TACO_CODEC` (`none`, `topk`, `q8`, `q4`);
/// `None` when unset or empty. An unrecognized name warns once on
/// stderr and runs uncompressed, mirroring `TACO_BACKEND`'s fallback.
pub fn codec_from_env() -> Option<Arc<dyn Compressor>> {
    let name = taco_trace::env::codec_name()?;
    let trimmed = name.trim();
    if trimmed.is_empty() {
        return None;
    }
    match codec_by_name(trimmed) {
        Some(codec) => Some(codec),
        None => {
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "warning: unknown TACO_CODEC '{trimmed}', running uncompressed \
                     (expected 'none', 'topk', 'q8', or 'q4')"
                );
            });
            None
        }
    }
}

/// Relative compression error `‖x − C(x)‖ / ‖x‖` (0 for a zero
/// input), measured with a fixed rounding stream.
pub fn relative_error(compressor: &dyn Compressor, input: &[f32]) -> f64 {
    let norm = ops::norm(input) as f64;
    if norm < 1e-12 {
        return 0.0;
    }
    let out = compressor.roundtrip(input, &mut codec_stream(0, 0, 0));
    let err = ops::norm(&ops::sub(input, &out)) as f64;
    err / norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_tensor::{ops, Prng, Tensor};

    fn stream() -> Prng {
        codec_stream(7, 0, 0)
    }

    fn rt(c: &dyn Compressor, input: &[f32]) -> Vec<f32> {
        c.roundtrip(input, &mut stream())
    }

    /// The pre-partial-selection TopK implementation, frozen verbatim
    /// as the differential reference: full `O(d log d)` sort by
    /// magnitude with the ascending-index tie-break.
    fn top_k_sort_reference(input: &[f32], k: usize) -> Vec<f32> {
        let mut idx: Vec<usize> = (0..input.len()).collect();
        idx.sort_by(|&a, &b| input[b].abs().total_cmp(&input[a].abs()).then(a.cmp(&b)));
        let mut out = vec![0.0f32; input.len()];
        for &i in &idx[..k] {
            out[i] = input[i];
        }
        out
    }

    #[test]
    fn topk_keeps_largest() {
        let c = TopK::new(0.5);
        let out = rt(&c, &[0.1, -5.0, 0.2, 3.0]);
        assert_eq!(out, vec![0.0, -5.0, 0.0, 3.0]);
    }

    #[test]
    fn topk_partial_selection_matches_full_sort_on_adversarial_inputs() {
        // Ties, duplicates, signed duplicates, NaNs, infinities, zeros
        // — every input where a sloppy comparator or an unstable
        // selection could diverge from the frozen sort reference.
        let mut rng = Prng::seed_from_u64(99);
        let mut cases: Vec<Vec<f32>> = vec![
            vec![1.0; 64],
            vec![-1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0],
            vec![0.0; 17],
            vec![2.0, -2.0, 2.0, -2.0, 0.5, 0.5, 0.5, 3.0],
            vec![f32::NAN, 1.0, -2.0, f32::NAN, 0.0, 5.0],
            vec![f32::INFINITY, f32::NEG_INFINITY, 1.0, -1.0, f32::NAN],
            vec![-0.0, 0.0, 1.0, -1.0],
        ];
        for _ in 0..8 {
            // Random vectors with heavy duplication (quantized draws).
            cases.push(
                (0..129)
                    .map(|_| (rng.below(7) as f32 - 3.0) * 0.5)
                    .collect(),
            );
        }
        for input in &cases {
            for frac in [0.01, 0.25, 0.5, 1.0] {
                let c = TopK::new(frac);
                let got = rt(&c, input);
                let want = top_k_sort_reference(input, c.k_for(input.len()));
                assert_eq!(got.len(), want.len());
                for (i, (p, q)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        p.to_bits(),
                        q.to_bits(),
                        "frac {frac} dim {i}: {p} vs {q} for {input:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn topk_is_contraction() {
        let mut rng = Prng::seed_from_u64(1);
        let x = Tensor::randn([257], 1.0, &mut rng).into_vec();
        for frac in [0.01, 0.1, 0.5, 1.0] {
            let c = TopK::new(frac);
            let err = relative_error(&c, &x);
            let bound = (1.0 - frac).sqrt() + 0.1;
            assert!(err <= bound, "frac {frac}: err {err} > bound {bound}");
        }
    }

    #[test]
    fn topk_full_fraction_is_identity() {
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(rt(&TopK::new(1.0), &x), x);
        // dim/nnz header + 3 × (idx, value).
        assert_eq!(TopK::new(1.0).encode(&x, &mut stream()).wire_bytes(), 32);
    }

    #[test]
    fn sparse_encode_decode_is_identity_on_kept_coordinates() {
        let mut rng = Prng::seed_from_u64(21);
        let x = Tensor::randn([301], 1.0, &mut rng).into_vec();
        let enc = TopK::new(0.2).encode(&x, &mut stream());
        assert!(enc.check_integrity());
        let EncodedDelta::Sparse {
            dim,
            indices,
            values,
        } = &enc
        else {
            panic!("top-k must encode sparse");
        };
        assert_eq!(*dim, x.len());
        let decoded = enc.decode();
        for (&i, &v) in indices.iter().zip(values) {
            assert_eq!(v.to_bits(), x[i as usize].to_bits(), "kept value altered");
            assert_eq!(decoded[i as usize].to_bits(), v.to_bits());
        }
        let kept: std::collections::BTreeSet<u32> = indices.iter().copied().collect();
        for (i, &d) in decoded.iter().enumerate() {
            if !kept.contains(&(i as u32)) {
                assert_eq!(d, 0.0, "dropped coordinate {i} not zero");
            }
        }
    }

    #[test]
    fn quantization_error_is_bounded_by_half_step() {
        let mut rng = Prng::seed_from_u64(2);
        let x = Tensor::randn([1000], 2.0, &mut rng).into_vec();
        let out = rt(&Uniform8Bit, &x);
        let min = x.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let half_step = (max - min) / 255.0 / 2.0;
        for (a, b) in x.iter().zip(&out) {
            assert!((a - b).abs() <= half_step * 1.001, "{a} vs {b}");
        }
    }

    #[test]
    fn quantization_of_constant_vector_is_exact() {
        let x = vec![0.7; 16];
        assert_eq!(rt(&Uniform8Bit, &x), x);
    }

    /// Regression for the non-finite passthrough bug: the old
    /// `roundtrip` returned the input *verbatim* whenever `max − min`
    /// was non-finite, so an `∞`-carrying delta sailed through the
    /// "256-level" codec losslessly while `payload_bytes` still billed
    /// quantized bytes. Now the finite coordinates must actually be
    /// quantized, the non-finite ones must survive to validation, and
    /// the wire accounting must bill the escapes.
    #[test]
    fn non_finite_coordinates_are_escaped_not_passed_through() {
        let mut x = vec![0.0f32; 64];
        for (i, v) in x.iter_mut().enumerate() {
            *v = (i as f32) * 0.1 - 3.0;
        }
        x[5] = f32::NAN;
        x[41] = f32::INFINITY;
        for codec in [&Uniform8Bit as &dyn Compressor, &Stochastic4Bit] {
            let enc = codec.encode(&x, &mut stream());
            assert!(enc.check_integrity(), "{}", codec.name());
            let out = enc.decode();
            // The non-finite coordinates surface to validation...
            assert!(out[5].is_nan(), "{}: NaN swallowed", codec.name());
            assert_eq!(out[41], f32::INFINITY, "{}: ∞ swallowed", codec.name());
            assert!(!ops::all_finite(&out), "{}", codec.name());
            // ...the finite ones went through the quantizer (verbatim
            // passthrough would reproduce them exactly; with at most
            // 256 levels over this range at least one must move)...
            let moved = x
                .iter()
                .zip(&out)
                .filter(|(a, _)| a.is_finite())
                .any(|(a, b)| a.to_bits() != b.to_bits());
            assert!(
                moved,
                "{}: finite coords passed through verbatim",
                codec.name()
            );
            // ...and the escapes are billed at 8 bytes each on top of
            // the level bytes.
            let base = match codec.name() {
                "uniform-8bit" => 12 + x.len(),
                _ => 16 + x.len().div_ceil(2),
            };
            assert_eq!(enc.wire_bytes(), base + 2 * 8, "{}", codec.name());
        }
    }

    #[test]
    fn all_non_finite_vector_is_all_escapes() {
        let x = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        let enc = Uniform8Bit.encode(&x, &mut stream());
        let out = enc.decode();
        assert!(out[0].is_nan());
        assert_eq!(out[1], f32::INFINITY);
        assert_eq!(out[2], f32::NEG_INFINITY);
        assert_eq!(enc.wire_bytes(), 12 + 3 + 3 * 8);
    }

    #[test]
    fn stochastic_quantization_is_deterministic_per_stream_cell() {
        let mut rng = Prng::seed_from_u64(4);
        let x = Tensor::randn([777], 1.0, &mut rng).into_vec();
        let a = Stochastic4Bit.encode(&x, &mut codec_stream(42, 3, 5));
        let b = Stochastic4Bit.encode(&x, &mut codec_stream(42, 3, 5));
        assert_eq!(
            a, b,
            "same (seed, round, client) must re-encode identically"
        );
        let other = Stochastic4Bit.encode(&x, &mut codec_stream(42, 3, 6));
        assert_ne!(a, other, "different clients must draw different rounding");
    }

    #[test]
    fn stochastic_rounding_is_unbiased_within_a_level_step() {
        // Two fixed endpoints pin the quantization grid to [0, 15.3];
        // the probes sit 30% of the way between levels 4 and 5, so
        // they must round up ~30% of the time, and the error never
        // exceeds one full step. (The endpoints themselves land on
        // exact levels and are excluded from the round-up count.)
        let step = 15.3f32 / 15.0;
        let probe = 4.3f32 * step;
        let mut x = vec![0.0f32, 15.3];
        x.extend(std::iter::repeat_n(probe, 2000));
        let enc = Stochastic4Bit.encode(&x, &mut stream());
        let out = enc.decode();
        let mut ups = 0usize;
        for (i, (a, b)) in x.iter().zip(&out).enumerate() {
            assert!((a - b).abs() <= step * 1.001, "{a} vs {b}");
            if i >= 2 && *b > *a {
                ups += 1;
            }
        }
        let frac = ups as f64 / 2000.0;
        assert!(
            (0.2..0.4).contains(&frac),
            "round-up fraction {frac} far from the 0.3 target"
        );
    }

    #[test]
    fn extreme_range_inputs_never_fabricate_non_finite_values() {
        // `hi - lo` overflows f32 here: the quantization step must be
        // computed in f64 (an infinite scale decodes every level to
        // NaN), and any level whose f32 reconstruction still
        // overflows must ride as an escape.
        let x = vec![f32::MAX, f32::MIN, 0.0, 1.0e38, -2.0e38];
        for c in [&Uniform8Bit as &dyn Compressor, &Stochastic4Bit] {
            let enc = c.encode(&x, &mut stream());
            assert!(enc.check_integrity(), "{}", c.name());
            let out = enc.decode();
            assert!(
                out.iter().all(|v| v.is_finite()),
                "{}: non-finite decode from finite input: {out:?}",
                c.name()
            );
            // The escape fallback reproduces the overflowing
            // endpoint exactly, and billing reflects it.
            assert_eq!(out[0], f32::MAX, "{}", c.name());
            let escapes = match &enc {
                EncodedDelta::Q8 { exceptions, .. }
                | EncodedDelta::Q4 { exceptions, .. } => exceptions.len(),
                _ => unreachable!(),
            };
            assert!(escapes >= 1, "{}", c.name());
        }
    }

    #[test]
    fn wire_sizes_are_ordered() {
        let mut rng = Prng::seed_from_u64(6);
        let x = Tensor::randn([10_000], 1.0, &mut rng).into_vec();
        let bytes = |c: &dyn Compressor| c.encode(&x, &mut stream()).wire_bytes();
        assert!(bytes(&TopK::new(0.01)) < bytes(&Stochastic4Bit));
        assert!(bytes(&Stochastic4Bit) < bytes(&Uniform8Bit));
        assert!(bytes(&Uniform8Bit) < bytes(&NoCompression));
        assert_eq!(bytes(&NoCompression), 40_000);
    }

    #[test]
    fn no_compression_is_lossless() {
        let mut rng = Prng::seed_from_u64(3);
        let x = Tensor::randn([64], 1.0, &mut rng).into_vec();
        assert_eq!(rt(&NoCompression, &x), x);
        assert_eq!(relative_error(&NoCompression, &x), 0.0);
    }

    #[test]
    fn empty_inputs_are_safe() {
        for c in [
            &TopK::new(0.5) as &dyn Compressor,
            &Uniform8Bit,
            &Stochastic4Bit,
            &NoCompression,
        ] {
            let enc = c.encode(&[], &mut stream());
            assert_eq!(enc.dim(), 0, "{}", c.name());
            assert!(enc.decode().is_empty(), "{}", c.name());
            assert!(enc.check_integrity(), "{}", c.name());
            let mut acc: Vec<f64> = Vec::new();
            enc.accumulate_into(&mut acc, 1.0);
        }
    }

    #[test]
    fn topk_preserves_direction() {
        let mut rng = Prng::seed_from_u64(4);
        let x = Tensor::randn([512], 1.0, &mut rng).into_vec();
        let out = rt(&TopK::new(0.2), &x);
        assert!(ops::cosine_similarity(&x, &out) > 0.5);
    }

    #[test]
    fn accumulate_into_matches_decode_then_add_bitwise() {
        let mut rng = Prng::seed_from_u64(8);
        let dim = 1003;
        let mut x = Tensor::randn([dim], 1.0, &mut rng).into_vec();
        // Exercise the escape-splitting paths too.
        x[17] = f32::NAN;
        x[900] = f32::INFINITY;
        for c in [
            &NoCompression as &dyn Compressor,
            &TopK::new(0.1),
            &Uniform8Bit,
            &Stochastic4Bit,
        ] {
            let enc = c.encode(&x, &mut stream());
            let decoded = enc.decode();
            for w in [1.0f32, 0.25, -2.5] {
                let mut want = vec![0.0f64; dim];
                for (a, &v) in want.iter_mut().zip(&decoded) {
                    *a += f64::from(w) * f64::from(v);
                }
                // Whole-vector fold.
                let mut got = vec![0.0f64; dim];
                enc.accumulate_into(&mut got, w);
                // Ragged shard split at awkward boundaries (odd split
                // points cross the Q4 nibble parity).
                let mut split = vec![0.0f64; dim];
                for (start, end) in [(0usize, 333usize), (333, 334), (334, 1003)] {
                    enc.accumulate_range_into(start..end, &mut split[start..end], w);
                }
                for (i, ((p, q), r)) in got.iter().zip(&want).zip(&split).enumerate() {
                    assert_eq!(
                        p.to_bits(),
                        q.to_bits(),
                        "{} w={w} dim {i}: {p} vs {q}",
                        c.name()
                    );
                    assert_eq!(
                        r.to_bits(),
                        q.to_bits(),
                        "{} w={w} dim {i} (split): {r} vs {q}",
                        c.name()
                    );
                }
            }
        }
    }

    #[test]
    fn integrity_check_rejects_malformed_messages() {
        let good = EncodedDelta::Sparse {
            dim: 10,
            indices: vec![1, 4, 7],
            values: vec![1.0, 2.0, 3.0],
        };
        assert!(good.check_integrity());
        let out_of_range = EncodedDelta::Sparse {
            dim: 10,
            indices: vec![1, 4, 10],
            values: vec![1.0, 2.0, 3.0],
        };
        assert!(!out_of_range.check_integrity());
        let unsorted = EncodedDelta::Sparse {
            dim: 10,
            indices: vec![4, 1, 7],
            values: vec![1.0, 2.0, 3.0],
        };
        assert!(!unsorted.check_integrity());
        let ragged = EncodedDelta::Sparse {
            dim: 10,
            indices: vec![1, 4],
            values: vec![1.0, 2.0, 3.0],
        };
        assert!(!ragged.check_integrity());
        let truncated_q4 = EncodedDelta::Q4 {
            dim: 9,
            min: 0.0,
            scale: 1.0,
            packed: vec![0; 4],
            exceptions: Vec::new(),
        };
        assert!(!truncated_q4.check_integrity());
        // Decode stays panic-free on all of them.
        for bad in [&out_of_range, &unsorted, &truncated_q4] {
            let _ = bad.decode();
        }
    }

    #[test]
    fn codec_registry_names_resolve() {
        for (name, display) in [
            ("none", "none"),
            ("topk", "top-k"),
            ("q8", "uniform-8bit"),
            ("q4", "stochastic-4bit"),
            (" Q8 ", "uniform-8bit"),
        ] {
            let c = codec_by_name(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert_eq!(c.name(), display);
        }
        assert!(codec_by_name("zstd").is_none());
    }
}
