//! Lossy upload compression (gradient sparsification/quantization).
//!
//! The paper's related work cites compressed federated learning
//! (Haddadpour et al., cited as reference 42) among the momentum-correction family.
//! This module provides the two standard compressors so the
//! communication model in `taco-sim` can study accuracy-vs-bytes
//! trade-offs on top of any algorithm:
//!
//! - [`TopK`] — keep the `k` largest-magnitude coordinates, zero the
//!   rest (a *contraction* operator: the error norm is at most
//!   `√(1 − k/d)` of the input norm; property-tested).
//! - [`Uniform8Bit`] — per-tensor affine quantization to 256 levels.
//!
//! Both implement [`Compressor`], which reports payload bytes for the
//! communication model and reconstructs the (lossy) vector the server
//! actually receives.

use taco_tensor::ops;

/// A lossy vector codec with a known wire size.
pub trait Compressor: Send + Sync {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Compresses and immediately reconstructs `input`, returning the
    /// lossy vector the receiver would decode.
    fn roundtrip(&self, input: &[f32]) -> Vec<f32>;

    /// Wire bytes needed to transmit a vector of length `dim`.
    fn payload_bytes(&self, dim: usize) -> usize;
}

/// Keeps the `k` largest-magnitude coordinates (ties broken by index).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopK {
    /// Fraction of coordinates kept, in `(0, 1]`.
    pub keep_fraction: f64,
}

impl TopK {
    /// Creates a top-k compressor keeping `keep_fraction` of the
    /// coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is outside `(0, 1]`.
    pub fn new(keep_fraction: f64) -> Self {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep_fraction must be in (0, 1], got {keep_fraction}"
        );
        TopK { keep_fraction }
    }

    fn k_for(&self, dim: usize) -> usize {
        ((dim as f64 * self.keep_fraction).ceil() as usize).clamp(1, dim.max(1))
    }
}

impl Compressor for TopK {
    fn name(&self) -> &'static str {
        "top-k"
    }

    fn roundtrip(&self, input: &[f32]) -> Vec<f32> {
        if input.is_empty() {
            return Vec::new();
        }
        let k = self.k_for(input.len());
        let mut idx: Vec<usize> = (0..input.len()).collect();
        // total_cmp agrees with partial_cmp on finite values and gives
        // NaN a fixed order instead of panicking mid-sort.
        idx.sort_by(|&a, &b| input[b].abs().total_cmp(&input[a].abs()).then(a.cmp(&b)));
        let mut out = vec![0.0f32; input.len()];
        for &i in &idx[..k] {
            out[i] = input[i];
        }
        out
    }

    fn payload_bytes(&self, dim: usize) -> usize {
        // One (index: u32, value: f32) pair per kept coordinate.
        self.k_for(dim) * 8
    }
}

/// Per-vector affine 8-bit quantization: values are mapped to 256
/// uniform levels between the vector's min and max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Uniform8Bit;

impl Compressor for Uniform8Bit {
    fn name(&self) -> &'static str {
        "uniform-8bit"
    }

    fn roundtrip(&self, input: &[f32]) -> Vec<f32> {
        if input.is_empty() {
            return Vec::new();
        }
        let (min, max) = ops::min_max(input);
        let range = max - min;
        if range <= 0.0 || !range.is_finite() {
            return input.to_vec();
        }
        let scale = range / 255.0;
        input
            .iter()
            .map(|&x| {
                let level = ((x - min) / scale).round().clamp(0.0, 255.0);
                min + level * scale
            })
            .collect()
    }

    fn payload_bytes(&self, dim: usize) -> usize {
        // One byte per coordinate plus the (min, max) header.
        dim + 8
    }
}

/// An identity codec (baseline for the trade-off sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoCompression;

impl Compressor for NoCompression {
    fn name(&self) -> &'static str {
        "none"
    }

    fn roundtrip(&self, input: &[f32]) -> Vec<f32> {
        input.to_vec()
    }

    fn payload_bytes(&self, dim: usize) -> usize {
        dim * 4
    }
}

/// Relative compression error `‖x − C(x)‖ / ‖x‖` (0 for a zero input).
pub fn relative_error(compressor: &dyn Compressor, input: &[f32]) -> f64 {
    let norm = taco_tensor::ops::norm(input) as f64;
    if norm < 1e-12 {
        return 0.0;
    }
    let out = compressor.roundtrip(input);
    let err = taco_tensor::ops::norm(&taco_tensor::ops::sub(input, &out)) as f64;
    err / norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_tensor::{ops, Prng, Tensor};

    #[test]
    fn topk_keeps_largest() {
        let c = TopK::new(0.5);
        let out = c.roundtrip(&[0.1, -5.0, 0.2, 3.0]);
        assert_eq!(out, vec![0.0, -5.0, 0.0, 3.0]);
    }

    #[test]
    fn topk_is_contraction() {
        let mut rng = Prng::seed_from_u64(1);
        let x = Tensor::randn([257], 1.0, &mut rng).into_vec();
        for frac in [0.01, 0.1, 0.5, 1.0] {
            let c = TopK::new(frac);
            let err = relative_error(&c, &x);
            let bound = (1.0 - frac).sqrt() + 0.1;
            assert!(err <= bound, "frac {frac}: err {err} > bound {bound}");
        }
    }

    #[test]
    fn topk_full_fraction_is_identity() {
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(TopK::new(1.0).roundtrip(&x), x);
        assert_eq!(TopK::new(1.0).payload_bytes(3), 24);
    }

    #[test]
    fn quantization_error_is_bounded_by_half_step() {
        let mut rng = Prng::seed_from_u64(2);
        let x = Tensor::randn([1000], 2.0, &mut rng).into_vec();
        let out = Uniform8Bit.roundtrip(&x);
        let min = x.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let half_step = (max - min) / 255.0 / 2.0;
        for (a, b) in x.iter().zip(&out) {
            assert!((a - b).abs() <= half_step * 1.001, "{a} vs {b}");
        }
    }

    #[test]
    fn quantization_of_constant_vector_is_exact() {
        let x = vec![0.7; 16];
        assert_eq!(Uniform8Bit.roundtrip(&x), x);
    }

    #[test]
    fn payload_sizes_are_ordered() {
        let dim = 10_000;
        assert!(TopK::new(0.01).payload_bytes(dim) < Uniform8Bit.payload_bytes(dim));
        assert!(Uniform8Bit.payload_bytes(dim) < NoCompression.payload_bytes(dim));
    }

    #[test]
    fn no_compression_is_lossless() {
        let mut rng = Prng::seed_from_u64(3);
        let x = Tensor::randn([64], 1.0, &mut rng).into_vec();
        assert_eq!(NoCompression.roundtrip(&x), x);
        assert_eq!(relative_error(&NoCompression, &x), 0.0);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(TopK::new(0.5).roundtrip(&[]).is_empty());
        assert!(Uniform8Bit.roundtrip(&[]).is_empty());
    }

    #[test]
    fn topk_preserves_direction() {
        let mut rng = Prng::seed_from_u64(4);
        let x = Tensor::randn([512], 1.0, &mut rng).into_vec();
        let out = TopK::new(0.2).roundtrip(&x);
        assert!(ops::cosine_similarity(&x, &out) > 0.5);
    }
}
