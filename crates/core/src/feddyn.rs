//! FedDyn (Acar et al.) — dynamic regularization, an extra
//! loss-regularization baseline cited in the paper's related work.
//!
//! Each client keeps a linear correction state `h_i` and minimizes the
//! dynamically-regularized objective
//!
//! ```text
//! f_i(w) − ⟨h_i^{t−1}, w⟩ + (α/2)‖w − w_t‖²
//! ```
//!
//! whose gradient contribution is `−h_i^{t−1} + α(w − w_t)`. After the
//! round the state absorbs the client's drift,
//! `h_i^t = h_i^{t−1} − α(w_i^t − w_t) = h_i^{t−1} + α·Δ_i^t`, so at a
//! stationary point the regularizer's gradient cancels the local
//! gradient exactly — FedDyn's fix for the objective inconsistency
//! FedProx suffers from. The server step here is the plain model mean
//! (the cited work's additional server-side `−h/α` shift is omitted;
//! the client-side dynamic regularizer is the mechanism that repairs
//! the fixed-point, and keeping the server identical to FedAvg makes
//! the comparison against the other baselines one-variable).
//!
//! Like FedProx and SCAFFOLD, the strength `α` is **uniform across
//! clients**, so FedDyn is another instance of the paper's
//! over-correction pattern and a natural extra baseline.

use crate::algorithm::{CostProfile, FederatedAlgorithm};
use crate::hyper::HyperParams;
use crate::update::{ClientUpdate, LocalRule};
use taco_tensor::ops;

/// FedDyn with uniform regularization strength `α`.
#[derive(Debug, Clone)]
pub struct FedDyn {
    alpha: f32,
    /// Per-client correction states `h_i` (lazily sized).
    h_clients: Vec<Vec<f32>>,
}

impl FedDyn {
    /// Creates FedDyn for `num_clients` clients with strength `α`
    /// (the original work uses 0.01–0.1).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive/finite or `num_clients` is 0.
    pub fn new(num_clients: usize, alpha: f32) -> Self {
        assert!(num_clients > 0, "need at least one client");
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "alpha must be positive and finite, got {alpha}"
        );
        FedDyn {
            alpha,
            h_clients: vec![Vec::new(); num_clients],
        }
    }

    /// The regularization strength.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Client `i`'s correction state (diagnostics).
    pub fn client_state(&self, i: usize) -> &[f32] {
        &self.h_clients[i]
    }

    fn ensure_dim(&mut self, dim: usize) {
        if self.h_clients[0].len() != dim {
            for h in &mut self.h_clients {
                *h = vec![0.0; dim];
            }
        }
    }
}

impl FederatedAlgorithm for FedDyn {
    fn name(&self) -> &'static str {
        "FedDyn"
    }

    fn begin_round(&mut self, _round: usize, global: &[f32]) {
        self.ensure_dim(global.len());
    }

    fn local_rule(&self, client: usize, global: &[f32]) -> LocalRule {
        let term = if self.h_clients[client].len() == global.len() {
            ops::scaled(&self.h_clients[client], -1.0)
        } else {
            vec![0.0; global.len()]
        };
        LocalRule::ProxCorrection {
            lambda: self.alpha,
            anchor: global.to_vec(),
            term,
        }
    }

    fn aggregate(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        hyper: &HyperParams,
    ) -> Vec<f32> {
        assert!(!updates.is_empty(), "aggregate with no updates");
        self.ensure_dim(global.len());
        // h_i ← h_i + α·Δ_i  (Δ_i = w_t − w_i, i.e. −drift).
        for u in updates {
            let h = &mut self.h_clients[u.client];
            for (hj, &dj) in h.iter_mut().zip(&u.delta) {
                *hj += self.alpha * dj;
            }
        }
        // FedAvg server step (see module docs).
        let deltas: Vec<&[f32]> = updates.iter().map(|u| u.delta.as_slice()).collect();
        let mean_delta = ops::mean_of(&deltas);
        let scale = hyper.eta_g / hyper.k_eta_l();
        let mut next = global.to_vec();
        ops::axpy(&mut next, -scale, &mean_delta);
        next
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile {
            grads_per_step: 1,
            extra_vector_ops: 3, // prox pull + linear term + bookkeeping
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, delta: Vec<f32>) -> ClientUpdate {
        ClientUpdate {
            client,
            delta,
            num_samples: 1,
            final_v: None,
            mean_loss: 0.0,
            grad_evals: 0,
            steps: 1,
            compute_seconds: 0.0,
            encoded: None,
        }
    }

    #[test]
    fn first_round_has_zero_linear_term() {
        let mut alg = FedDyn::new(2, 0.1);
        alg.begin_round(0, &[0.0, 0.0]);
        match alg.local_rule(0, &[0.0, 0.0]) {
            LocalRule::ProxCorrection { lambda, term, .. } => {
                assert_eq!(lambda, 0.1);
                assert!(term.iter().all(|&t| t == 0.0));
            }
            other => panic!("unexpected rule {other:?}"),
        }
    }

    #[test]
    fn state_accumulates_drift() {
        let mut alg = FedDyn::new(2, 0.5);
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        alg.begin_round(0, &[0.0]);
        let _ = alg.aggregate(&[0.0], &[upd(0, vec![1.0]), upd(1, vec![-1.0])], &hyper);
        assert_eq!(alg.client_state(0), &[0.5]);
        assert_eq!(alg.client_state(1), &[-0.5]);
        // Symmetric drift: server h stays zero, update is the mean.
        alg.begin_round(1, &[0.0]);
        match alg.local_rule(0, &[0.0]) {
            LocalRule::ProxCorrection { term, .. } => assert_eq!(term, vec![-0.5]),
            other => panic!("unexpected rule {other:?}"),
        }
    }

    #[test]
    fn symmetric_clients_cancel_server_state() {
        let mut alg = FedDyn::new(2, 0.3);
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        alg.begin_round(0, &[1.0]);
        let next = alg.aggregate(&[1.0], &[upd(0, vec![0.2]), upd(1, vec![-0.2])], &hyper);
        // Mean delta zero, h zero → global unchanged.
        assert!((next[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_alpha_panics() {
        let _ = FedDyn::new(1, 0.0);
    }
}
