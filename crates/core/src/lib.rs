//! TACO and baseline federated-learning algorithms.
//!
//! This crate is the paper's primary contribution plus every baseline
//! it compares against, all implemented against the same two
//! abstractions:
//!
//! - [`update::run_local_steps`] executes the **client side** of
//!   Algorithm 1/2 — `K` mini-batch SGD steps whose effective gradient
//!   `v_{i,k}` is described by a [`update::LocalRule`] value. Every
//!   algorithm's local behaviour (FedProx's proximal pull, SCAFFOLD's
//!   control-variate shift, STEM's two-gradient momentum recursion,
//!   TACO's `γ(1−α_i^t)Δ_t` correction) is *data*, not code, which
//!   keeps the seven algorithms directly comparable and independently
//!   testable.
//! - [`algorithm::FederatedAlgorithm`] is the **server side**: build
//!   each client's rule for the round, aggregate the uploaded
//!   accumulated gradients `Δ_i^t`, and advance the global model.
//!
//! Implemented algorithms:
//!
//! | Module | Paper reference |
//! |---|---|
//! | [`fedavg`] | McMahan et al. (baseline) |
//! | [`fednova`] | normalized averaging (related-work baseline, §VI) |
//! | [`feddyn`] | dynamic regularization (related-work baseline, §VI) |
//! | [`fedprox`] | loss-regularization correction |
//! | [`foolsgold`] | aggregation calibration |
//! | [`scaffold`] | control-variate momentum correction |
//! | [`stem`] | two-sided momentum |
//! | [`fedacg`] | momentum + regularization (SOTA baseline) |
//! | [`taco`] | **the paper's contribution** (Algorithm 2) |
//! | [`tailored`] | Fig. 6 hybrids: FedProx/SCAFFOLD with TACO's tailored coefficients |
//!
//! The tailored correction coefficient `α_i^t` of Eq. 7 lives in
//! [`alpha`], shared by [`taco`] and [`tailored`].

#![deny(missing_docs)]

pub mod algorithm;
pub mod alpha;
pub mod compress;
pub mod fedacg;
pub mod fedavg;
pub mod feddyn;
pub mod fednova;
pub mod fedprox;
pub mod foolsgold;
pub mod hyper;
pub mod scaffold;
pub mod stem;
pub mod taco;
pub mod tailored;
pub mod update;

pub use algorithm::{
    combine_weighted, AggWeighting, CostProfile, FederatedAlgorithm, UploadStats, WeightedCombine,
};
pub use fedacg::FedAcg;
pub use fedavg::FedAvg;
pub use feddyn::FedDyn;
pub use fednova::FedNova;
pub use fedprox::FedProx;
pub use foolsgold::FoolsGold;
pub use hyper::HyperParams;
pub use scaffold::Scaffold;
pub use stem::Stem;
pub use taco::Taco;
pub use tailored::{TailoredProx, TailoredScaffold};
pub use update::{ClientUpdate, LocalOutcome, LocalRule};
