//! SCAFFOLD (Karimireddy et al.) — control-variate correction.

use crate::algorithm::{fedavg_step, AggWeighting, CostProfile, FederatedAlgorithm};
use crate::hyper::HyperParams;
use crate::update::{ClientUpdate, LocalRule};
use taco_tensor::ops;

/// SCAFFOLD: every local step adds the control-variate shift
/// `α(c_t − c_i^t)` (Algorithm 1, line 6), where
///
/// - `c_i^t = c_i^{t−1} − c_{t−1} + Δ_i^{t−1} / (K·η_l)` is client
///   `i`'s control variate, and
/// - `c_t = c_{t−1} + (1/N) Σ_i (c_i^t − c_i^{t−1})` is the server's.
///
/// The coefficient `α` is **uniform across clients** (the paper keeps
/// `α = 1`, the original work's setting) — over-correcting clients
/// whose drift is small, which is the instability Section III-B and
/// Fig. 2 attribute to SCAFFOLD.
#[derive(Debug, Clone)]
pub struct Scaffold {
    alpha: f32,
    /// Server control variate `c_t`; lazily sized on first round.
    c_global: Vec<f32>,
    /// Per-client control variates `c_i^t`.
    c_clients: Vec<Vec<f32>>,
    weighting: AggWeighting,
}

impl Scaffold {
    /// Creates SCAFFOLD for `num_clients` clients with coefficient
    /// `α` (the paper uses 1).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative/not finite or `num_clients` is 0.
    pub fn new(num_clients: usize, alpha: f32) -> Self {
        assert!(num_clients > 0, "need at least one client");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be non-negative and finite, got {alpha}"
        );
        Scaffold {
            alpha,
            c_global: Vec::new(),
            c_clients: vec![Vec::new(); num_clients],
            weighting: AggWeighting::Uniform,
        }
    }

    /// The uniform correction coefficient `α`.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Client `i`'s control variate (diagnostics). Empty until the
    /// client's first aggregated round materializes it (an
    /// unmaterialized variate is semantically zero).
    pub fn client_variate(&self, i: usize) -> &[f32] {
        &self.c_clients[i]
    }

    fn ensure_dim(&mut self, dim: usize) {
        if self.c_global.len() != dim {
            self.c_global = vec![0.0; dim];
            // Per-client variates are materialized lazily on each
            // client's first aggregated round (an empty vec reads as
            // zeros everywhere), so departed clients hold no memory.
            for c in &mut self.c_clients {
                c.clear();
            }
        }
    }
}

impl FederatedAlgorithm for Scaffold {
    fn name(&self) -> &'static str {
        "Scaffold"
    }

    fn begin_round(&mut self, _round: usize, global: &[f32]) {
        self.ensure_dim(global.len());
    }

    fn local_rule(&self, client: usize, global: &[f32]) -> LocalRule {
        if self.c_global.len() != global.len() {
            // First round before any aggregation: zero variates.
            return LocalRule::PlainSgd;
        }
        let ci = &self.c_clients[client];
        let term: Vec<f32> = if ci.len() == global.len() {
            self.c_global
                .iter()
                .zip(ci)
                .map(|(&c, &ci)| self.alpha * (c - ci))
                .collect()
        } else {
            // Unmaterialized variate (fresh or rejoining client):
            // c_i = 0, bit-identical to `α·(c − 0)`.
            self.c_global.iter().map(|&c| self.alpha * c).collect()
        };
        LocalRule::Correction { term }
    }

    fn aggregate(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        hyper: &HyperParams,
    ) -> Vec<f32> {
        let _span = taco_trace::quiet_span!("core.aggregate.scaffold");
        self.ensure_dim(global.len());
        // Control-variate updates (paper's formulas, Section III-A).
        let mut mean_shift = vec![0.0f32; global.len()];
        let n = self.c_clients.len() as f32;
        for u in updates {
            if self.c_clients[u.client].len() != global.len() {
                // First aggregated round for this client (or its first
                // after rejoining): materialize the zero variate.
                self.c_clients[u.client] = vec![0.0; global.len()];
            }
            let old = self.c_clients[u.client].clone();
            let mut new = old.clone();
            // Each client's variate is normalized by its *own*
            // effective step count τ_i·η_l: under heterogeneous
            // `local_steps_per_client` the global K would mis-scale
            // every variate. Updates carrying no step count (e.g.
            // freeloader echoes) fall back to the configured K, which
            // also keeps homogeneous runs bit-identical.
            let tau = if u.steps > 0 {
                u.steps
            } else {
                hyper.local_steps
            };
            let tau_eta_l = tau as f32 * hyper.eta_l;
            for j in 0..new.len() {
                new[j] = old[j] - self.c_global[j] + u.delta[j] / tau_eta_l;
            }
            for j in 0..new.len() {
                mean_shift[j] += (new[j] - old[j]) / n;
            }
            self.c_clients[u.client] = new;
        }
        ops::axpy(&mut self.c_global, 1.0, &mean_shift);
        fedavg_step(global, updates, hyper, self.weighting)
    }

    fn client_departed(&mut self, client: usize) {
        // Retire the departed client's control variate; a later rejoin
        // rematerializes a fresh zero variate in `aggregate`.
        if let Some(c) = self.c_clients.get_mut(client) {
            *c = Vec::new();
        }
    }

    fn tracked_client_states(&self) -> usize {
        self.c_clients.iter().filter(|c| !c.is_empty()).count()
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile {
            grads_per_step: 1,
            extra_vector_ops: 1, // add the (precomputed) correction term
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, delta: Vec<f32>) -> ClientUpdate {
        ClientUpdate {
            client,
            delta,
            num_samples: 1,
            final_v: None,
            mean_loss: 0.0,
            grad_evals: 0,
            steps: 1,
            compute_seconds: 0.0,
            encoded: None,
        }
    }

    #[test]
    fn first_round_rule_is_plain_sgd() {
        let alg = Scaffold::new(2, 1.0);
        assert_eq!(alg.local_rule(0, &[0.0, 0.0]), LocalRule::PlainSgd);
    }

    #[test]
    fn variates_track_relative_drift() {
        let mut alg = Scaffold::new(2, 1.0);
        let hyper = HyperParams::new(2, 1, 1.0, 1); // K·η_l = 1
        alg.begin_round(0, &[0.0, 0.0]);
        let _ = alg.aggregate(
            &[0.0, 0.0],
            &[upd(0, vec![1.0, 0.0]), upd(1, vec![0.0, 1.0])],
            &hyper,
        );
        // c_i = Δ_i (c and c_i start at 0); c = mean = [0.5, 0.5].
        assert_eq!(alg.client_variate(0), &[1.0, 0.0]);
        assert_eq!(alg.client_variate(1), &[0.0, 1.0]);
        // The next round's correction for client 0 is c − c_0 =
        // [-0.5, 0.5]: pushes it toward the federation mean.
        alg.begin_round(1, &[0.0, 0.0]);
        match alg.local_rule(0, &[0.0, 0.0]) {
            LocalRule::Correction { term } => {
                assert!((term[0] + 0.5).abs() < 1e-6);
                assert!((term[1] - 0.5).abs() < 1e-6);
            }
            other => panic!("unexpected rule {other:?}"),
        }
    }

    #[test]
    fn identical_clients_get_zero_correction() {
        let mut alg = Scaffold::new(2, 1.0);
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        alg.begin_round(0, &[0.0]);
        let _ = alg.aggregate(&[0.0], &[upd(0, vec![0.7]), upd(1, vec![0.7])], &hyper);
        match alg.local_rule(0, &[0.0]) {
            LocalRule::Correction { term } => assert!(term[0].abs() < 1e-6),
            other => panic!("unexpected rule {other:?}"),
        }
    }

    #[test]
    fn heterogeneous_steps_normalize_each_variate_by_its_own_tau() {
        // Four clients with τ_i = 2, 4, 8, 16 (the runner's
        // `with_local_steps(vec![2, 4, 8, 16])` heterogeneity) but a
        // global K = 10: each variate must divide by τ_i·η_l, not
        // K·η_l.
        let taus = [2usize, 4, 8, 16];
        let eta_l = 0.5f32;
        let mut alg = Scaffold::new(4, 1.0);
        let hyper = HyperParams::new(4, 10, eta_l, 1);
        alg.begin_round(0, &[0.0]);
        let updates: Vec<ClientUpdate> = taus
            .iter()
            .enumerate()
            .map(|(i, &tau)| {
                let mut u = upd(i, vec![1.0]);
                u.steps = tau;
                u
            })
            .collect();
        let _ = alg.aggregate(&[0.0], &updates, &hyper);
        // Hand-computed: starting from c_i = c = 0, the update rule is
        // c_i' = Δ_i / (τ_i·η_l) = 1 / (τ_i · 0.5) = 2/τ_i.
        for (i, &tau) in taus.iter().enumerate() {
            let expect = 2.0 / tau as f32;
            let got = alg.client_variate(i)[0];
            assert!(
                (got - expect).abs() < 1e-6,
                "client {i}: variate {got} vs hand-computed {expect}"
            );
        }
        // The server variate is the mean of the shifts:
        // c = (1 + 0.5 + 0.25 + 0.125) / 4 = 0.46875, so client 0's
        // next correction term is c − c_0 = 0.46875 − 1 = −0.53125.
        match alg.local_rule(0, &[0.0]) {
            LocalRule::Correction { term } => {
                assert!((term[0] + 0.53125).abs() < 1e-6, "term {}", term[0]);
            }
            other => panic!("unexpected rule {other:?}"),
        }
        let mut alg2 = Scaffold::new(1, 1.0);
        alg2.begin_round(0, &[0.0]);
        let mut u = upd(0, vec![1.0]);
        u.steps = 0; // no step count recorded: falls back to K = 10
        let _ = alg2.aggregate(&[0.0], &[u], &hyper);
        assert!((alg2.client_variate(0)[0] - 1.0 / (10.0 * eta_l)).abs() < 1e-6);
    }

    #[test]
    fn departed_variate_is_dropped_and_rejoin_starts_fresh() {
        let mut alg = Scaffold::new(3, 1.0);
        let hyper = HyperParams::new(3, 1, 1.0, 1);
        alg.begin_round(0, &[0.0, 0.0]);
        let _ = alg.aggregate(
            &[0.0, 0.0],
            &[
                upd(0, vec![1.0, 0.0]),
                upd(1, vec![0.0, 1.0]),
                upd(2, vec![0.5, 0.5]),
            ],
            &hyper,
        );
        assert_eq!(alg.tracked_client_states(), 3);
        alg.client_departed(1);
        assert_eq!(alg.tracked_client_states(), 2);
        assert!(alg.client_variate(1).is_empty(), "variate not retired");
        // A rejoining client's rule reads its variate as zero:
        // term = α·(c − 0) = α·c.
        alg.client_joined(1);
        let expect: Vec<f32> = alg.c_global.iter().map(|&c| 1.0 * c).collect();
        match alg.local_rule(1, &[0.0, 0.0]) {
            LocalRule::Correction { term } => assert_eq!(term, expect),
            other => panic!("unexpected rule {other:?}"),
        }
        // Its next aggregated round rematerializes a fresh variate.
        let _ = alg.aggregate(&[0.0, 0.0], &[upd(1, vec![0.2, 0.2])], &hyper);
        assert_eq!(alg.tracked_client_states(), 3);
    }

    #[test]
    fn lazy_variates_match_the_materialized_rule() {
        // A client that has never been aggregated gets the same
        // correction term whether its zero variate is materialized or
        // not (bit-identity of the lazy representation).
        let mut alg = Scaffold::new(2, 1.0);
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        alg.begin_round(0, &[0.0]);
        // Only client 0 participates; client 1's variate stays lazy.
        let _ = alg.aggregate(&[0.0], &[upd(0, vec![1.0])], &hyper);
        assert_eq!(alg.tracked_client_states(), 1);
        let lazy = match alg.local_rule(1, &[0.0]) {
            LocalRule::Correction { term } => term,
            other => panic!("unexpected rule {other:?}"),
        };
        // Materialize it by hand and recompute.
        alg.c_clients[1] = vec![0.0];
        let materialized = match alg.local_rule(1, &[0.0]) {
            LocalRule::Correction { term } => term,
            other => panic!("unexpected rule {other:?}"),
        };
        assert_eq!(lazy, materialized);
    }

    #[test]
    fn alpha_scales_the_term() {
        let mut a1 = Scaffold::new(2, 1.0);
        let mut a2 = Scaffold::new(2, 0.5);
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        for alg in [&mut a1, &mut a2] {
            alg.begin_round(0, &[0.0]);
            let _ = alg.aggregate(&[0.0], &[upd(0, vec![1.0]), upd(1, vec![0.0])], &hyper);
        }
        let t1 = match a1.local_rule(0, &[0.0]) {
            LocalRule::Correction { term } => term[0],
            _ => unreachable!(),
        };
        let t2 = match a2.local_rule(0, &[0.0]) {
            LocalRule::Correction { term } => term[0],
            _ => unreachable!(),
        };
        assert!((t1 - 2.0 * t2).abs() < 1e-6, "{t1} vs {t2}");
    }
}
