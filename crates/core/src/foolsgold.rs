//! FoolsGold (Fung et al.) — aggregation calibration.

use crate::algorithm::{CostProfile, FederatedAlgorithm};
use crate::hyper::HyperParams;
use crate::update::{ClientUpdate, LocalRule};
use taco_tensor::ops;

/// FoolsGold as restated by the paper (Algorithm 1, line 10): no local
/// correction, but aggregation weights
/// `ρ_i = cos(Δ_{t+1}, Δ_i)` — the similarity between each client's
/// accumulated gradient and the aggregated direction.
///
/// Since `Δ_{t+1}` is not available before aggregating, `ρ_i` is
/// computed against the unweighted mean of the round's uploads (the
/// same bootstrap the original FoolsGold uses for its reference
/// direction). Weights are floored at a small positive value so a
/// round where every client disagrees with the mean still aggregates.
///
/// Note on scaling: Algorithm 1's line 10 reads
/// `Δ_{t+1} = 1/(K·N·η_l) Σ ρ_i Δ_i / Σ ρ_i`, whose extra `1/N`
/// would shrink the update `N`-fold relative to every other algorithm
/// in the same table; consistent with the original FoolsGold (and with
/// the paper's own experiments, where FoolsGold tracks FedAvg closely)
/// we read the ρ-normalized sum as the weighted mean and scale by
/// `1/(K·η_l)`.
#[derive(Debug, Clone, Default)]
pub struct FoolsGold {
    last_weights: Vec<f32>,
}

impl FoolsGold {
    /// Creates FoolsGold.
    pub fn new() -> Self {
        FoolsGold::default()
    }

    /// The aggregation weights used in the most recent round
    /// (diagnostics for tests and reports).
    pub fn last_weights(&self) -> &[f32] {
        &self.last_weights
    }
}

impl FederatedAlgorithm for FoolsGold {
    fn name(&self) -> &'static str {
        "FoolsGold"
    }

    fn local_rule(&self, _client: usize, _global: &[f32]) -> LocalRule {
        LocalRule::PlainSgd
    }

    fn aggregate(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        hyper: &HyperParams,
    ) -> Vec<f32> {
        assert!(!updates.is_empty(), "aggregate with no updates");
        let deltas: Vec<&[f32]> = updates.iter().map(|u| u.delta.as_slice()).collect();
        let mean = ops::mean_of(&deltas);
        let weights: Vec<f32> = deltas
            .iter()
            .map(|d| ops::cosine_similarity(d, &mean).max(1e-3))
            .collect();
        self.last_weights = weights.clone();
        let agg = ops::weighted_mean(&deltas, &weights);
        let scale = hyper.eta_g / hyper.k_eta_l();
        let mut next = global.to_vec();
        ops::axpy(&mut next, -scale, &agg);
        next
    }

    fn cost_profile(&self) -> CostProfile {
        // All extra work is server-side; clients run plain SGD.
        CostProfile {
            grads_per_step: 1,
            extra_vector_ops: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, delta: Vec<f32>) -> ClientUpdate {
        ClientUpdate {
            client,
            delta,
            num_samples: 1,
            final_v: None,
            mean_loss: 0.0,
            grad_evals: 0,
            steps: 1,
            compute_seconds: 0.0,
        }
    }

    #[test]
    fn outlier_gets_downweighted() {
        let mut alg = FoolsGold::new();
        let hyper = HyperParams::new(3, 1, 1.0, 1);
        let updates = vec![
            upd(0, vec![1.0, 1.0]),
            upd(1, vec![1.0, 0.9]),
            upd(2, vec![-1.0, -1.0]), // pulls against the federation
        ];
        let _ = alg.aggregate(&[0.0, 0.0], &updates, &hyper);
        let w = alg.last_weights();
        assert!(
            w[0] > w[2] && w[1] > w[2],
            "outlier not downweighted: {w:?}"
        );
        assert!(w[2] <= 1e-3 + f32::EPSILON);
    }

    #[test]
    fn agrees_with_mean_when_clients_agree() {
        let mut alg = FoolsGold::new();
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        let updates = vec![upd(0, vec![0.5, 0.5]), upd(1, vec![0.5, 0.5])];
        let next = alg.aggregate(&[1.0, 1.0], &updates, &hyper);
        assert!((next[0] - 0.5).abs() < 1e-6);
        assert!((next[1] - 0.5).abs() < 1e-6);
    }
}
