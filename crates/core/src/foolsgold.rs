//! FoolsGold (Fung et al.) — aggregation calibration.

use crate::algorithm::{CostProfile, FederatedAlgorithm};
use crate::hyper::HyperParams;
use crate::update::{ClientUpdate, LocalRule};
use taco_tensor::ops;

/// FoolsGold as restated by the paper (Algorithm 1, line 10): no local
/// correction, but aggregation weights
/// `ρ_i = cos(Δ_{t+1}, Δ_i)` — the similarity between each client's
/// accumulated gradient and the aggregated direction.
///
/// Since `Δ_{t+1}` is not available before aggregating, `ρ_i` is
/// computed against the unweighted mean of the round's uploads (the
/// same bootstrap the original FoolsGold uses for its reference
/// direction). Weights are floored at a small positive value so a
/// round where every client disagrees with the mean still aggregates.
///
/// Note on scaling: Algorithm 1's line 10 reads
/// `Δ_{t+1} = 1/(K·N·η_l) Σ ρ_i Δ_i / Σ ρ_i`, whose extra `1/N`
/// would shrink the update `N`-fold relative to every other algorithm
/// in the same table; consistent with the original FoolsGold (and with
/// the paper's own experiments, where FoolsGold tracks FedAvg closely)
/// we read the ρ-normalized sum as the weighted mean and scale by
/// `1/(K·η_l)`.
///
/// # Suspicion (the original FoolsGold's cosine history)
///
/// Alongside the per-round weights the algorithm accumulates each
/// client's summed delta across rounds (the original work's
/// "historical gradient"). Two clients whose *accumulated* directions
/// stay near-parallel — pairwise cosine at or above
/// [`FoolsGold::with_suspicion`]'s threshold after enough observed
/// rounds — are flagged as a suspected sybil/colluding pair via
/// [`FederatedAlgorithm::suspected`]. Honest non-IID clients descend
/// different local objectives, so their accumulated directions
/// decorrelate; a colluding coalition pushing one seeded direction
/// does not. Suspicion is pure diagnostics: it never changes the
/// aggregation weights, so trajectories are identical with or without
/// it.
#[derive(Debug, Clone)]
pub struct FoolsGold {
    last_weights: Vec<f32>,
    /// Per-client accumulated deltas (the cosine history); empty until
    /// a client's first aggregated round, cleared when it departs.
    histories: Vec<Vec<f32>>,
    /// Rounds each client has been aggregated (gates suspicion).
    observations: Vec<usize>,
    suspicion_threshold: f32,
    min_observations: usize,
}

impl Default for FoolsGold {
    fn default() -> Self {
        FoolsGold {
            last_weights: Vec::new(),
            histories: Vec::new(),
            observations: Vec::new(),
            suspicion_threshold: 0.98,
            min_observations: 3,
        }
    }
}

impl FoolsGold {
    /// Creates FoolsGold with the default suspicion settings (pairwise
    /// cosine ≥ 0.98 after 3 observed rounds).
    pub fn new() -> Self {
        FoolsGold::default()
    }

    /// Builder-style override of the suspicion thresholds: flag a pair
    /// of clients when the cosine of their accumulated deltas reaches
    /// `threshold` and both have been aggregated at least
    /// `min_observations` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 1]` or `min_observations`
    /// is zero.
    pub fn with_suspicion(mut self, threshold: f32, min_observations: usize) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "suspicion threshold must be in (0, 1], got {threshold}"
        );
        assert!(min_observations > 0, "min_observations must be positive");
        self.suspicion_threshold = threshold;
        self.min_observations = min_observations;
        self
    }

    /// The aggregation weights used in the most recent round
    /// (diagnostics for tests and reports).
    pub fn last_weights(&self) -> &[f32] {
        &self.last_weights
    }

    fn ensure_client(&mut self, client: usize) {
        if client >= self.histories.len() {
            self.histories.resize_with(client + 1, Vec::new);
            self.observations.resize(client + 1, 0);
        }
    }
}

impl FederatedAlgorithm for FoolsGold {
    fn name(&self) -> &'static str {
        "FoolsGold"
    }

    fn local_rule(&self, _client: usize, _global: &[f32]) -> LocalRule {
        LocalRule::PlainSgd
    }

    fn aggregate(
        &mut self,
        global: &[f32],
        updates: &[ClientUpdate],
        hyper: &HyperParams,
    ) -> Vec<f32> {
        assert!(!updates.is_empty(), "aggregate with no updates");
        let deltas: Vec<&[f32]> = updates.iter().map(|u| u.delta.as_slice()).collect();
        let mean = ops::mean_of(&deltas);
        let weights: Vec<f32> = deltas
            .iter()
            .map(|d| ops::cosine_similarity(d, &mean).max(1e-3))
            .collect();
        self.last_weights = weights.clone();
        // Accumulate the cosine history (suspicion diagnostics only —
        // the weights above are already fixed for this round).
        for u in updates {
            self.ensure_client(u.client);
            let hist = &mut self.histories[u.client];
            if hist.len() != u.delta.len() {
                *hist = vec![0.0; u.delta.len()];
            }
            ops::axpy(hist, 1.0, &u.delta);
            self.observations[u.client] += 1;
        }
        let agg = ops::weighted_mean(&deltas, &weights);
        let scale = hyper.eta_g / hyper.k_eta_l();
        let mut next = global.to_vec();
        ops::axpy(&mut next, -scale, &agg);
        next
    }

    fn suspected(&self) -> Vec<usize> {
        // Pairwise cosine over accumulated histories, in fixed client
        // order; a pair at or above the threshold flags both members.
        let eligible: Vec<usize> = (0..self.histories.len())
            .filter(|&i| {
                self.observations[i] >= self.min_observations && !self.histories[i].is_empty()
            })
            .collect();
        let norms: Vec<f32> = eligible
            .iter()
            .map(|&i| ops::norm(&self.histories[i]))
            .collect();
        let mut flagged = vec![false; self.histories.len()];
        for (a, &i) in eligible.iter().enumerate() {
            for (b, &j) in eligible.iter().enumerate().skip(a + 1) {
                if norms[a] <= 0.0 || norms[b] <= 0.0 {
                    continue;
                }
                let cos = ops::cosine_with_norms(
                    &self.histories[i],
                    &self.histories[j],
                    norms[a],
                    norms[b],
                );
                if cos >= self.suspicion_threshold {
                    flagged[i] = true;
                    flagged[j] = true;
                }
            }
        }
        flagged
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| i)
            .collect()
    }

    fn client_departed(&mut self, client: usize) {
        // Retire the departed client's history; on rejoin it starts
        // from scratch like a fresh client.
        if let Some(h) = self.histories.get_mut(client) {
            *h = Vec::new();
        }
        if let Some(o) = self.observations.get_mut(client) {
            *o = 0;
        }
    }

    fn tracked_client_states(&self) -> usize {
        self.histories.iter().filter(|h| !h.is_empty()).count()
    }

    fn cost_profile(&self) -> CostProfile {
        // All extra work is server-side; clients run plain SGD.
        CostProfile {
            grads_per_step: 1,
            extra_vector_ops: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, delta: Vec<f32>) -> ClientUpdate {
        ClientUpdate {
            client,
            delta,
            num_samples: 1,
            final_v: None,
            mean_loss: 0.0,
            grad_evals: 0,
            steps: 1,
            compute_seconds: 0.0,
            encoded: None,
        }
    }

    #[test]
    fn outlier_gets_downweighted() {
        let mut alg = FoolsGold::new();
        let hyper = HyperParams::new(3, 1, 1.0, 1);
        let updates = vec![
            upd(0, vec![1.0, 1.0]),
            upd(1, vec![1.0, 0.9]),
            upd(2, vec![-1.0, -1.0]), // pulls against the federation
        ];
        let _ = alg.aggregate(&[0.0, 0.0], &updates, &hyper);
        let w = alg.last_weights();
        assert!(
            w[0] > w[2] && w[1] > w[2],
            "outlier not downweighted: {w:?}"
        );
        assert!(w[2] <= 1e-3 + f32::EPSILON);
    }

    #[test]
    fn colluding_pair_is_suspected_and_honest_clients_are_not() {
        let mut alg = FoolsGold::new().with_suspicion(0.95, 3);
        let hyper = HyperParams::new(4, 1, 1.0, 1);
        // Clients 0 and 1 push one shared direction every round (a
        // colluding coalition); 2 and 3 push decorrelated directions.
        let rounds: [[Vec<f32>; 4]; 3] = [
            [
                vec![1.0, 1.0, 0.0],
                vec![1.0, 1.05, 0.0],
                vec![0.5, -1.0, 0.3],
                vec![-0.8, 0.2, 1.0],
            ],
            [
                vec![1.0, 0.95, 0.0],
                vec![1.1, 1.0, 0.0],
                vec![-0.4, 0.9, -1.0],
                vec![1.0, -0.5, -0.2],
            ],
            [
                vec![0.9, 1.0, 0.0],
                vec![1.0, 1.0, 0.0],
                vec![0.7, 0.1, 0.9],
                vec![-0.2, 1.0, 0.4],
            ],
        ];
        for round in &rounds {
            let updates: Vec<ClientUpdate> = round
                .iter()
                .enumerate()
                .map(|(i, d)| upd(i, d.clone()))
                .collect();
            let _ = alg.aggregate(&[0.0, 0.0, 0.0], &updates, &hyper);
        }
        assert_eq!(alg.suspected(), vec![0, 1]);
    }

    #[test]
    fn suspicion_needs_minimum_observations() {
        let mut alg = FoolsGold::new().with_suspicion(0.9, 3);
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        for _ in 0..2 {
            let _ = alg.aggregate(
                &[0.0, 0.0],
                &[upd(0, vec![1.0, 1.0]), upd(1, vec![1.0, 1.0])],
                &hyper,
            );
        }
        assert!(alg.suspected().is_empty(), "flagged after only 2 rounds");
        let _ = alg.aggregate(
            &[0.0, 0.0],
            &[upd(0, vec![1.0, 1.0]), upd(1, vec![1.0, 1.0])],
            &hyper,
        );
        assert_eq!(alg.suspected(), vec![0, 1]);
    }

    #[test]
    fn departed_client_history_is_dropped() {
        let mut alg = FoolsGold::new().with_suspicion(0.9, 1);
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        let _ = alg.aggregate(
            &[0.0, 0.0],
            &[upd(0, vec![1.0, 1.0]), upd(1, vec![1.0, 1.0])],
            &hyper,
        );
        assert_eq!(alg.tracked_client_states(), 2);
        assert_eq!(alg.suspected(), vec![0, 1]);
        alg.client_departed(1);
        assert_eq!(alg.tracked_client_states(), 1);
        // With client 1's history retired the pair no longer exists.
        assert!(alg.suspected().is_empty());
    }

    #[test]
    fn suspicion_never_changes_aggregation() {
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        let mut strict = FoolsGold::new().with_suspicion(0.5, 1);
        let mut lax = FoolsGold::new().with_suspicion(1.0, 99);
        let updates = vec![upd(0, vec![0.4, 0.6]), upd(1, vec![0.5, 0.5])];
        let a = strict.aggregate(&[1.0, 1.0], &updates, &hyper);
        let b = lax.aggregate(&[1.0, 1.0], &updates, &hyper);
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_with_mean_when_clients_agree() {
        let mut alg = FoolsGold::new();
        let hyper = HyperParams::new(2, 1, 1.0, 1);
        let updates = vec![upd(0, vec![0.5, 0.5]), upd(1, vec![0.5, 0.5])];
        let next = alg.aggregate(&[1.0, 1.0], &updates, &hyper);
        assert!((next[0] - 0.5).abs() < 1e-6);
        assert!((next[1] - 0.5).abs() < 1e-6);
    }
}
